"""Unit tests for the VPC arbiter (paper Section 4.1, Eqs. 3-6)."""

import math

import pytest

from repro.core.arbiter import ArbiterEntry
from repro.core.vpc_arbiter import VPCArbiter


def entry(thread_id, name="x", is_write=False, quanta=1):
    return ArbiterEntry(
        thread_id=thread_id, payload=name, is_write=is_write,
        service_quanta=quanta,
    )


class TestConstruction:
    def test_share_count_mismatch(self):
        with pytest.raises(ValueError):
            VPCArbiter(2, [0.5], 8)

    def test_overallocation_rejected(self):
        with pytest.raises(ValueError):
            VPCArbiter(2, [0.7, 0.7], 8)

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            VPCArbiter(2, [-0.1, 0.5], 8)

    def test_bad_latency_rejected(self):
        with pytest.raises(ValueError):
            VPCArbiter(1, [1.0], 0)


class TestVirtualTimeMechanics:
    def test_eq4_eq5_chained_finish_times(self):
        """Back-to-back grants advance R.S by L/phi each time."""
        arb = VPCArbiter(1, [0.5], 8)   # R.L = 16
        arb.enqueue(entry(0, "a"), 0)
        arb.enqueue(entry(0, "b"), 0)
        assert arb.virtual_finish_preview(0) == 16.0
        arb.select(0)
        assert arb.virtual_finish_preview(0) == 32.0

    def test_eq6_idle_thread_resets_to_clock(self):
        """An idle period earns no virtual-time credit."""
        arb = VPCArbiter(1, [0.5], 8)
        arb.enqueue(entry(0), 0)
        arb.select(0)                      # R.S = 16
        arb.enqueue(entry(0), 100)         # empty queue, R.S(16) <= 100
        assert arb.virtual_finish_preview(0) == 116.0

    def test_eq6_no_reset_when_ahead_of_clock(self):
        """A thread that consumed service ahead of real time keeps its
        later R.S (it is penalized for its burst — Section 4.1.3)."""
        arb = VPCArbiter(1, [0.25], 8)     # R.L = 32
        arb.enqueue(entry(0), 0)
        arb.select(0)                      # R.S = 32
        arb.enqueue(entry(0), 10)          # R.S(32) > 10: keep 32
        assert arb.virtual_finish_preview(0) == 64.0

    def test_writes_cost_double_quanta(self):
        """Eq. 4: F = S + 2*R.L for data-array writes."""
        arb = VPCArbiter(1, [0.5], 8)
        arb.enqueue(entry(0, is_write=True, quanta=2), 0)
        assert arb.virtual_finish_preview(0) == 32.0


class TestEDFSelection:
    def test_earliest_virtual_finish_wins(self):
        arb = VPCArbiter(2, [0.75, 0.25], 8)  # R.L = 10.67 vs 32
        arb.enqueue(entry(0, "fast"), 0)
        arb.enqueue(entry(1, "slow"), 0)
        assert arb.select(0).payload == "fast"

    def test_proportional_service_when_saturated(self):
        arb = VPCArbiter(2, [0.75, 0.25], 8)
        for _ in range(40):
            arb.enqueue(entry(0, "a"), 0)
            arb.enqueue(entry(1, "b"), 0)
        served = [0, 0]
        for _ in range(40):
            served[arb.select(0).thread_id] += 1
        assert served[0] == pytest.approx(30, abs=1)
        assert served[1] == pytest.approx(10, abs=1)

    def test_work_conservation(self):
        """The only backlogged thread gets service regardless of share."""
        arb = VPCArbiter(2, [0.9, 0.1], 8)
        arb.enqueue(entry(1, "only"), 0)
        assert arb.select(0).payload == "only"

    def test_zero_share_thread_loses_to_any_finite_thread(self):
        arb = VPCArbiter(2, [1.0, 0.0], 8)
        arb.enqueue(entry(1, "starved"), 0)
        arb.enqueue(entry(0, "allocated"), 5)
        assert arb.select(5).payload == "allocated"

    def test_zero_share_thread_served_when_alone(self):
        arb = VPCArbiter(2, [1.0, 0.0], 8)
        arb.enqueue(entry(1, "excess"), 0)
        assert arb.select(0).payload == "excess"

    def test_two_zero_share_threads_fcfs(self):
        arb = VPCArbiter(3, [1.0, 0.0, 0.0], 8)
        arb.enqueue(entry(1, "first"), 0)
        arb.enqueue(entry(2, "second"), 1)
        assert arb.select(2).payload == "first"
        assert arb.select(2).payload == "second"


class TestIntraThreadReordering:
    def test_reads_bypass_writes_within_thread(self):
        arb = VPCArbiter(1, [1.0], 8)
        arb.enqueue(entry(0, "w", is_write=True), 0)
        arb.enqueue(entry(0, "r"), 0)
        assert arb.select(0).payload == "r"
        assert arb.select(0).payload == "w"

    def test_reordering_disabled_is_fifo(self):
        arb = VPCArbiter(1, [1.0], 8, intra_thread_row=False)
        arb.enqueue(entry(0, "w", is_write=True), 0)
        arb.enqueue(entry(0, "r"), 0)
        assert arb.select(0).payload == "w"

    def test_reordering_does_not_change_service_accounting(self):
        """Section 4.1.1: reordering inside a thread's buffer must not
        shift *service cycles* between threads (grant counts may differ —
        reads are cheaper than writes)."""

        def run(intra_thread_row):
            arb = VPCArbiter(2, [0.5, 0.5], 8, intra_thread_row=intra_thread_row)
            for i in range(20):
                arb.enqueue(entry(0, f"w{i}", is_write=True, quanta=2), 0)
                arb.enqueue(entry(0, f"r{i}"), 0)
                arb.enqueue(entry(1, f"x{i}"), 0)
            busy_until = 0
            for now in range(600):
                if now >= busy_until and len(arb):
                    granted = arb.select(now)
                    busy_until = now + 8 * granted.service_quanta
            return arb.service_granted

        row_service = run(True)
        fifo_service = run(False)
        for got, expected in zip(row_service, fifo_service):
            assert abs(got - expected) <= 16  # within one write service


class TestShareReconfiguration:
    def test_set_share_changes_rl(self):
        arb = VPCArbiter(2, [0.5, 0.5], 8)
        arb.set_share(0, 0.25)
        arb.enqueue(entry(0), 0)
        assert arb.virtual_finish_preview(0) == 32.0

    def test_set_share_overallocation_rejected(self):
        arb = VPCArbiter(2, [0.5, 0.5], 8)
        with pytest.raises(ValueError):
            arb.set_share(0, 0.6)

    def test_shares_property(self):
        arb = VPCArbiter(2, [0.5, 0.25], 8)
        assert arb.shares == [0.5, 0.25]


class TestInstrumentation:
    def test_service_granted_tracks_real_cycles(self):
        arb = VPCArbiter(1, [1.0], 8)
        arb.enqueue(entry(0, quanta=2, is_write=True), 0)
        arb.enqueue(entry(0), 0)
        arb.select(0)
        arb.select(0)
        assert arb.service_granted[0] == 24  # 8 (read) + 16 (write)

    def test_pending_for(self):
        arb = VPCArbiter(2, [0.5, 0.5], 8)
        arb.enqueue(entry(0), 0)
        assert arb.pending_for(0) == 1
        assert arb.pending_for(1) == 0

    def test_empty_preview_is_infinite(self):
        arb = VPCArbiter(1, [1.0], 8)
        assert math.isinf(arb.virtual_finish_preview(0))

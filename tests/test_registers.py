"""Unit tests for the VPC control-register file."""

import pytest

from repro.core.registers import BANDWIDTH_RESOURCES, VPCControlRegisters


class TestDefaults:
    def test_equal_shares_at_reset(self):
        regs = VPCControlRegisters(4)
        for resource in BANDWIDTH_RESOURCES:
            assert regs.bandwidth[resource] == [0.25] * 4
        assert regs.capacity == [0.25] * 4

    def test_needs_threads(self):
        with pytest.raises(ValueError):
            VPCControlRegisters(0)


class TestWrites:
    def test_write_bandwidth_all_resources(self):
        regs = VPCControlRegisters(2)
        regs.write_bandwidth(0, 0.3)
        for resource in BANDWIDTH_RESOURCES:
            assert regs.bandwidth[resource][0] == 0.3

    def test_write_single_resource(self):
        """The paper's general form: per-resource allocation."""
        regs = VPCControlRegisters(2)
        regs.write_bandwidth(0, 0.1, resource="tag")
        assert regs.bandwidth["tag"][0] == 0.1
        assert regs.bandwidth["data"][0] == 0.5

    def test_unknown_resource_rejected(self):
        regs = VPCControlRegisters(2)
        with pytest.raises(ValueError):
            regs.write_bandwidth(0, 0.1, resource="prefetch")

    def test_overallocation_rejected(self):
        regs = VPCControlRegisters(2)
        with pytest.raises(ValueError):
            regs.write_bandwidth(0, 0.6)  # 0.6 + 0.5 > 1

    def test_capacity_write(self):
        regs = VPCControlRegisters(2)
        regs.write_capacity(1, 0.25)
        assert regs.capacity[1] == 0.25

    def test_share_range_checked(self):
        regs = VPCControlRegisters(2)
        with pytest.raises(ValueError):
            regs.write_capacity(0, 1.5)
        with pytest.raises(ValueError):
            regs.write_bandwidth(5, 0.1)


class TestBulkLoad:
    def test_load_allocation(self):
        regs = VPCControlRegisters(4)
        regs.load_allocation([0.5, 0.1, 0.1, 0.1], [0.5, 0.1, 0.1, 0.1])
        assert regs.bandwidth["bus"] == [0.5, 0.1, 0.1, 0.1]
        assert regs.capacity == [0.5, 0.1, 0.1, 0.1]

    def test_load_rejects_overallocation(self):
        regs = VPCControlRegisters(2)
        with pytest.raises(ValueError):
            regs.load_allocation([0.7, 0.7], [0.5, 0.5])

    def test_load_rejects_length_mismatch(self):
        regs = VPCControlRegisters(2)
        with pytest.raises(ValueError):
            regs.load_allocation([1.0], [0.5, 0.5])


class TestNotification:
    def test_listeners_called_on_write(self):
        regs = VPCControlRegisters(2)
        events = []
        regs.subscribe(lambda res, tid, share: events.append((res, tid, share)))
        regs.write_bandwidth(0, 0.4)
        assert len(events) == len(BANDWIDTH_RESOURCES)
        regs.write_capacity(1, 0.3)
        assert events[-1] == ("capacity", 1, 0.3)

"""Tests for the shared DRAM channel and its FQ scheduler (the VPM
framework's memory-bandwidth component)."""

from dataclasses import replace

import pytest

from repro.common.config import MemoryConfig, VPCAllocation, baseline_config
from repro.memory.controller import MemoryController
from repro.memory.fq_scheduler import SharedDRAMChannel
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads import loads_trace, stores_trace


def drive(channel, horizon, feeders):
    """feeders: {cycle: [(tid, line, is_write, sink)]}."""
    for now in range(horizon):
        for tid, line, is_write, sink in feeders.get(now, ()):
            if is_write:
                channel.enqueue_write(tid, line, now)
            else:
                channel.enqueue_read(tid, line, sink.append, now)
        channel.tick(now)


class TestConstruction:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            SharedDRAMChannel(MemoryConfig(), 2, policy="lottery")

    def test_bad_shares(self):
        with pytest.raises(ValueError):
            SharedDRAMChannel(MemoryConfig(), 2, shares=[0.7, 0.7])
        with pytest.raises(ValueError):
            SharedDRAMChannel(MemoryConfig(), 2, shares=[1.0])

    def test_default_equal_shares(self):
        channel = SharedDRAMChannel(MemoryConfig(), 4)
        assert channel.shares == [0.25] * 4


class TestScheduling:
    def test_single_read_latency_matches_private(self):
        config = MemoryConfig()
        shared = SharedDRAMChannel(config, 2)
        done = []
        shared.enqueue_read(0, 0, done.append, 0)
        for now in range(300):
            shared.tick(now)
        assert done == [shared.idle_latency()]

    def test_fq_divides_bandwidth_by_share(self):
        """Two saturating threads with 75/25 shares split channel service
        accordingly."""
        config = MemoryConfig(transaction_buffer=64)
        channel = SharedDRAMChannel(config, 2, policy="fq", shares=[0.75, 0.25])
        sink = []
        feeders = {}
        for cycle in range(0, 4000, 10):
            feeders.setdefault(cycle, []).extend([
                (0, cycle // 10, False, sink),
                (1, 1000 + cycle // 10, False, sink),
            ])
        drive(channel, 8000, feeders)
        granted = channel.service_granted
        assert granted[0] / max(granted[1], 1) == pytest.approx(3.0, rel=0.15)

    def test_fcfs_ignores_shares(self):
        config = MemoryConfig(transaction_buffer=64)
        channel = SharedDRAMChannel(config, 2, policy="fcfs", shares=[0.75, 0.25])
        sink = []
        feeders = {}
        for cycle in range(0, 4000, 10):
            feeders.setdefault(cycle, []).extend([
                (0, cycle // 10, False, sink),
                (1, 1000 + cycle // 10, False, sink),
            ])
        drive(channel, 8000, feeders)
        granted = channel.service_granted
        assert granted[0] == pytest.approx(granted[1], rel=0.1)

    def test_work_conserving_when_one_thread_idle(self):
        channel = SharedDRAMChannel(
            MemoryConfig(transaction_buffer=64), 2, shares=[0.5, 0.5]
        )
        done = []
        feeders = {0: [(1, i, False, done) for i in range(20)]}
        drive(channel, 4000, feeders)
        assert len(done) == 20

    def test_reads_before_writes_within_thread(self):
        channel = SharedDRAMChannel(MemoryConfig(), 1)
        done = []
        channel.enqueue_write(0, 0, 0)
        channel.enqueue_read(0, 1, done.append, 0)
        channel.tick(0)   # the read issues first despite arriving later
        assert channel.reads_done == 1 and channel.writes_done == 0

    def test_per_thread_buffers_enforced(self):
        config = MemoryConfig(transaction_buffer=2, write_buffer=1)
        channel = SharedDRAMChannel(config, 2)
        channel.enqueue_read(0, 0, lambda c: None, 0)
        channel.enqueue_read(0, 1, lambda c: None, 0)
        assert not channel.can_accept_read(0)
        assert channel.can_accept_read(1)   # the other thread is unaffected
        channel.enqueue_write(1, 5, 0)
        assert not channel.can_accept_write(1)


class TestControllerIntegration:
    def test_shared_mode_single_channel(self):
        config = MemoryConfig(sharing="shared")
        controller = MemoryController(config, 4)
        assert len(controller.channels) == 1

    def test_invalid_sharing_mode(self):
        with pytest.raises(ValueError):
            MemoryController(MemoryConfig(sharing="telepathic"), 2)

    def test_full_system_shared_fq_protects_subject(self):
        """End to end: a miss-heavy subject sharing ONE memory channel
        with three read-flooding co-runners — FQ scheduling preserves
        far more of its performance than FCFS (which serves the channel
        proportionally to request rate, i.e. to the flooders)."""
        from repro.workloads import spec_trace
        from repro.workloads.synthetic import WorkloadProfile, synthetic_trace

        flood = WorkloadProfile(
            name="flood", mem_fraction=0.5, store_fraction=0.02,
            p_hot=0.0, p_warm=0.0, p_cold=1.0,
            cold_bytes=64 * 1024 * 1024,
            run_length=1, store_run_length=1,
        ).validate()

        def run(scheduler):
            memory = MemoryConfig(sharing="shared", shared_scheduler=scheduler)
            vpc = VPCAllocation.equal(4)
            config = replace(
                baseline_config(n_threads=4, arbiter="vpc", vpc=vpc),
                memory=memory,
            ).validate()
            traces = [spec_trace("swim", 0)] + [
                synthetic_trace(flood, t) for t in (1, 2, 3)
            ]
            system = CMPSystem(config, traces)
            return run_simulation(system, warmup=25_000, measure=15_000).ipcs[0]

        fq_ipc = run("fq")
        fcfs_ipc = run("fcfs")
        assert fq_ipc > fcfs_ipc * 1.5

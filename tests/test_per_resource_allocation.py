"""Tests for per-resource independent bandwidth allocation.

The paper (Section 4 intro): "In their full generality, the mechanisms
described in this section would allow software to allocate each of the
three bandwidth resources independently (via separate control
registers)".  The experiments restrict to a single phi per thread; these
tests exercise the general form.
"""

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.system.cmp import CMPSystem
from repro.workloads import loads_trace, stores_trace


def make_system():
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    return CMPSystem(config, [loads_trace(0), stores_trace(1)])


class TestPerResourceRegisterWiring:
    def test_tag_write_touches_only_tag_arbiters(self):
        system = make_system()
        system.registers.write_bandwidth(0, 0.3, resource="tag")
        for arbiter in system._vpc_arbiters["tag"]:
            assert arbiter.shares[0] == pytest.approx(0.3)
        for arbiter in system._vpc_arbiters["data"]:
            assert arbiter.shares[0] == pytest.approx(0.5)
        for arbiter in system._vpc_arbiters["bus"]:
            assert arbiter.shares[0] == pytest.approx(0.5)

    def test_all_resources_write(self):
        system = make_system()
        system.registers.write_bandwidth(1, 0.4)
        for resource in ("tag", "data", "bus"):
            for arbiter in system._vpc_arbiters[resource]:
                assert arbiter.shares[1] == pytest.approx(0.4)

    def test_one_arbiter_per_resource_per_bank(self):
        system = make_system()
        banks = system.config.l2.banks
        for resource in ("tag", "data", "bus"):
            assert len(system._vpc_arbiters[resource]) == banks

    def test_capacity_write_leaves_arbiters_alone(self):
        system = make_system()
        system.registers.write_capacity(0, 0.4)
        for resource in ("tag", "data", "bus"):
            for arbiter in system._vpc_arbiters[resource]:
                assert arbiter.shares[0] == pytest.approx(0.5)


class TestAsymmetricAllocationBehaviour:
    def test_data_array_share_governs_store_throughput(self):
        """Stores are data-array-bound: squeezing only the data-array
        share must cut store throughput even with generous tag/bus."""
        fair = make_system()
        fair.run(45_000)
        base = fair.cores[1].dispatched

        skewed = make_system()
        skewed.registers.write_bandwidth(1, 0.1, resource="data")
        skewed.registers.write_bandwidth(0, 0.9, resource="data")
        skewed.run(45_000)
        squeezed = skewed.cores[1].dispatched
        assert squeezed < base * 0.6

"""Unit tests for the SharedL2 assembly (banking + aggregation)."""

import pytest

from repro.cache.l2 import SharedL2
from repro.cache.replacement import LRUPolicy
from repro.common.config import L2Config
from repro.common.records import AccessType, make_request
from repro.core.arbiter import FCFSArbiter


class StubMemory:
    def __init__(self):
        self.reads = []

    def can_accept_read(self, thread_id):
        return True

    def can_accept_write(self, thread_id):
        return True

    def enqueue_read(self, thread_id, line, notify, now, tracked=False):
        self.reads.append(line)
        notify(now + 40)

    def enqueue_write(self, thread_id, line, now):
        pass


def make_l2(banks=2, n_threads=2):
    responses = []
    l2 = SharedL2(
        config=L2Config(banks=banks),
        n_threads=n_threads,
        arbiter_factory=lambda name, latency: FCFSArbiter(n_threads),
        policy_factory=LRUPolicy,
        respond=lambda request, now: responses.append((request, now)),
        memory=StubMemory(),
    )
    return l2, responses


def read(line, thread=0):
    return make_request(thread, line * 64, AccessType.READ, 64)


class TestBanking:
    def test_line_interleaving(self):
        l2, _ = make_l2(banks=4)
        assert [l2.bank_of(line) for line in range(5)] == [0, 1, 2, 3, 0]

    def test_accept_routes_to_bank(self):
        l2, _ = make_l2(banks=2)
        l2.accept(read(3), 0)
        assert len(l2.banks[1]._load_q[0]) == 1
        assert len(l2.banks[0]._load_q[0]) == 0

    def test_disjoint_arrays_per_bank(self):
        l2, _ = make_l2(banks=2)
        l2.banks[0].array.insert(2, 0)
        assert not l2.banks[1].array.contains(2)

    def test_bank_count_matches_config(self):
        l2, _ = make_l2(banks=8)
        assert len(l2.banks) == 8


class TestEndToEnd:
    def test_hits_respond_on_both_banks(self):
        l2, responses = make_l2(banks=2)
        l2.banks[0].array.insert(2, 0)
        l2.banks[1].array.insert(3, 0)
        l2.accept(read(2), 0)
        l2.accept(read(3), 0)
        for now in range(60):
            l2.tick(now)
        assert len(responses) == 2

    def test_busy_and_drain(self):
        l2, _ = make_l2()
        l2.banks[0].array.insert(2, 0)
        l2.accept(read(2), 0)
        assert l2.busy()
        for now in range(100):
            l2.tick(now)
        assert not l2.busy()


class TestAggregation:
    def test_utilizations_average_banks(self):
        l2, _ = make_l2(banks=2)
        l2.banks[0].array.insert(2, 0)
        l2.accept(read(2), 0)   # only bank 0 works
        for now in range(100):
            l2.tick(now)
        utils = l2.utilizations(100)
        # Bank 0 tag busy 4 cycles, bank 1 idle: average 0.02.
        assert utils["tag"] == pytest.approx(0.02)

    def test_counter_total(self):
        l2, _ = make_l2(banks=2)
        l2.banks[0].array.insert(2, 0)
        l2.banks[1].array.insert(3, 0)
        l2.accept(read(2), 0)
        l2.accept(read(3), 0)
        for now in range(100):
            l2.tick(now)
        assert l2.counter_total("read_hits") == 2

    def test_occupancy_by_thread(self):
        l2, _ = make_l2(banks=2)
        l2.banks[0].array.insert(2, 0)
        l2.banks[1].array.insert(3, 1)
        assert l2.occupancy_by_thread(2) == [1, 1]

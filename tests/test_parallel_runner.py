"""The parallel point runner: cross-process determinism and the cache.

The fan-out and the on-disk cache are only sound because a
:class:`~repro.experiments.parallel.SimPoint` simulates bit-identically
wherever and whenever it runs — seeded PRNG traces, no ambient state.
These tests pin that down, then the cache mechanics (hit/miss/write,
key sensitivity, opt-out).  The autouse conftest fixture points
``REPRO_CACHE_DIR`` at a per-test tmp directory.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.experiments import parallel
from repro.experiments.parallel import SimPoint, run_point, run_points


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    parallel.configure(jobs=1, cache=True)
    yield
    parallel.configure(jobs=1, cache=True)


def _two_thread_point(**overrides) -> SimPoint:
    params = dict(
        config=baseline_config(n_threads=2, arbiter="vpc",
                               vpc=VPCAllocation.equal(2)),
        traces=(("loads",), ("stores",)),
        warmup=500,
        measure=1_500,
    )
    params.update(overrides)
    return SimPoint(**params)


def _target_point() -> SimPoint:
    private = private_equivalent(baseline_config(n_threads=2),
                                 phi=0.5, beta=0.5)
    return SimPoint(config=private, traces=(("spec", "art"),),
                    warmup=500, measure=1_500, cacheable=True)


def test_cross_process_reproducibility():
    """A point simulated in a worker process matches the in-process run
    exactly — the seeded trace generators leave nothing to the host."""
    point = _two_thread_point()
    local = run_point(point)
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(run_point, point).result()
    assert remote == local


def test_run_points_parallel_matches_serial():
    points = [
        _two_thread_point(),
        _two_thread_point(traces=(("spec", "art"), ("spec", "mcf"))),
        _target_point(),
    ]
    serial = run_points(points)
    parallel.configure(jobs=2, cache=False)
    fanned = run_points(points)
    assert fanned == serial


def test_cache_write_then_hit():
    point = _target_point()
    first = run_points([point])[0]
    assert parallel.cache_stats == {"hits": 0, "misses": 1}
    files = list(parallel.cache_dir().glob("*.json"))
    assert len(files) == 1
    second = run_points([point])[0]
    assert parallel.cache_stats == {"hits": 1, "misses": 1}
    assert second == first


def test_uncacheable_points_never_touch_disk():
    run_points([_two_thread_point()])
    assert parallel.cache_stats == {"hits": 0, "misses": 0}
    assert not parallel.cache_dir().exists()


def test_no_cache_disables_reads_and_writes():
    parallel.configure(cache=False)
    run_points([_target_point()])
    assert parallel.cache_stats == {"hits": 0, "misses": 0}
    assert not parallel.cache_dir().exists()


def test_cache_key_covers_every_field():
    base = _target_point()
    variants = [
        _two_thread_point(),
        SimPoint(config=base.config, traces=base.traces,
                 warmup=base.warmup + 1, measure=base.measure,
                 cacheable=True),
        SimPoint(config=base.config, traces=(("spec", "mcf"),),
                 warmup=base.warmup, measure=base.measure, cacheable=True),
    ]
    keys = {parallel.cache_key(p) for p in [base, *variants]}
    assert len(keys) == len(variants) + 1


def test_corrupt_cache_entry_falls_back_to_simulation(tmp_path):
    point = _target_point()
    expected = run_point(point)
    directory = parallel.cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{parallel.cache_key(point)}.json"
    path.write_text("{not json")
    assert run_points([point])[0] == expected
    # ... and the bad entry was repaired in passing.
    assert run_points([point])[0] == expected
    assert parallel.cache_stats["hits"] >= 1

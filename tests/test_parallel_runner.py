"""The parallel point runner: cross-process determinism and the cache.

The fan-out and the on-disk cache are only sound because a
:class:`~repro.experiments.parallel.SimPoint` simulates bit-identically
wherever and whenever it runs — seeded PRNG traces, no ambient state.
These tests pin that down, then the cache mechanics (hit/miss/write,
key sensitivity, opt-out).  The autouse conftest fixture points
``REPRO_CACHE_DIR`` at a per-test tmp directory.
"""

from __future__ import annotations

import io
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.experiments import parallel
from repro.experiments.parallel import SimPoint, run_point, run_points
from repro.telemetry import ProgressReporter, RingBufferSink, TelemetryBus


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    parallel.configure(jobs=1, cache=True)
    yield
    parallel.configure(jobs=1, cache=True)


def _two_thread_point(**overrides) -> SimPoint:
    params = dict(
        config=baseline_config(n_threads=2, arbiter="vpc",
                               vpc=VPCAllocation.equal(2)),
        traces=(("loads",), ("stores",)),
        warmup=500,
        measure=1_500,
    )
    params.update(overrides)
    return SimPoint(**params)


def _target_point() -> SimPoint:
    private = private_equivalent(baseline_config(n_threads=2),
                                 phi=0.5, beta=0.5)
    return SimPoint(config=private, traces=(("spec", "art"),),
                    warmup=500, measure=1_500, cacheable=True)


def test_cross_process_reproducibility():
    """A point simulated in a worker process matches the in-process run
    exactly — the seeded trace generators leave nothing to the host."""
    point = _two_thread_point()
    local = run_point(point)
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(run_point, point).result()
    assert remote == local


def test_run_points_parallel_matches_serial():
    points = [
        _two_thread_point(),
        _two_thread_point(traces=(("spec", "art"), ("spec", "mcf"))),
        _target_point(),
    ]
    serial = run_points(points)
    parallel.configure(jobs=2, cache=False)
    fanned = run_points(points)
    assert fanned == serial


def test_cache_write_then_hit():
    point = _target_point()
    first = run_points([point])[0]
    assert parallel.cache_stats == {"hits": 0, "misses": 1}
    files = list(parallel.cache_dir().glob("*.json"))
    assert len(files) == 1
    second = run_points([point])[0]
    assert parallel.cache_stats == {"hits": 1, "misses": 1}
    assert second == first


def test_uncacheable_points_never_touch_disk():
    run_points([_two_thread_point()])
    assert parallel.cache_stats == {"hits": 0, "misses": 0}
    assert not parallel.cache_dir().exists()


def test_no_cache_disables_reads_and_writes():
    parallel.configure(cache=False)
    run_points([_target_point()])
    assert parallel.cache_stats == {"hits": 0, "misses": 0}
    assert not parallel.cache_dir().exists()


def test_cache_key_covers_every_field():
    base = _target_point()
    variants = [
        _two_thread_point(),
        SimPoint(config=base.config, traces=base.traces,
                 warmup=base.warmup + 1, measure=base.measure,
                 cacheable=True),
        SimPoint(config=base.config, traces=(("spec", "mcf"),),
                 warmup=base.warmup, measure=base.measure, cacheable=True),
    ]
    keys = {parallel.cache_key(p) for p in [base, *variants]}
    assert len(keys) == len(variants) + 1


def test_cache_summary_line():
    assert parallel.cache_summary() is None  # nothing ran yet
    point = _target_point()
    run_points([point])
    summary = parallel.cache_summary()
    assert "0 hits" in summary and "1 misses" in summary
    run_points([point])
    summary = parallel.cache_summary()
    assert "1 hits" in summary and "1 misses" in summary
    assert str(parallel.cache_dir()) in summary


def test_runner_summary_line_reports_cache_hits(capsys, monkeypatch):
    """The end-of-run summary of ``python -m repro.experiments`` surfaces
    the target-cache hit/miss counts accumulated across experiments."""
    from repro.experiments import runner
    from repro.experiments.base import REGISTRY, ExperimentResult

    def fake_experiment(fast=False):
        run_points([_target_point()])
        return ExperimentResult(exp_id="dummy", title="dummy",
                                headers=["x"], rows=[[1]])

    monkeypatch.setitem(REGISTRY, "dummy", fake_experiment)
    assert runner.main(["dummy", "dummy", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "target cache: 1 hits, 1 misses" in out


def test_run_experiment_attaches_manifest(monkeypatch):
    from repro.experiments import runner
    from repro.experiments.base import REGISTRY, ExperimentResult

    def fake_experiment(fast=False):
        run_points([_target_point()])
        return ExperimentResult(exp_id="dummy", title="dummy",
                                headers=["x"], rows=[[1]])

    monkeypatch.setitem(REGISTRY, "dummy", fake_experiment)
    result = runner.run_experiment("dummy", fast=True)
    manifest = result.manifest
    assert manifest is not None
    assert manifest.kernel == "event"
    assert manifest.cache == {"hits": 0, "misses": 1}
    assert manifest.git_sha
    assert manifest.wall_time_s >= 0
    assert manifest.extra["exp_id"] == "dummy"
    assert manifest.extra["fast"] is True
    # The second run hits the cache; each manifest sees only its delta.
    assert runner.run_experiment("dummy").manifest.cache == {
        "hits": 1, "misses": 0,
    }


def test_progress_reporter_ticks_per_point():
    stream = io.StringIO()
    parallel.configure(progress=ProgressReporter(stream=stream))
    point = _target_point()
    run_points([point, _two_thread_point()])
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    assert "[1/2]" in lines[0] and "[2/2]" in lines[1]
    assert "cache 0/2 hits" in lines[1]
    # A fresh batch with a warm cache reports the hit.
    stream2 = io.StringIO()
    parallel.configure(progress=ProgressReporter(stream=stream2))
    run_points([point])
    assert "cache 1/1 hits" in stream2.getvalue()


def test_orchestration_telemetry_events():
    bus = TelemetryBus()
    ring = bus.attach(RingBufferSink())
    parallel.configure(telemetry=bus)
    point = _target_point()
    run_points([point, _two_thread_point()])
    names = sorted(event.name for event in ring)
    assert names == ["point0", "point1"]
    assert all(event.category == "run" for event in ring)
    run_points([point])
    assert [e.name for e in ring][-1] == "cache-hit"


def test_corrupt_cache_entry_falls_back_to_simulation(tmp_path):
    point = _target_point()
    expected = run_point(point)
    directory = parallel.cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{parallel.cache_key(point)}.json"
    path.write_text("{not json")
    assert run_points([point])[0] == expected
    # ... and the bad entry was repaired in passing.
    assert run_points([point])[0] == expected
    assert parallel.cache_stats["hits"] >= 1

"""The telemetry subsystem: bus/sinks, zero-perturbation, Perfetto
export, schema validation, histograms, manifests, and the CLI flags.

The two load-bearing contracts:

* **Tracing never changes simulation results** — a traced run's
  ``SimulationResult`` equals the untraced run's, field for field.
* **Exported traces are well-formed** — every retired request appears
  as exactly one balanced async begin/end pair, and the whole file
  passes the trace_event schema validator the CI smoke uses.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.common.config import baseline_config
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.telemetry import (
    CAT_ARBITER,
    CAT_KERNEL,
    CAT_REQUEST,
    CAT_RESOURCE,
    CategoryFilterSink,
    Histogram,
    JsonlSink,
    LatencyHistogramSink,
    PH_BEGIN,
    PH_END,
    ProgressReporter,
    RingBufferSink,
    RunManifest,
    TelemetryBus,
    TraceEvent,
    TraceSink,
    chrome_trace,
    config_hash,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.workloads.microbench import loads_trace, stores_trace


def _event(**overrides) -> TraceEvent:
    params = dict(ts=10, phase="i", category="kernel", name="skip",
                  track="kernel")
    params.update(overrides)
    return TraceEvent(**params)


def _traced_system(record_requests=False, kernel="event"):
    config = baseline_config(n_threads=2, arbiter="vpc")
    traces = [loads_trace(0), stores_trace(1)]
    bus = TelemetryBus()
    ring = bus.attach(RingBufferSink())
    system = CMPSystem(config, traces, telemetry=bus, kernel=kernel,
                       record_requests=record_requests)
    return system, ring


class TestBusAndSinks:
    def test_event_to_dict_omits_empty_fields(self):
        minimal = _event().to_dict()
        assert minimal == {"ts": 10, "ph": "i", "cat": "kernel",
                           "name": "skip", "track": "kernel"}
        full = _event(tid=1, dur=4, id=7, args={"x": 1}).to_dict()
        assert full["tid"] == 1 and full["dur"] == 4
        assert full["id"] == 7 and full["args"] == {"x": 1}

    def test_bus_fans_out_and_detaches(self):
        bus = TelemetryBus()
        a = bus.attach(RingBufferSink())
        b = bus.attach(RingBufferSink())
        assert isinstance(a, TraceSink)
        bus.emit(_event())
        bus.detach(a)
        bus.emit(_event())
        assert len(a) == 1 and len(b) == 2

    def test_ring_buffer_drops_oldest(self):
        ring = RingBufferSink(capacity=2)
        for ts in range(5):
            ring.emit(_event(ts=ts))
        assert [event.ts for event in ring] == [3, 4]

    def test_jsonl_sink_streams_one_object_per_line(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit(_event(args={"obj": object()}))  # non-JSON arg degrades
        sink.emit(_event(ts=11))
        sink.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["ts"] == 11

    def test_category_filter(self):
        ring = RingBufferSink()
        sink = CategoryFilterSink(ring, [CAT_KERNEL])
        sink.emit(_event(category=CAT_KERNEL))
        sink.emit(_event(category=CAT_REQUEST))
        assert len(ring) == 1


class TestZeroPerturbation:
    def test_traced_run_matches_untraced(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        plain = run_simulation(
            CMPSystem(config, [loads_trace(0), stores_trace(1)]),
            warmup=2_000, measure=2_000)
        system, ring = _traced_system()
        traced = run_simulation(system, warmup=2_000, measure=2_000)
        assert traced == plain
        assert len(ring) > 0  # ... and the trace actually captured events

    def test_untraced_components_hold_no_bus(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        assert system.telemetry is None
        assert all(bank._trace is None for bank in system.banks)
        assert system.crossbar._trace is None


class TestRequestLifecycles:
    def test_request_log_rides_the_bus(self):
        """``record_requests=True`` is a bus subscriber now, not a side
        channel: the system creates a private bus when none is given."""
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)],
                           record_requests=True)
        assert system.telemetry is not None
        system.run(4_000)
        log = system.request_log
        assert log and all(req.is_read for req in log)
        # The property exposes the live list (callers clear() it).
        system.request_log.clear()
        assert system.request_log == []

    def test_perfetto_one_balanced_pair_per_retired_request(self):
        """Satellite: a traced 2-thread loads+stores run exports exactly
        one async begin and one async end per request span, balanced."""
        system, ring = _traced_system(record_requests=True)
        system.run(6_000)
        records = chrome_trace(ring)
        begins = {}
        ends = {}
        for record in records:
            if record.get("cat") != CAT_REQUEST:
                continue
            if record["ph"] == PH_BEGIN:
                begins[record["id"]] = begins.get(record["id"], 0) + 1
            elif record["ph"] == PH_END:
                ends[record["id"]] = ends.get(record["id"], 0) + 1
        assert begins  # the run retired work
        assert begins == ends  # balanced, span for span
        assert all(count == 1 for count in begins.values())
        # Every retired demand load shows up as one of those spans.
        for request in system.request_log:
            assert begins.get(str(request.req_id)) == 1

    def test_trace_has_thread_resource_and_kernel_tracks(self):
        system, ring = _traced_system()
        system.run(6_000)
        records = chrome_trace(ring)
        names = {(r["ph"], r.get("args", {}).get("name"))
                 for r in records if r["ph"] == "M"}
        track_names = {name for ph, name in names}
        assert {"hardware threads", "shared resources", "t0", "t1"} \
            <= track_names
        assert any(name and name.startswith("bank0.")
                   for name in track_names)
        cats = {r.get("cat") for r in records}
        assert CAT_RESOURCE in cats and CAT_ARBITER in cats

    def test_kernel_skip_markers_present_under_event_kernel(self):
        system, ring = _traced_system(kernel="event")
        system.run(8_000)
        skips = [e for e in ring if e.category == CAT_KERNEL]
        assert system.skips_taken > 0
        assert len(skips) == system.skips_taken
        assert all(e.dur > 0 and e.args["to"] > e.ts for e in skips)


class TestPerfettoExport:
    def test_synthetic_end_closes_inflight_spans(self):
        events = [
            _event(ts=5, phase=PH_BEGIN, category=CAT_REQUEST, name="load",
                   track="t0", tid=0, id=1),
            _event(ts=9, phase="X", category=CAT_RESOURCE, name="tag",
                   track="bank0.tag", dur=3),
        ]
        records = chrome_trace(events)
        assert validate_chrome_trace(records) == []
        ends = [r for r in records if r["ph"] == PH_END]
        assert len(ends) == 1
        assert ends[0]["id"] == "1"
        assert ends[0]["args"]["truncated"] is True
        assert ends[0]["ts"] == 12  # last observed timestamp (9 + dur 3)

    def test_synthetic_begin_for_evicted_begin(self):
        """A ring buffer can evict a span's begin; the exporter heals it."""
        events = [_event(ts=50, phase=PH_END, category=CAT_REQUEST,
                         name="load", track="t0", tid=0, id=9)]
        records = chrome_trace(events)
        assert validate_chrome_trace(records) == []

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        system, ring = _traced_system()
        system.run(4_000)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, ring)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert validate_chrome_trace(payload) == []


class TestValidator:
    def test_rejects_malformed_records(self):
        bad = [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 0, "ts": 0},
            {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0},
            {"ph": "b", "name": "x", "pid": 1, "tid": 0, "ts": 0,
             "cat": "request", "id": "1"},
            {"ph": "i", "name": "x", "pid": 1, "tid": 0, "ts": 0, "s": "q"},
        ]
        errors = validate_chrome_trace(bad)
        assert any("bad phase" in e for e in errors)
        assert any("without 'dur'" in e for e in errors)
        assert any("unclosed async span" in e for e in errors)
        assert any("bad instant scope" in e for e in errors)

    def test_rejects_non_trace_payload(self):
        assert validate_chrome_trace(42)
        assert validate_chrome_trace({"foo": []})

    def test_cli_entrypoint(self, tmp_path, capsys):
        from repro.telemetry.validate import main
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"traceEvents": []}))
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"ph": "Z"}]))
        assert main([str(bad)]) == 1
        assert main([]) == 2


class TestHistograms:
    def test_histogram_exact_moments_and_bucket_bounds(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 100):
            hist.record(value)
        assert hist.count == 5
        assert hist.mean == pytest.approx(106 / 5)
        assert hist.maximum == 100
        assert hist.percentile(1.0) == 100
        # p50 lands in the bucket holding the 3rd sample: [2, 3].
        assert hist.percentile(0.50) == 3
        rows = hist.buckets()
        assert rows[0] == (0, 0, 1)
        assert sum(count for _, _, count in rows) == 5
        with pytest.raises(ValueError):
            hist.record(-1)

    def test_sink_matches_request_log_analysis(self):
        """The streaming histograms agree with the list-based analysis
        module they subsume (same stage vocabulary, same population)."""
        from repro.analysis.latency import loads_by_thread
        system, _ = _traced_system(record_requests=True)
        hist_sink = system.telemetry.attach(LatencyHistogramSink())
        system.run(6_000)
        summaries = loads_by_thread(system.request_log)
        assert hist_sink.threads() == sorted(summaries)
        for tid, summary in summaries.items():
            hist = hist_sink.histogram(tid, "total")
            assert hist.count == summary.count
            assert hist.mean == pytest.approx(summary.mean)
            assert hist.maximum == summary.maximum

    def test_report_renders_all_stages(self):
        system, _ = _traced_system()
        sink = system.telemetry.attach(LatencyHistogramSink())
        system.run(6_000)
        report = sink.format_report()
        # loads misses every access, so the hit-path data/bus stamps
        # never appear; the miss-path stages always do.
        for stage in ("total", "queueing", "tag"):
            assert stage in report


class TestManifest:
    def test_collect_fills_provenance(self):
        config = baseline_config(n_threads=2)
        manifest = RunManifest.collect(
            config=config, kernel="event", seeds=[1, 2],
            cache={"hits": 3, "misses": 1}, wall_time_s=0.5, note="x")
        assert manifest.config_hash == config_hash(config)
        assert len(manifest.config_hash) == 16
        assert manifest.git_sha and manifest.git_sha != ""
        assert manifest.seeds == (1, 2)
        assert manifest.cache == {"hits": 3, "misses": 1}
        assert manifest.created_unix > 0
        assert manifest.extra == {"note": "x"}

    def test_config_hash_sensitivity(self):
        a = baseline_config(n_threads=2)
        b = baseline_config(n_threads=4)
        assert config_hash(a) == config_hash(baseline_config(n_threads=2))
        assert config_hash(a) != config_hash(b)

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "m.json"
        RunManifest.collect(kernel="cycle", wall_time_s=1.25).write(path)
        payload = json.loads(path.read_text())
        assert payload["kernel"] == "cycle"
        assert payload["wall_time_s"] == 1.25
        assert set(payload) >= {"config_hash", "git_sha", "seeds", "cache",
                                "created_unix", "extra"}


class TestProgressReporter:
    def test_reports_progress_eta_and_cache_rate(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, label="fig8")
        reporter.begin(3)
        reporter.point_done(cached=True)
        reporter.point_done()
        reporter.point_done()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("fig8: [1/3]")
        assert "ETA" in lines[0]
        assert "cache 1/1 hits" in lines[0]
        assert "[3/3] 100.0%" in lines[2]
        assert "done" in lines[2]

    def test_begin_extends_open_batch(self):
        reporter = ProgressReporter(stream=io.StringIO())
        reporter.begin(2)
        reporter.point_done()
        reporter.begin(2)  # a second run_points in the same experiment
        assert reporter.total == 4 and reporter.done == 1
        reporter.point_done()
        reporter.point_done()
        reporter.point_done()
        reporter.begin(5)  # finished batch: a fresh experiment restarts
        assert reporter.total == 5 and reporter.done == 0


class TestCLI:
    def test_trace_and_manifest_flags(self, tmp_path, capsys):
        from repro.cli import main
        trace = tmp_path / "out.json"
        manifest = tmp_path / "run.manifest.json"
        assert main(["loads", "stores", "--arbiter", "vpc",
                     "--warmup", "2000", "--cycles", "2000",
                     "--trace", str(trace),
                     "--manifest", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        doc = json.loads(manifest.read_text())
        assert doc["kernel"] == "event"
        assert doc["config_hash"]
        assert doc["extra"]["workloads"] == ["loads", "stores"]

    def test_jsonl_trace_and_histograms(self, tmp_path, capsys):
        from repro.cli import main
        trace = tmp_path / "out.jsonl"
        assert main(["loads", "stores", "--warmup", "2000",
                     "--cycles", "2000", "--trace", str(trace),
                     "--histograms"]) == 0
        lines = trace.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        assert "latency histograms" in capsys.readouterr().out

    def test_untraced_cli_run_still_works(self, capsys):
        from repro.cli import main
        assert main(["loads", "--warmup", "1000", "--cycles", "1000"]) == 0
        assert "IPC" in capsys.readouterr().out

"""Unit tests for repro.common.stats."""

import pytest

from repro.common.stats import Counters, UtilizationMeter, harmonic_mean, weighted_mean


class TestUtilizationMeter:
    def test_accumulates_busy_cycles(self):
        meter = UtilizationMeter("tag")
        meter.mark_busy(0, 4)
        meter.mark_busy(10, 4)
        assert meter.busy_cycles == 8
        assert meter.utilization(100) == pytest.approx(0.08)

    def test_overlap_detected(self):
        meter = UtilizationMeter("data")
        meter.mark_busy(0, 8)
        with pytest.raises(RuntimeError):
            meter.mark_busy(4, 8)

    def test_back_to_back_is_legal(self):
        meter = UtilizationMeter("data")
        meter.mark_busy(0, 8)
        meter.mark_busy(8, 8)
        assert meter.utilization(16) == pytest.approx(1.0)

    def test_is_free(self):
        meter = UtilizationMeter("bus")
        meter.mark_busy(0, 8)
        assert not meter.is_free(7)
        assert meter.is_free(8)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMeter().mark_busy(0, -1)

    def test_interval_subtraction_via_snapshot(self):
        meter = UtilizationMeter()
        meter.mark_busy(0, 10)
        snap = meter.snapshot()
        meter.mark_busy(20, 5)
        assert meter.utilization(100, since_busy=snap) == pytest.approx(0.05)

    def test_zero_total_cycles(self):
        assert UtilizationMeter().utilization(0) == 0.0


class TestCounters:
    def test_add_and_get(self):
        counters = Counters()
        counters.add("hits")
        counters.add("hits", 2)
        assert counters.get("hits") == 3
        assert counters.get("absent") == 0

    def test_since_snapshot(self):
        counters = Counters()
        counters.add("x", 5)
        snap = counters.snapshot()
        counters.add("x", 2)
        counters.add("y", 1)
        delta = counters.since(snap)
        assert delta["x"] == 2
        assert delta["y"] == 1


class TestMeans:
    def test_harmonic_mean_basic(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([1.0, 0.5]) == pytest.approx(2 / 3)

    def test_harmonic_mean_dominated_by_minimum(self):
        assert harmonic_mean([10.0, 0.1]) < 0.2

    def test_harmonic_mean_rejects_zero(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_harmonic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_mean_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

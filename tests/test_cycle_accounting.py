"""Cycle accounting: exact conservation, kernel independence, and the
fig10 slowdown decomposition (ISSUE 7).

The contract under test (docs/ARCHITECTURE.md "Cycle accounting"):
every simulated cycle of every thread lands in exactly one CPI-stack
bucket, so per-thread bucket sums equal measured cycles bit-for-bit —
on all three kernels, because the hooks fire at identical (thread,
cycle) points regardless of how the kernel schedules component steps.
On top of the invariant sit the surfaces: ``decompose_slowdown`` must
produce byte-identical tables from the on-disk aggregate and from a
scraped ``/snapshot`` (the runner hands the same object to both), the
fig10 table must show VPC shrinking the L2-queueing buckets vs. FCFS
(the paper's claim in cycle terms), and the run-history ledger must
round-trip stacks through its JSONL append/read/diff cycle.
"""

from __future__ import annotations

import json
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import baseline_config
from repro.experiments import parallel
from repro.experiments.runner import run_experiment
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.telemetry import LiveRun, TelemetryServer
from repro.telemetry.cycles import (
    BUCKETS,
    QUEUE_BUCKETS,
    decompose_slowdown,
    verify_stack,
)
from repro.telemetry.history import (
    append_entry,
    build_entry,
    diff_entries,
    read_history,
    render_diff,
    render_history,
)
from repro.workloads.profiles import spec_trace

KERNELS = ("cycle", "event", "batch")

# Memory-intensive profiles exercise every bucket (queueing, bank
# conflicts, MSHR pressure, DRAM); compute-bound ones keep base/idle
# honest.  Hypothesis draws mixes from both ends.
WORKLOADS = ("art", "mcf", "mesa", "equake", "swim", "ammp", "crafty")


def _stack_for(names, arbiter, kernel, warmup=800, measure=1_200):
    config = baseline_config(n_threads=len(names), arbiter=arbiter)
    traces = [spec_trace(name, tid) for tid, name in enumerate(names)]
    system = CMPSystem(config, traces, kernel=kernel)
    system.attach_cycle_accounting()
    result = run_simulation(system, warmup=warmup, measure=measure)
    return result.cpi_stacks


@settings(max_examples=6, deadline=None)
@given(
    names=st.lists(st.sampled_from(WORKLOADS), min_size=2, max_size=4),
    arbiter=st.sampled_from(["fcfs", "vpc"]),
)
def test_conservation_and_kernel_identity(names, arbiter):
    """Random mixes x {fcfs, vpc} x all three kernels: every thread's
    buckets sum exactly to measured cycles, and the skipping kernels
    reproduce the cycle kernel's stacks bit for bit."""
    stacks = {}
    for kernel in KERNELS:
        snap = _stack_for(names, arbiter, kernel)
        assert verify_stack(snap) == [], (kernel, verify_stack(snap))
        for tid, row in enumerate(snap["threads"]):
            assert sum(row) == snap["measured_cycles"], (kernel, tid)
        stacks[kernel] = json.dumps(snap, sort_keys=True)
    assert stacks["event"] == stacks["cycle"]
    assert stacks["batch"] == stacks["cycle"]


def test_conservation_survives_rebase_and_continuation():
    """Accounting attached before warmup and rebased at the measurement
    boundary (what run_simulation does) still conserves exactly over
    chunked continuations."""
    config = baseline_config(n_threads=2, arbiter="vpc")
    traces = [spec_trace("art", 0), spec_trace("mcf", 1)]
    system = CMPSystem(config, traces)
    acct = system.attach_cycle_accounting()
    system.run(700)
    acct.rebase(system.cycle)
    for chunk in (300, 500, 200):
        system.run(chunk)
    snap = acct.snapshot(system.cycle)
    assert snap["measured_cycles"] == 1_000
    assert verify_stack(snap) == []


# --------------------------------------------------------------------- #
# fig10 golden: disk aggregate vs. scraped /snapshot, and the paper's
# qualitative claim (VPC bounds L2 queueing) in cycle terms.
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def fig10_observed(tmp_path_factory):
    """One fast fig10 sweep with stacks on, served live — the expensive
    part, shared by the golden tests below."""
    parallel.configure(jobs=1, metrics=500, live=LiveRun(),
                       cpi_stacks=True)
    live = parallel.configured_live()
    try:
        result = run_experiment("fig10", fast=True)
        disk = tmp_path_factory.mktemp("fig10") / "fig10.metrics.json"
        disk.write_text(json.dumps(result.metrics, indent=2) + "\n")
        with TelemetryServer(live, port=0) as server:
            with urllib.request.urlopen(f"{server.url}/snapshot",
                                        timeout=10) as response:
                scraped = json.loads(response.read())
        yield result, json.loads(disk.read_text()), scraped
    finally:
        parallel.configure(jobs=1, cache=True)


def test_fig10_snapshot_matches_disk_byte_for_byte(fig10_observed):
    """finish_run hands /snapshot the exact aggregate written to disk,
    so the decomposition computed from either source is byte-identical
    — the golden the report card depends on."""
    _, disk, scraped = fig10_observed
    assert scraped == disk
    from_disk = decompose_slowdown(disk["per_point"])
    from_snap = decompose_slowdown(scraped["per_point"])
    assert from_disk is not None
    assert json.dumps(from_disk, sort_keys=True) == \
        json.dumps(from_snap, sort_keys=True)


def test_fig10_vpc_shrinks_l2_queueing(fig10_observed):
    """The decomposition must show the paper's mechanism: VPC's
    arbiter bounds each thread's share of L2 bandwidth, so the
    L2-queueing CPI components shrink vs. FCFS."""
    _, disk, _ = fig10_observed
    decomposition = decompose_slowdown(disk["per_point"])
    assert {"solo", "fcfs", "vpc"} <= set(decomposition["groups"])
    cpi = decomposition["cpi"]
    deltas = {
        bucket: cpi["vpc"][BUCKETS.index(bucket)]
        - cpi["fcfs"][BUCKETS.index(bucket)]
        for bucket in QUEUE_BUCKETS
    }
    assert all(delta <= 0 for delta in deltas.values()), deltas
    assert sum(deltas.values()) < 0, deltas


def test_fig10_per_point_stacks_conserve(fig10_observed):
    """Every per-point snapshot in the aggregate carries a stack that
    re-validates offline — what `repro validate` re-checks."""
    _, disk, _ = fig10_observed
    checked = 0
    for snapshot in disk["per_point"]:
        stacks = snapshot.get("cpi_stacks")
        if stacks is None:
            continue
        assert verify_stack(stacks) == []
        checked += 1
    assert checked >= 2


# --------------------------------------------------------------------- #
# Run-history ledger.
# --------------------------------------------------------------------- #

def _entry(tmp_metrics, exp_id="fig10"):
    return build_entry(exp_id, manifest={"kernel": "event"},
                       metrics=tmp_metrics)


def test_history_roundtrip_and_diff(fig10_observed, tmp_path):
    """Append two entries, read them back (torn trailing line ignored),
    and diff them bucket-by-bucket."""
    _, disk, _ = fig10_observed
    ledger = tmp_path / "ledger.jsonl"
    append_entry(ledger, _entry(disk))
    append_entry(ledger, _entry(disk, exp_id="fig10-again"))
    with open(ledger, "a", encoding="utf-8") as fh:
        fh.write('{"torn": ')  # a crash mid-append must not poison reads
    entries = read_history(ledger)
    assert [e["exp_id"] for e in entries] == ["fig10", "fig10-again"]
    assert render_history(entries)  # renders without raising
    diff = diff_entries(entries[0], entries[1])
    assert diff["schema"] == "repro.run-history-diff/1"
    for group in diff["groups"].values():
        assert all(delta == 0 for delta in group["delta"])
    assert render_diff(diff)


def test_history_missing_ledger_reads_empty(tmp_path):
    assert read_history(tmp_path / "absent.jsonl") == []


# --------------------------------------------------------------------- #
# Dashboard: stacks column + narrow terminals.
# --------------------------------------------------------------------- #

def test_dashboard_renders_stacks_and_clips_to_width(fig10_observed):
    from repro.telemetry.dashboard import render

    _, disk, _ = fig10_observed
    health = {"status": "finished", "run": "fig10",
              "points": {"done": disk["points"],
                         "total": disk["points"]}}
    wide = render(disk, health).splitlines()
    assert any(line.lstrip().startswith("cpi stack") for line in wide)
    for width in (40, 60, 79):
        narrow = render(disk, health, width=width).splitlines()
        assert narrow, width
        assert all(len(line) <= width for line in narrow), (
            width, [line for line in narrow if len(line) > width][:3]
        )

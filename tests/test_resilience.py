"""Resilience subsystem tests: checkpoint determinism, journal replay,
and chaos recovery.

The load-bearing contract mirrors test_kernel_equivalence: a run that
was checkpointed, killed, and resumed must produce a
:class:`~repro.system.simulator.SimulationResult` (and metrics
snapshot) **exactly equal** to the uninterrupted run — no tolerances.
"""

from __future__ import annotations

import json
import pickle
import tempfile
from dataclasses import asdict
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import baseline_config
from repro.experiments import parallel
from repro.experiments.parallel import SimPoint
from repro.resilience import (
    ChaosConfig,
    CheckpointError,
    Checkpointer,
    FleetAborted,
    PointsExcludedError,
    ResilienceConfig,
    ResumableTrace,
    RunJournal,
    load_checkpoint,
    read_checkpoint_header,
    replay,
    resume_simulation,
    write_checkpoint,
)
from repro.resilience.chaos import corrupt_file
from repro.resilience.journal import (
    load_result,
    result_path,
    store_result,
)
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.telemetry import (
    InterferenceAttributor,
    MetricsCollector,
    TelemetryBus,
)
from repro.workloads import build_trace

WARMUP, MEASURE = 6_000, 4_000
SPECS = (("loads",), ("stores",))


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    """Leave the module-level execution policy exactly as the rest of
    the suite expects (serial, cache on, no resilience/observers)."""
    yield
    parallel.configure(jobs=1, cache=True)


def _system(arbiter: str, wrapped: bool, with_metrics: bool = False):
    config = baseline_config(n_threads=2, arbiter=arbiter)
    traces = [
        ResumableTrace(spec, tid) if wrapped else build_trace(spec, tid)
        for tid, spec in enumerate(SPECS)
    ]
    system = CMPSystem(config, traces)
    metrics = None
    if with_metrics:
        bus = system.attach_telemetry(TelemetryBus())
        metrics = bus.attach(MetricsCollector(2, window=500))
        bus.attach(InterferenceAttributor(2))
    return system, metrics


class TestCheckpointDeterminism:
    """Golden checks: checkpointed/resumed == uninterrupted, bit for bit."""

    @pytest.mark.parametrize("arbiter", ["vpc", "fcfs"])
    def test_resume_matches_uninterrupted(self, tmp_path, arbiter):
        ref_system, _ = _system(arbiter, wrapped=False)
        reference = run_simulation(ref_system, warmup=WARMUP, measure=MEASURE)

        ckpt = tmp_path / "point.ckpt"
        system, _ = _system(arbiter, wrapped=True)
        checkpointer = Checkpointer(ckpt, every=1_000, point_key="golden")
        chunked = run_simulation(system, warmup=WARMUP, measure=MEASURE,
                                 checkpoint=checkpointer)
        # Checkpointing itself must not perturb the simulation...
        assert asdict(chunked) == asdict(reference)
        assert checkpointer.saved >= 2
        # ...and the tail resumed from the last mid-run snapshot must
        # land on the identical result in a "different process".
        resumed = resume_simulation(ckpt)
        assert asdict(resumed) == asdict(reference)

    def test_resume_preserves_metrics_byte_identity(self, tmp_path):
        ref_system, ref_metrics = _system("vpc", wrapped=False,
                                          with_metrics=True)
        reference = run_simulation(ref_system, warmup=WARMUP,
                                   measure=MEASURE, metrics=ref_metrics)
        ref_json = json.dumps(reference.metrics, indent=2, sort_keys=True)

        ckpt = tmp_path / "point.ckpt"
        system, metrics = _system("vpc", wrapped=True, with_metrics=True)
        checkpointer = Checkpointer(ckpt, every=1_200, point_key="m")
        run_simulation(system, warmup=WARMUP, measure=MEASURE,
                       metrics=metrics, checkpoint=checkpointer)
        assert checkpointer.saved >= 1

        resumed = resume_simulation(ckpt)
        assert asdict(resumed) == asdict(reference)
        assert json.dumps(resumed.metrics, indent=2,
                          sort_keys=True) == ref_json

    def test_wrapped_traces_do_not_perturb(self):
        plain, _ = _system("vpc", wrapped=False)
        wrapped, _ = _system("vpc", wrapped=True)
        a = run_simulation(plain, warmup=WARMUP, measure=MEASURE)
        b = run_simulation(wrapped, warmup=WARMUP, measure=MEASURE)
        assert asdict(a) == asdict(b)


class TestCheckpointFile:
    def test_header_fields(self, tmp_path):
        ckpt = tmp_path / "c.ckpt"
        system, _ = _system("vpc", wrapped=True)
        system.run(100)
        write_checkpoint(ckpt, system, _state_stub(), point_key="abc")
        header = read_checkpoint_header(ckpt)
        assert header["point_key"] == "abc"
        assert header["cycle"] == system.cycle
        assert header["schema"] >= 1

    def test_key_mismatch_rejected(self, tmp_path):
        ckpt = tmp_path / "c.ckpt"
        system, _ = _system("vpc", wrapped=True)
        write_checkpoint(ckpt, system, _state_stub(), point_key="mine")
        with pytest.raises(CheckpointError, match="mine"):
            load_checkpoint(ckpt, expect_key="other")

    def test_missing_and_garbage_files(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint_header(tmp_path / "nope.ckpt")
        garbage = tmp_path / "garbage.ckpt"
        garbage.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            read_checkpoint_header(garbage)


def _state_stub():
    from repro.system.simulator import MeasureState
    return MeasureState(warmup=1, measure=2, remaining=2,
                        dispatched_before=[0, 0], meter_snaps=[],
                        counter_snaps=[])


class TestSnapshotRoundTripProperties:
    """Hypothesis round-trips for the snapshot serialization layer."""

    @settings(max_examples=20, deadline=None)
    @given(spec=st.sampled_from([("loads",), ("stores",), ("spec", "art")]),
           consumed=st.integers(min_value=0, max_value=300))
    def test_resumable_trace_roundtrip(self, spec, consumed):
        original = ResumableTrace(spec, 1)
        for _ in range(consumed):
            next(original)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.count == original.count
        for _ in range(64):
            assert next(clone) == next(original)

    @settings(max_examples=15, deadline=None)
    @given(warmup=st.integers(min_value=0, max_value=10**6),
           measure=st.integers(min_value=1, max_value=10**6),
           remaining=st.integers(min_value=0, max_value=10**6),
           since=st.integers(min_value=0, max_value=10**6),
           dispatched=st.lists(st.integers(min_value=0, max_value=10**9),
                               min_size=1, max_size=8),
           key=st.text(
               alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=40))
    def test_measure_state_roundtrip(self, warmup, measure, remaining,
                                     since, dispatched, key):
        from repro.system.simulator import MeasureState
        state = MeasureState(
            warmup=warmup, measure=measure, remaining=remaining,
            dispatched_before=list(dispatched),
            meter_snaps=[(1, 2, 3)], counter_snaps=[{"a": 1}],
            since_checkpoint=since,
        )
        system = _TinySystem(cycle=warmup + (measure - remaining))
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "rt.ckpt"
            write_checkpoint(path, system, state, point_key=key)
            payload = load_checkpoint(path, expect_key=key)
        assert payload["state"].__dict__ == state.__dict__
        assert payload["system"].cycle == system.cycle

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_payload_corruption_always_detected(self, seed):
        import random
        system = _TinySystem(cycle=123)
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "c.ckpt"
            write_checkpoint(path, system, _state_stub(), point_key="k")
            raw = path.read_bytes()
            header_end = raw.index(b"\n", raw.index(b"\n") + 1) + 1
            rng = random.Random(seed)
            offset = rng.randrange(header_end, len(raw))
            mutated = bytearray(raw)
            mutated[offset] ^= 0xFF
            path.write_bytes(bytes(mutated))
            with pytest.raises(CheckpointError):
                load_checkpoint(path, expect_key="k")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_chaos_corruption_always_detected(self, seed):
        import random
        system = _TinySystem(cycle=5)
        with tempfile.TemporaryDirectory() as td:
            path = Path(td) / "c.ckpt"
            write_checkpoint(path, system, _state_stub())
            corrupt_file(path, random.Random(seed))
            with pytest.raises(CheckpointError):
                load_checkpoint(path)


class _TinySystem:
    """Minimal picklable stand-in for checkpoint-format round-trips."""

    def __init__(self, cycle: int) -> None:
        self.cycle = cycle


class TestJournal:
    def test_replay_roundtrip(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.run_started("fig10", n_points=3)
            journal.point_started("aaa", 0, 1)
            journal.point_finished("aaa", 0, 1)
            journal.point_started("bbb", 1, 1)
            journal.point_failed("bbb", 1, 1, "worker exited 137",
                                 retry_in=0.5)
            journal.point_started("ccc", 2, 1)
            journal.point_excluded("ccc", 2, 3, "kept timing out")
        state = replay(tmp_path)
        assert state.exp_id == "fig10"
        assert state.records["aaa"].status == "done"
        assert state.records["bbb"].status == "pending"  # retriable
        assert state.records["bbb"].last_error == "worker exited 137"
        assert state.records["ccc"].status == "excluded"
        assert not state.finished
        assert state.summary() == {"pending": 1, "running": 0,
                                   "done": 1, "excluded": 1}

    def test_torn_final_line_is_tolerated(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.run_started("x", n_points=1)
            journal.point_started("aaa", 0, 1)
            journal.point_finished("aaa", 0, 1)
        with open(tmp_path / "journal.jsonl", "a") as fh:
            fh.write('{"event": "point_started", "key": "bbb"')  # no \n
        state = replay(tmp_path)
        assert state.skipped_lines == 1
        assert state.records["aaa"].status == "done"
        assert "bbb" not in state.records

    def test_corrupt_interior_line_is_skipped(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            journal.run_started("x", n_points=1)
        with open(tmp_path / "journal.jsonl", "a") as fh:
            fh.write("}}}garbage{{{\n")
        with RunJournal(tmp_path) as journal:
            journal.point_started("aaa", 0, 1)
            journal.point_finished("aaa", 0, 1)
        state = replay(tmp_path)
        assert state.skipped_lines == 1
        assert state.records["aaa"].status == "done"

    def test_result_sidecar_roundtrip_and_corruption(self, tmp_path):
        system, _ = _system("fcfs", wrapped=False)
        result = run_simulation(system, warmup=2_000, measure=1_000)
        path = result_path(tmp_path, "k")
        store_result(path, result)
        assert asdict(load_result(path)) == asdict(result)
        path.write_bytes(path.read_bytes()[:10])  # truncate
        assert load_result(path) is None

    def test_missing_journal_is_fresh_state(self, tmp_path):
        state = replay(tmp_path / "never-created")
        assert state.records == {}
        assert state.started == 0


class TestChaosConfig:
    def test_parse(self):
        cfg = ChaosConfig.parse("kill=0.3,corrupt=0.2,seed=7,abort_after=2")
        assert cfg.kill == 0.3
        assert cfg.corrupt == 0.2
        assert cfg.seed == 7
        assert cfg.abort_after == 2
        assert cfg.armed()
        assert not ChaosConfig.parse("").armed()

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown chaos parameter"):
            ChaosConfig.parse("explode=1.0")

    def test_injector_is_deterministic(self):
        from repro.resilience.chaos import _rng_for
        cfg = ChaosConfig(seed=3)
        a = _rng_for(cfg, "key", 1)
        b = _rng_for(cfg, "key", 1)
        assert [a.random() for _ in range(5)] == [b.random()
                                                 for _ in range(5)]
        assert _rng_for(cfg, "key", 2).random() != _rng_for(
            cfg, "key", 1).random()


def _points(arbiters=("vpc", "fcfs")):
    return [
        SimPoint(config=baseline_config(n_threads=2, arbiter=arb),
                 traces=SPECS, warmup=4_000, measure=3_000,
                 capacity_policy="lru")
        for arb in arbiters
    ]


class TestResilientFleet:
    def test_chaos_killed_fleet_resumes_byte_identical(self, tmp_path):
        """The acceptance scenario: kill workers mid-point, corrupt some
        checkpoints, crash the orchestrator, then --resume — the final
        aggregate must be byte-identical to a clean run's and completed
        points must not re-simulate."""
        points = _points()
        parallel.configure(jobs=1, cache=False, metrics=500)
        clean = parallel.run_points(points)
        clean_json = [json.dumps(r.metrics, sort_keys=True) for r in clean]

        run_dir = tmp_path / "run"

        def resilient(chaos=None):
            parallel.configure(
                jobs=2, cache=False, metrics=500,
                resilience=ResilienceConfig(
                    run_dir=str(run_dir), checkpoint_every=1_000,
                    point_timeout=120.0, max_retries=4,
                    backoff_base=0.05, chaos=chaos),
            )
            return parallel.run_points(points)

        chaos = ChaosConfig(seed=11, kill=0.5, corrupt=0.3,
                            max_faults_per_point=2, abort_after=1)
        with pytest.raises(FleetAborted):
            resilient(chaos=chaos)

        journal_lines = (run_dir / "journal.jsonl").read_text().splitlines()
        results = resilient()
        assert all(r is not None for r in results)
        for got, want_json, want in zip(results, clean_json, clean):
            assert asdict(got) == asdict(want)
            assert json.dumps(got.metrics, sort_keys=True) == want_json

        # Third invocation: everything is journaled done — nothing runs.
        before = len((run_dir / "journal.jsonl").read_text().splitlines())
        again = resilient()
        after_lines = (run_dir / "journal.jsonl").read_text().splitlines()
        new_events = [json.loads(line)["event"]
                      for line in after_lines[before:]]
        assert "point_started" not in new_events
        for got, want in zip(again, clean):
            assert asdict(got) == asdict(want)

        # The chaos phase must have actually exercised failure paths.
        events = [json.loads(line)["event"] for line in journal_lines]
        assert "point_failed" in events

    def test_always_failing_point_is_excluded_with_report(self, tmp_path):
        points = _points(arbiters=("vpc",))
        chaos = ChaosConfig(seed=5, kill=1.0, max_faults_per_point=99)
        parallel.configure(
            jobs=1, cache=False,
            resilience=ResilienceConfig(
                run_dir=str(tmp_path / "run"), checkpoint_every=1_000,
                max_retries=1, backoff_base=0.01, chaos=chaos),
        )
        with pytest.raises(PointsExcludedError) as excinfo:
            parallel.run_points(points)
        err = excinfo.value
        assert len(err.excluded) == 1
        assert err.results == [None]
        assert "excluded after repeated failures" in str(err)
        state = replay(tmp_path / "run")
        only = next(iter(state.records.values()))
        assert only.status == "excluded"

    def test_resilient_run_without_faults_matches_plain(self, tmp_path):
        points = _points(arbiters=("fcfs",))
        parallel.configure(jobs=1, cache=False)
        clean = parallel.run_points(points)
        parallel.configure(
            jobs=1, cache=False,
            resilience=ResilienceConfig(
                run_dir=str(tmp_path / "run"), checkpoint_every=1_000),
        )
        resilient = parallel.run_points(points)
        assert asdict(resilient[0]) == asdict(clean[0])


class TestCacheCorruptionSatellite:
    def test_corrupt_cache_entry_is_evicted(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        point = _points(arbiters=("vpc",))[0]
        entry = tmp_path / f"{parallel.cache_key(point)}.json"
        entry.write_text('{"cycles": 3000, "warmup_cycl')  # truncated
        assert parallel._cache_load(point) is None
        assert not entry.exists(), "corrupt entry must be deleted"

    def test_missing_entry_is_plain_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        point = _points(arbiters=("vpc",))[0]
        assert parallel._cache_load(point) is None


class TestCliCheckpointResume:
    def test_resume_without_workloads_reprints_original_run(self, tmp_path,
                                                            capsys):
        """`python -m repro --resume-checkpoint X` needs no workload
        arguments — the snapshot restores specs, labels, and topology —
        and its report is byte-identical to the uninterrupted run's."""
        from repro import cli
        ckpt = tmp_path / "run.ckpt"
        assert cli.main(["loads", "stores", "--arbiter", "vpc",
                         "--warmup", "2000", "--cycles", "4000",
                         "--checkpoint", str(ckpt),
                         "--checkpoint-every", "1500"]) == 0
        full = capsys.readouterr().out
        assert cli.main(["--resume-checkpoint", str(ckpt)]) == 0
        assert capsys.readouterr().out == full

    def test_resume_rejects_mismatched_workload_count(self, tmp_path,
                                                      capsys):
        from repro import cli
        ckpt = tmp_path / "run.ckpt"
        cli.main(["loads", "stores", "--warmup", "2000", "--cycles", "3000",
                  "--checkpoint", str(ckpt), "--checkpoint-every", "1500"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            cli.main(["loads", "--resume-checkpoint", str(ckpt)])

    def test_workloads_required_without_resume(self):
        from repro import cli
        with pytest.raises(SystemExit):
            cli.main([])


class TestLiveRunResilienceCounters:
    def test_health_reports_retries_and_exclusions(self):
        from repro.telemetry import LiveRun
        live = LiveRun(stale_after=5.0)
        live.begin_run("x")
        live.point_retry(0, attempt=2, error="boom")
        live.point_retry(1, attempt=1, error="boom")
        live.point_excluded(0, error="gave up")
        health = live.health()
        assert health["resilience"] == {"retries": 2, "excluded": 1}
        live.begin_run("y")
        assert live.health()["resilience"] == {"retries": 0, "excluded": 0}

"""Property-based tests for the remaining substrate modules.

Complements the targeted unit tests with invariants under arbitrary
inputs: cache-array state consistency, store-gathering conservation,
DRAM timing sanity, core-model instruction accounting, and trace-file
round-tripping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache_array import CacheArray
from repro.cache.replacement import LRUPolicy
from repro.cache.store_gather import StoreGatherBuffer
from repro.common.config import CoreConfig, L1Config, MemoryConfig
from repro.common.records import AccessType, make_request
from repro.cpu.core_model import CoreModel
from repro.cpu.isa import load, nonmem, store
from repro.memory.dram import DRAMChannel
from repro.workloads.tracefile import format_item, parse_line


# --------------------------------------------------------------------- #
# Cache array.
# --------------------------------------------------------------------- #

@st.composite
def array_operations(draw):
    sets = draw(st.sampled_from([2, 4, 8]))
    ways = draw(st.sampled_from([1, 2, 4]))
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["lookup", "insert", "dirty", "invalidate"]),
            st.integers(min_value=0, max_value=8 * sets * ways),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1, max_size=120,
    ))
    return sets, ways, ops


@settings(max_examples=80, deadline=None)
@given(array_operations())
def test_cache_array_state_consistency(case):
    """After any operation sequence: no duplicate lines, per-set
    occupancy <= ways, every mapped line is findable, and LRU stacks
    are permutations of the way indices."""
    sets, ways, ops = case
    array = CacheArray(sets=sets, ways=ways, policy=LRUPolicy())
    for op, line, thread in ops:
        if op == "lookup":
            array.lookup(line)
        elif op == "insert":
            array.insert(line, thread)
            assert array.contains(line)
        elif op == "dirty":
            if array.contains(line):
                array.set_dirty(line)
                assert array.is_dirty(line)
        else:
            array.invalidate(line)
            assert not array.contains(line)
    for cset in array._sets:
        valid_lines = [cset.line_of[w] for w in range(ways) if cset.valid[w]]
        assert len(valid_lines) == len(set(valid_lines))
        assert sorted(cset.lru) == list(range(ways))
        for way in range(ways):
            if cset.valid[way]:
                assert cset.find(cset.line_of[way]) == way


# --------------------------------------------------------------------- #
# Store gathering buffer.
# --------------------------------------------------------------------- #

@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=80),
    st.integers(min_value=2, max_value=8),
)
def test_store_gather_conservation(lines, entries):
    """accepted stores == merged + currently buffered + retired."""
    high_water = max(1, entries - 2)
    sgb = StoreGatherBuffer(entries=entries, high_water=high_water)
    accepted = 0
    for line in lines:
        request = make_request(0, line * 64, AccessType.WRITE, 64)
        outcome = sgb.try_add_store(request)
        if outcome != "full":
            accepted += 1
        while sgb.wants_retire():
            sgb.pop_retire()
    assert accepted == sgb.stores_received
    assert sgb.stores_received == (
        sgb.stores_merged + sgb.stores_retired + sgb.occupancy
    )
    assert sgb.occupancy < sgb.high_water


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40))
def test_store_gather_occupancy_bounded(lines):
    sgb = StoreGatherBuffer(entries=4, high_water=3)
    for line in lines:
        sgb.try_add_store(make_request(0, line * 64, AccessType.WRITE, 64))
        assert sgb.occupancy <= sgb.capacity


# --------------------------------------------------------------------- #
# DRAM channel timing.
# --------------------------------------------------------------------- #

@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=0, max_value=63)),
    min_size=1, max_size=16,
))
def test_dram_reads_complete_with_sane_latency(arrivals):
    """Every read completes, never earlier than the unloaded latency and
    never before its own arrival + latency."""
    config = MemoryConfig()
    channel = DRAMChannel(config)
    completions = {}
    pending = sorted(arrivals)
    idle = channel.idle_latency()
    index = 0
    for now in range(3000):
        while (index < len(pending) and pending[index][0] <= now
               and channel.can_accept_read()):
            arrive, line = pending[index]
            completions[index] = None
            def make_sink(key, arrive=arrive):
                def sink(cycle, key=key):
                    completions[key] = cycle
                return sink
            channel.enqueue_read(line, make_sink(index), now)
            pending[index] = (arrive, line, now)
            index += 1
        channel.tick(now)
    done = [c for c in completions.values() if c is not None]
    assert len(done) == len(completions)
    for key, cycle in completions.items():
        enqueue_time = pending[key][2]
        assert cycle >= enqueue_time + idle


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=30))
def test_dram_bus_bandwidth_respected(n_reads):
    """Total data time can never exceed elapsed time: completions of n
    bursts span at least (n-1) * burst windows."""
    config = MemoryConfig()
    channel = DRAMChannel(config)
    completions = []
    for i in range(n_reads):
        if channel.can_accept_read():
            channel.enqueue_read(i, completions.append, 0)
    for now in range(20_000):
        channel.tick(now)
    completions.sort()
    burst = config.burst_cycles * config.clock_divider
    if len(completions) >= 2:
        span = completions[-1] - completions[0]
        assert span >= (len(completions) - 1) * burst


# --------------------------------------------------------------------- #
# Core model accounting.
# --------------------------------------------------------------------- #

@st.composite
def finite_traces(draw):
    items = []
    total = 0
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        kind = draw(st.sampled_from(["N", "L", "S"]))
        if kind == "N":
            count = draw(st.integers(min_value=1, max_value=20))
            items.append(nonmem(count))
            total += count
        elif kind == "L":
            addr = draw(st.integers(min_value=0, max_value=1 << 20)) * 4
            items.append(load(addr, draw(st.booleans())))
            total += 1
        else:
            addr = draw(st.integers(min_value=0, max_value=1 << 20)) * 4
            items.append(store(addr))
            total += 1
    return items, total


@settings(max_examples=50, deadline=None)
@given(finite_traces())
def test_core_dispatches_every_instruction_exactly_once(case):
    """With all responses answered promptly, a finite trace completes
    and the dispatched count equals the trace's instruction count."""
    items, total = case
    outstanding = []
    core = CoreModel(
        core_id=0,
        config=CoreConfig(),
        l1_config=L1Config(),
        trace=iter(items),
        send_request=lambda cid, req, now: outstanding.append(req),
    )
    for now in range(8 * total + 200):
        core.tick(now)
        while outstanding:
            core.on_response(outstanding.pop(0), now)
        if core.done and not core.outstanding_loads:
            break
    assert core.done
    assert core.dispatched == total


@settings(max_examples=50, deadline=None)
@given(finite_traces())
def test_core_never_exceeds_issue_width(case):
    items, total = case
    outstanding = []
    core = CoreModel(
        core_id=0, config=CoreConfig(issue_width=3), l1_config=L1Config(),
        trace=iter(items),
        send_request=lambda cid, req, now: outstanding.append(req),
    )
    previous = 0
    for now in range(8 * total + 200):
        core.tick(now)
        assert core.dispatched - previous <= 3
        previous = core.dispatched
        while outstanding:
            core.on_response(outstanding.pop(0), now)
        if core.done:
            break


# --------------------------------------------------------------------- #
# Trace-file format.
# --------------------------------------------------------------------- #

trace_items = st.one_of(
    st.builds(nonmem, st.integers(min_value=1, max_value=10_000)),
    st.builds(load, st.integers(min_value=0, max_value=1 << 40), st.booleans()),
    st.builds(store, st.integers(min_value=0, max_value=1 << 40)),
)


@settings(max_examples=100, deadline=None)
@given(trace_items)
def test_tracefile_format_roundtrip(item):
    assert parse_line(format_item(item)) == item

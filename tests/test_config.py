"""Unit tests for repro.common.config (Table 1 + private-machine transform)."""

import pytest

from repro.common.config import (
    KIB,
    MIB,
    L1Config,
    L2Config,
    SystemConfig,
    VPCAllocation,
    baseline_config,
    private_equivalent,
)


class TestTable1Defaults:
    """The defaults must match the paper's Table 1."""

    def test_l1_geometry(self):
        l1 = L1Config()
        assert l1.size_bytes == 16 * KIB
        assert l1.ways == 4
        assert l1.line_size == 64
        assert l1.latency == 2
        assert l1.sets == 64

    def test_l2_geometry(self):
        l2 = L2Config()
        assert l2.size_bytes == 16 * MIB
        assert l2.ways == 32
        assert l2.banks == 2
        assert l2.tag_latency == 4
        assert l2.data_read_latency == 8
        assert l2.data_write_latency == 16

    def test_l2_sets_per_bank(self):
        l2 = L2Config()
        assert l2.sets * l2.banks * l2.ways * l2.line_size == l2.size_bytes

    def test_bus_line_cycles(self):
        # 64B line / 16B beats at one beat per 2 processor cycles = 8.
        assert L2Config().bus_line_cycles == 8

    def test_state_machines_and_sgb(self):
        l2 = L2Config()
        assert l2.state_machines_per_thread == 8
        assert l2.sgb_entries == 8
        assert l2.sgb_high_water == 6


class TestValidation:
    def test_unknown_arbiter_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(arbiter="lottery").validate()

    def test_mismatched_line_sizes_rejected(self):
        cfg = SystemConfig(l1=L1Config(line_size=32))
        with pytest.raises(ValueError):
            cfg.validate()

    def test_vpc_share_count_must_match_threads(self):
        cfg = SystemConfig(n_threads=2)  # default allocation is 4-way
        with pytest.raises(ValueError):
            cfg.validate()

    def test_overallocation_rejected(self):
        with pytest.raises(ValueError):
            VPCAllocation([0.6, 0.6], [0.5, 0.5]).validate(2)

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            VPCAllocation([-0.1, 0.5], [0.5, 0.5]).validate(2)

    def test_equal_allocation_helper(self):
        alloc = VPCAllocation.equal(4)
        assert alloc.bandwidth_shares == [0.25] * 4
        alloc.validate(4)


class TestBaselineConfig:
    def test_defaults_are_paper_baseline(self):
        cfg = baseline_config()
        assert cfg.n_threads == 4
        assert cfg.l2.banks == 2
        assert cfg.arbiter == "fcfs"

    def test_bank_count_override(self):
        assert baseline_config(banks=8).l2.banks == 8


class TestPrivateEquivalent:
    """Section 5.3: same sets, beta*ways ways, latencies scaled 1/phi."""

    def test_full_allocation_is_identity_on_latencies(self):
        cfg = baseline_config()
        private = private_equivalent(cfg, phi=1.0, beta=1.0)
        assert private.l2.tag_latency == cfg.l2.tag_latency
        assert private.l2.data_read_latency == cfg.l2.data_read_latency
        assert private.l2.ways == cfg.l2.ways
        assert private.n_threads == 1

    def test_half_bandwidth_doubles_latencies(self):
        cfg = baseline_config()
        private = private_equivalent(cfg, phi=0.5, beta=0.25)
        assert private.l2.tag_latency == 8
        assert private.l2.data_read_latency == 16
        assert private.l2.data_write_latency == 32
        assert private.l2.ways == 8

    def test_paper_example(self):
        """phi=.5, beta=.25 -> 8 ways, 8-cycle tag, 16-cycle data array."""
        private = private_equivalent(baseline_config(), 0.5, 0.25)
        assert (private.l2.ways, private.l2.tag_latency,
                private.l2.data_read_latency) == (8, 8, 16)

    def test_sets_preserved(self):
        cfg = baseline_config()
        private = private_equivalent(cfg, 0.5, 0.25)
        assert private.l2.sets == cfg.l2.sets

    def test_zero_phi_rejected(self):
        with pytest.raises(ValueError):
            private_equivalent(baseline_config(), 0.0, 0.25)

    def test_bad_beta_rejected(self):
        with pytest.raises(ValueError):
            private_equivalent(baseline_config(), 0.5, 1.5)

    def test_result_validates(self):
        private = private_equivalent(baseline_config(), 0.25, 0.25)
        private.validate()

"""Tests for the alternative fairness policy (SFQ selection).

The paper defers "a detailed comparison of fairness policies" to future
work (Section 4.1.3); the arbiter supports earliest-virtual-FINISH
(WFQ/EDF, the paper's policy) and earliest-virtual-START (SFQ).  Both
must uphold the bandwidth guarantee; they differ in how excess
bandwidth and preemption latency are distributed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbiter import ArbiterEntry
from repro.core.vpc_arbiter import VPCArbiter

LATENCY = 8


def entry(tid, name="x", is_write=False, quanta=1):
    return ArbiterEntry(thread_id=tid, payload=name, is_write=is_write,
                        service_quanta=quanta)


def simulate(arbiter, traffic, horizon):
    busy_until = 0
    for now in range(horizon):
        for tid, is_write in traffic.get(now, ()):
            arbiter.enqueue(entry(tid, is_write=is_write,
                                  quanta=2 if is_write else 1), now)
        if now >= busy_until and len(arbiter):
            granted = arbiter.select(now)
            busy_until = now + LATENCY * granted.service_quanta
    return arbiter.service_granted


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            VPCArbiter(2, [0.5, 0.5], 8, selection="lottery")

    def test_default_is_finish(self):
        assert VPCArbiter(1, [1.0], 8).selection == "finish"


class TestSFQBasics:
    def test_sfq_orders_by_start_time(self):
        """After thread 0 consumes a burst, its R.S runs ahead; SFQ (like
        WFQ) then prefers the thread with the smaller virtual start."""
        arbiter = VPCArbiter(2, [0.5, 0.5], 8, selection="start")
        arbiter.enqueue(entry(0, "a1"), 0)
        arbiter.enqueue(entry(0, "a2"), 0)
        assert arbiter.select(0).payload == "a1"   # R.S[0] -> 16
        arbiter.enqueue(entry(1, "b1"), 0)
        assert arbiter.select(0).payload == "b1"   # R.S[1]=0 < R.S[0]=16

    def test_sfq_quanta_insensitive_selection(self):
        """The policy difference: with equal R.S, WFQ penalizes the
        thread whose *next* access is a (double-quantum) write; SFQ does
        not look at the pending access's size."""
        wfq = VPCArbiter(2, [0.5, 0.5], 8, selection="finish")
        sfq = VPCArbiter(2, [0.5, 0.5], 8, selection="start")
        for arbiter in (wfq, sfq):
            arbiter.enqueue(entry(0, "write", is_write=True, quanta=2), 0)
            arbiter.enqueue(entry(1, "read"), 1)
        # WFQ: F0 = 32 > F1 = 16 -> read first.
        assert wfq.select(2).payload == "read"
        # SFQ: S0 = 0 < S1 = 1 -> the write goes first.
        assert sfq.select(2).payload == "write"

    def test_zero_share_still_last(self):
        arbiter = VPCArbiter(2, [1.0, 0.0], 8, selection="start")
        arbiter.enqueue(entry(1, "excess"), 0)
        arbiter.enqueue(entry(0, "paid"), 5)
        assert arbiter.select(5).payload == "paid"


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(["finish", "start"]),
    st.sampled_from([[0.5, 0.5], [0.75, 0.25], [0.25, 0.25, 0.5]]),
    st.integers(min_value=400, max_value=1000),
)
def test_both_policies_guarantee_bandwidth(selection, shares, horizon):
    """A continuously backlogged thread receives >= its share under
    either policy (the guarantee is policy-independent)."""
    traffic = {}
    for cycle in range(0, horizon, LATENCY):
        traffic[cycle] = [(tid, False) for tid in range(len(shares))]
    arbiter = VPCArbiter(len(shares), shares, LATENCY, selection=selection)
    service = simulate(arbiter, traffic, horizon)
    for tid, share in enumerate(shares):
        assert service[tid] >= share * horizon - 3 * LATENCY


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=500, max_value=1200))
def test_policies_agree_on_saturated_totals(horizon):
    """Saturated equal-share traffic: both policies converge to the same
    per-thread service (they only differ transiently)."""
    traffic = {}
    for cycle in range(0, horizon, LATENCY):
        traffic[cycle] = [(0, False), (1, True)]
    wfq = simulate(VPCArbiter(2, [0.5, 0.5], LATENCY, selection="finish"),
                   traffic, horizon)
    sfq = simulate(VPCArbiter(2, [0.5, 0.5], LATENCY, selection="start"),
                   traffic, horizon)
    for a, b in zip(wfq, sfq):
        assert abs(a - b) <= 4 * LATENCY

"""Unit tests for the set-associative cache array."""

import pytest

from repro.cache.cache_array import CacheArray
from repro.cache.replacement import LRUPolicy


def make_array(sets=4, ways=2, stride=1):
    return CacheArray(sets=sets, ways=ways, policy=LRUPolicy(), index_stride=stride)


class TestGeometry:
    def test_set_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            make_array(sets=3)

    def test_way_count_positive(self):
        with pytest.raises(ValueError):
            make_array(ways=0)

    def test_set_index_with_stride(self):
        """Bank b of N sees lines line % N == b; index uses line // N."""
        array = make_array(sets=4, stride=2)
        assert array.set_index(0) == 0
        assert array.set_index(2) == 1
        assert array.set_index(8) == 0


class TestLookupInsert:
    def test_miss_then_hit(self):
        array = make_array()
        assert not array.lookup(5)
        array.insert(5, thread_id=0)
        assert array.lookup(5)
        assert array.hits == 1 and array.misses == 1

    def test_contains_has_no_side_effects(self):
        array = make_array()
        assert not array.contains(5)
        assert array.misses == 0

    def test_lru_eviction_order(self):
        array = make_array(sets=1, ways=2)
        array.insert(1, 0)
        array.insert(2, 0)
        array.lookup(1)              # 2 becomes LRU
        eviction = array.insert(3, 0)
        assert eviction.victim_line == 2

    def test_insert_existing_line_is_refresh(self):
        array = make_array(sets=1, ways=2)
        array.insert(1, 0)
        eviction = array.insert(1, 1)
        assert eviction.victim_line is None
        assert array.occupancy_by_thread(2) == [0, 1]  # ownership moved

    def test_free_ways_used_before_eviction(self):
        array = make_array(sets=1, ways=4)
        for line in range(4):
            assert array.insert(line, 0).victim_line is None
        assert array.insert(4, 0).victim_line is not None


class TestDirtyState:
    def test_dirty_roundtrip(self):
        array = make_array()
        array.insert(7, 0)
        assert not array.is_dirty(7)
        array.set_dirty(7)
        assert array.is_dirty(7)

    def test_eviction_reports_dirty(self):
        array = make_array(sets=1, ways=1)
        array.insert(1, 0)
        array.set_dirty(1)
        eviction = array.insert(2, 0)
        assert eviction.victim_dirty
        assert eviction.victim_line == 1

    def test_fill_clears_dirty(self):
        array = make_array(sets=1, ways=1)
        array.insert(1, 0)
        array.set_dirty(1)
        array.insert(2, 0)
        assert not array.is_dirty(2)

    def test_set_dirty_missing_line(self):
        with pytest.raises(KeyError):
            make_array().set_dirty(99)


class TestInvalidate:
    def test_invalidate_then_miss(self):
        array = make_array()
        array.insert(3, 0)
        array.invalidate(3)
        assert not array.contains(3)

    def test_invalidate_absent_is_noop(self):
        make_array().invalidate(42)


class TestOccupancy:
    def test_per_thread_counts(self):
        array = make_array(sets=1, ways=4)
        array.insert(0, 0)
        array.insert(1, 0)
        array.insert(2, 1)
        assert array.occupancy_by_thread(2) == [2, 1]

    def test_miss_rate(self):
        array = make_array()
        array.lookup(1)
        array.insert(1, 0)
        array.lookup(1)
        assert array.miss_rate() == pytest.approx(0.5)

"""Unit tests for the baseline arbiters (FCFS, RoW-FCFS)."""

import pytest

from repro.core.arbiter import (
    ArbiterEntry,
    FCFSArbiter,
    RoWFCFSArbiter,
    round_robin_order,
)


def entry(thread_id, name, is_write=False, quanta=1):
    return ArbiterEntry(
        thread_id=thread_id, payload=name, is_write=is_write,
        service_quanta=quanta,
    )


class TestFCFS:
    def test_serves_in_arrival_order(self):
        arb = FCFSArbiter(2)
        arb.enqueue(entry(0, "a"), 0)
        arb.enqueue(entry(1, "b"), 1)
        arb.enqueue(entry(0, "c"), 2)
        assert [arb.select(3).payload for _ in range(3)] == ["a", "b", "c"]

    def test_ignores_request_type(self):
        arb = FCFSArbiter(2)
        arb.enqueue(entry(0, "w", is_write=True), 0)
        arb.enqueue(entry(1, "r"), 1)
        assert arb.select(2).payload == "w"

    def test_empty_returns_none(self):
        assert FCFSArbiter(1).select(0) is None

    def test_len_and_grants(self):
        arb = FCFSArbiter(1)
        arb.enqueue(entry(0, "a"), 0)
        assert len(arb) == 1
        arb.select(0)
        assert len(arb) == 0
        assert arb.grants == 1

    def test_rejects_bad_thread(self):
        arb = FCFSArbiter(2)
        with pytest.raises(ValueError):
            arb.enqueue(entry(2, "x"), 0)

    def test_needs_a_thread(self):
        with pytest.raises(ValueError):
            FCFSArbiter(0)


class TestRoWFCFS:
    def test_reads_always_first(self):
        arb = RoWFCFSArbiter(2)
        arb.enqueue(entry(0, "w1", is_write=True), 0)
        arb.enqueue(entry(0, "w2", is_write=True), 1)
        arb.enqueue(entry(1, "r1"), 2)
        assert arb.select(3).payload == "r1"
        assert arb.select(3).payload == "w1"
        assert arb.select(3).payload == "w2"

    def test_fcfs_within_class(self):
        arb = RoWFCFSArbiter(2)
        arb.enqueue(entry(0, "r1"), 0)
        arb.enqueue(entry(1, "r2"), 1)
        assert arb.select(2).payload == "r1"
        assert arb.select(2).payload == "r2"

    def test_starvation_of_writes(self):
        """The paper's Section-3.1 flaw: a continuous read stream starves
        every write indefinitely."""
        arb = RoWFCFSArbiter(2)
        arb.enqueue(entry(1, "victim-write", is_write=True), 0)
        for i in range(100):
            arb.enqueue(entry(0, f"r{i}"), i)
            granted = arb.select(i)
            assert granted.payload != "victim-write"
        assert len(arb) == 1  # the write is still waiting

    def test_len_counts_both_classes(self):
        arb = RoWFCFSArbiter(1)
        arb.enqueue(entry(0, "r"), 0)
        arb.enqueue(entry(0, "w", is_write=True), 0)
        assert len(arb) == 2


class TestRoundRobin:
    def test_starts_after_pointer(self):
        assert list(round_robin_order(0, 4)) == [1, 2, 3, 0]
        assert list(round_robin_order(3, 4)) == [0, 1, 2, 3]

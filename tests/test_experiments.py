"""Tests for the experiment harness: every table/figure regenerates (in
fast mode) and shows the paper's qualitative shape."""

import math

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments.base import ExperimentResult, cycle_budget


class TestInfrastructure:
    def test_registry_covers_every_artifact(self):
        expected = {
            "table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "ablation-reorder", "ablation-capacity",
            "ablation-preempt", "ablation-memory", "ablation-fairness",
            "sweep-designspace", "sweep-smt", "policy-frontier",
        }
        assert expected == set(REGISTRY)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cycle_budget_fast_shrinks(self):
        full = cycle_budget(False)
        fast = cycle_budget(True)
        assert fast[0] < full[0] and fast[1] < full[1]
        assert fast[0] >= 4_000

    def test_result_helpers(self):
        result = ExperimentResult(
            "x", "t", ["a", "b"], [("r1", 1.0), ("r2", 2.0)]
        )
        assert result.cell(0, "b") == 1.0
        assert result.column("a") == ["r1", "r2"]
        assert result.row_by("a", "r2") == ("r2", 2.0)
        with pytest.raises(KeyError):
            result.row_by("a", "r3")

    def test_format_table_renders(self):
        result = ExperimentResult("x", "t", ["col"], [(1.25,)], notes=["n"])
        text = result.format_table()
        assert "1.250" in text and "note: n" in text


class TestTables:
    def test_table1_lists_config(self):
        result = run_experiment("table1", fast=True)
        assert any("L2" in row[0] for row in result.rows)

    def test_table2_geometry(self):
        result = run_experiment("table2", fast=True)
        for row in result.rows:
            assert row[1] == 32      # 32KB array
            assert row[2] == 64      # 64B rows


class TestFig4:
    def test_timing_matches_paper(self):
        result = run_experiment("fig4", fast=True)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[result.headers.index("critical_word_total")] == 16
            assert row[result.headers.index("full_line_total")] == 22


class TestFig5:
    def test_loads_saturates_two_banks(self):
        result = run_experiment("fig5", fast=True)
        row = result.row_by("config", "loads 2B")
        assert row[result.headers.index("data_array")] > 0.9

    def test_utilization_falls_with_banks(self):
        result = run_experiment("fig5", fast=True)
        loads2 = result.row_by("config", "loads 2B")
        loads4 = result.row_by("config", "loads 4B")
        index = result.headers.index("data_array")
        assert loads4[index] < loads2[index] + 0.05


class TestFig6Fig7:
    def test_fig6_spread(self):
        result = run_experiment("fig6", fast=True)
        data = result.column("data_array")
        assert max(data) > 3 * min(data)   # wide utilization spread

    def test_fig7_equake_write_light(self):
        result = run_experiment("fig7", fast=True)
        row = result.row_by("benchmark", "equake")
        assert row[result.headers.index("write_fraction")] < 0.2


class TestFig8:
    def test_row_fcfs_starves_and_vpc_divides(self):
        result = run_experiment("fig8", fast=True)
        policies = result.column("policy")
        assert "ROW-FCFS" in policies and "FCFS" in policies
        vpc25 = result.row_by("policy", "VPC 25%")
        vpc75 = result.row_by("policy", "VPC 75%")
        loads = result.headers.index("loads_ipc")
        stores = result.headers.index("stores_ipc")
        # More share -> more IPC, on both sides of the split.
        assert vpc25[loads] > vpc75[loads]
        assert vpc75[stores] > vpc25[stores]

    def test_targets_present_for_vpc_rows(self):
        result = run_experiment("fig8", fast=True)
        vpc25 = result.row_by("policy", "VPC 25%")
        assert not math.isnan(vpc25[result.headers.index("loads_target")])


class TestFig9:
    def test_vpc_protects_subject(self):
        result = run_experiment("fig9", fast=True)
        fcfs = result.headers.index("fcfs_norm")
        vpc = result.headers.index("vpc50_norm")
        # At least one benchmark is crushed by FCFS but protected by VPC.
        crushed = [row for row in result.rows if row[fcfs] < 0.6]
        assert crushed, "no benchmark degraded under FCFS backgrounds"
        for row in crushed:
            assert row[vpc] > row[fcfs]


class TestFig10:
    def test_vpc_beats_baseline_on_average(self):
        result = run_experiment("fig10", fast=True)
        average = result.row_by(
            "mix", "average"
        )
        hm_gain = average[result.headers.index("hmean_gain_%")]
        min_gain = average[result.headers.index("min_gain_%")]
        assert hm_gain > 0
        assert min_gain > 0


class TestSweep:
    def test_more_threads_more_utilization(self):
        result = run_experiment("sweep-designspace", fast=True)
        util = result.headers.index("data_util")
        one = result.row_by("config", "1T/2B")[util]
        four = result.row_by("config", "4T/2B")[util]
        assert four > one * 1.5

    def test_banks_relieve_contention(self):
        result = run_experiment("sweep-designspace", fast=True)
        ipc = result.headers.index("aggregate_ipc")
        narrow = result.row_by("config", "4T/2B")[ipc]
        wide = result.row_by("config", "4T/4B")[ipc]
        assert wide >= narrow * 0.95  # more banks never hurt


class TestSMTSweep:
    def test_consolidation_costs_throughput(self):
        result = run_experiment("sweep-smt", fast=True)
        ipc = result.headers.index("aggregate_ipc")
        four_by_one = result.row_by("topology", "4core x 1way")[ipc]
        one_by_four = result.row_by("topology", "1core x 4way")[ipc]
        assert four_by_one > one_by_four

    def test_nobody_starves_under_any_topology(self):
        result = run_experiment("sweep-smt", fast=True)
        minimum = result.headers.index("min_thread_ipc")
        assert all(row[minimum] > 0 for row in result.rows)


class TestAblations:
    def test_reorder_preserves_shares(self):
        result = run_experiment("ablation-reorder", fast=True)
        loads = result.column("loads_ipc")
        stores = result.column("stores_ipc")
        assert loads[0] == pytest.approx(loads[1], rel=0.1)
        assert stores[0] == pytest.approx(stores[1], rel=0.1)

    def test_capacity_quota_protects_victim(self):
        result = run_experiment("ablation-capacity", fast=True)
        vpc = result.row_by("capacity_policy", "vpc")
        lru = result.row_by("capacity_policy", "lru")
        hit = result.headers.index("read_hit_rate")
        ipc = result.headers.index("victim_ipc")
        assert vpc[hit] > lru[hit] + 0.3
        assert vpc[ipc] > lru[ipc] * 1.5

    def test_preempt_normalized_near_one(self):
        result = run_experiment("ablation-preempt", fast=True)
        for row in result.rows:
            assert row[result.headers.index("normalized")] > 0.85

"""Unit tests for repro.common.latch delay queues."""

import pytest

from repro.common.latch import DelayLine, VariableDelayQueue


class TestDelayLine:
    def test_delivers_after_delay(self):
        line = DelayLine(2)
        line.push(10, "a")
        assert list(line.pop_ready(11)) == []
        assert list(line.pop_ready(12)) == ["a"]

    def test_preserves_order(self):
        line = DelayLine(3)
        line.push(0, "a")
        line.push(1, "b")
        assert list(line.pop_ready(10)) == ["a", "b"]

    def test_zero_delay(self):
        line = DelayLine(0)
        line.push(5, "x")
        assert list(line.pop_ready(5)) == ["x"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(-1)

    def test_len_and_in_flight(self):
        line = DelayLine(2)
        line.push(0, "a")
        line.push(0, "b")
        assert len(line) == 2
        assert line.in_flight == 2
        list(line.pop_ready(2))
        assert len(line) == 0

    def test_peek_ready(self):
        line = DelayLine(1)
        line.push(0, "a")
        assert not line.peek_ready(0)
        assert line.peek_ready(1)


class TestVariableDelayQueue:
    def test_orders_by_ready_cycle(self):
        queue = VariableDelayQueue()
        queue.push_at(10, "late")
        queue.push_at(5, "early")
        assert list(queue.pop_ready(10)) == ["early", "late"]

    def test_stable_for_equal_cycles(self):
        queue = VariableDelayQueue()
        queue.push_at(5, "first")
        queue.push_at(5, "second")
        assert list(queue.pop_ready(5)) == ["first", "second"]

    def test_partial_pop(self):
        queue = VariableDelayQueue()
        queue.push_at(1, "a")
        queue.push_at(3, "b")
        assert list(queue.pop_ready(2)) == ["a"]
        assert len(queue) == 1

    def test_next_ready_cycle(self):
        queue = VariableDelayQueue()
        assert queue.next_ready_cycle() == -1
        queue.push_at(7, "x")
        assert queue.next_ready_cycle() == 7

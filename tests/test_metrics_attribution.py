"""The metrics/attribution observability layer and its QoS report cards.

Load-bearing contracts:

* **Bit-for-bit headline** — a metrics snapshot's IPCs equal the
  ``SimulationResult``'s exactly, and a report card built from drained
  experiment snapshots reproduces fig10's harmonic-mean/minimum columns
  to the last bit.
* **Charge conservation** — for every (resource, victim) pair the
  attribution matrix row plus idle wait equals the observed queueing
  delay, on scripted schedules, on hypothesis-random schedules, and on
  real systems under both arbiters.
* **Zero perturbation** — collecting metrics never changes what the
  simulation computes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import VPCAllocation, baseline_config
from repro.common.stats import jain_index
from repro.core.monitor import QoSMonitor, run_monitored
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.telemetry import (
    CAT_ARBITER,
    CAT_CACHE,
    InterferenceAttributor,
    MetricsCollector,
    PH_COUNTER,
    PH_INSTANT,
    RingBufferSink,
    TelemetryBus,
    TraceEvent,
    build_report_card,
    chrome_trace,
    merge_attribution,
    merge_report_cards,
    merge_snapshots,
    render_fleet_card,
    render_report_card,
    to_prometheus,
)
from repro.telemetry.validate import (
    validate_chrome_trace,
    validate_metrics_json,
    validate_prometheus,
)
from repro.workloads.microbench import loads_trace, stores_trace


def _observed_system(arbiter="vpc", n_threads=2, window=1_000):
    config = baseline_config(
        n_threads=n_threads, arbiter=arbiter,
        vpc=VPCAllocation.equal(n_threads),
    )
    traces = [loads_trace(0), stores_trace(1)][:n_threads]
    bus = TelemetryBus()
    collector = bus.attach(MetricsCollector(n_threads, window=window))
    attributor = bus.attach(InterferenceAttributor(n_threads))
    capacity = "vpc" if arbiter == "vpc" else "lru"
    system = CMPSystem(config, traces, telemetry=bus,
                       capacity_policy=capacity)
    return system, collector, attributor


def _arbiter_event(name, ts, tid, dur=0, track="bank0.data"):
    return TraceEvent(ts=ts, phase=PH_INSTANT, category=CAT_ARBITER,
                      name=name, track=track, tid=tid, dur=dur)


class TestJainIndex:
    def test_equal_is_one_skew_is_less(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0]) == pytest.approx(0.5)
        skew = jain_index([10.0, 1.0, 1.0, 1.0])
        assert 0.0 < skew < 1.0

    def test_edge_cases(self):
        assert jain_index([0.0, 0.0]) == 0.0
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])


class TestMetricsCollector:
    def test_snapshot_ipcs_match_simulation_result_bit_for_bit(self):
        system, collector, _ = _observed_system()
        result = run_simulation(system, warmup=2_000, measure=3_000,
                                metrics=collector)
        assert result.metrics["ipcs"] == result.ipcs
        assert result.metrics["instructions"] == result.instructions
        assert result.metrics["measured_cycles"] == result.cycles

    def test_metrics_do_not_perturb_the_simulation(self):
        config = baseline_config(n_threads=2, arbiter="vpc",
                                 vpc=VPCAllocation.equal(2))
        plain = run_simulation(
            CMPSystem(config, [loads_trace(0), stores_trace(1)]),
            warmup=2_000, measure=3_000)
        system, collector, _ = _observed_system()
        observed = run_simulation(system, warmup=2_000, measure=3_000,
                                  metrics=collector)
        assert dataclasses.replace(observed, metrics=None) == plain

    def test_window_series_shapes_and_schema(self):
        system, collector, attributor = _observed_system(window=500)
        result = run_simulation(system, warmup=1_000, measure=2_000,
                                metrics=collector)
        attributor.finish(system.cycle)
        snap = result.metrics
        snap["attribution"] = attributor.snapshot()
        assert validate_metrics_json(snap) == []
        series = snap["series"]
        # Event series are thread-major over the observed window range.
        assert len(series["loads"]) == 2
        assert all(len(row) == snap["windows"] for row in series["loads"])
        for rows in series["service_cycles"].values():
            assert len(rows) == 2
        # Utilization is busy/window; chunk sampling gives 4 intervals.
        for values in series["utilization"].values():
            assert all(0.0 <= value <= 1.0 + 1e-9 for value in values)
        assert len(snap["sample_cycles"]) == 5
        assert all(len(row) == 4 for row in series["ipc"])
        assert any(track.startswith("bank")
                   for track in series["queue_depth_max"])
        assert "mshrs" in " ".join(series["mshr_max"])

    def test_slowdown_and_fairness_with_baselines(self):
        system, collector, _ = _observed_system(window=500)
        collector.baseline_ipcs = [0.5, 0.5]
        result = run_simulation(system, warmup=1_000, measure=1_500,
                                metrics=collector)
        snap = result.metrics
        assert snap["baseline_ipcs"] == [0.5, 0.5]
        assert len(snap["series"]["slowdown"]) == 2
        assert 0.0 <= snap["fairness"]["jain_overall"] <= 1.0
        assert snap["fairness"]["jain_min_window"] <= 1.0

    def test_merge_snapshots_sums_totals(self):
        system, collector, _ = _observed_system()
        first = run_simulation(system, warmup=1_000, measure=1_000,
                               metrics=collector).metrics
        system2, collector2, _ = _observed_system()
        second = run_simulation(system2, warmup=1_000, measure=1_000,
                                metrics=collector2).metrics
        merged = merge_snapshots([first, second])
        assert merged["points"] == 2
        assert merged["totals"]["instructions"] == \
            sum(first["instructions"]) + sum(second["instructions"])
        assert merged["totals"]["loads"] == \
            sum(first["totals"]["loads"]) + sum(second["totals"]["loads"])
        assert validate_metrics_json(merged) == []

    def test_prometheus_export_validates(self):
        system, collector, attributor = _observed_system()
        collector.baseline_ipcs = [0.5, 0.5]
        result = run_simulation(system, warmup=1_000, measure=2_000,
                                metrics=collector)
        attributor.finish(system.cycle)
        result.metrics["attribution"] = attributor.snapshot()
        text = to_prometheus(result.metrics)
        assert validate_prometheus(text) == []
        assert "repro_thread_ipc{" in text
        assert "repro_interference_cycles_total{" in text
        assert "repro_thread_slowdown{" in text


class TestAttributionScripted:
    def test_hand_built_schedule_charges_exactly(self):
        attributor = InterferenceAttributor(2)
        # t0 enqueues and is granted immediately for 4 cycles.
        attributor.emit(_arbiter_event("enqueue", ts=0, tid=0))
        attributor.emit(_arbiter_event("grant", ts=0, tid=0, dur=4))
        # t1 arrives mid-interval: 3 remaining cycles pre-charged to t0.
        attributor.emit(_arbiter_event("enqueue", ts=1, tid=1))
        attributor.emit(_arbiter_event("grant", ts=4, tid=1, dur=4))
        # t0 comes back when the resource is idle: pure scheduling wait.
        attributor.emit(_arbiter_event("enqueue", ts=10, tid=0))
        attributor.emit(_arbiter_event("grant", ts=12, tid=0, dur=2))
        attributor.finish(20)
        track = "bank0.data"
        assert attributor.matrix[track][1][0] == 3
        assert attributor.matrix[track][0] == [0, 0]
        assert attributor.delay[track] == [2, 3]
        assert attributor.idle_wait[track] == [2, 0]
        assert attributor.conservation_errors() == []
        assert attributor.interference_received() == [0, 3]
        assert attributor.interference_caused() == [3, 0]

    def test_self_interference_lands_on_the_diagonal(self):
        attributor = InterferenceAttributor(2)
        attributor.emit(_arbiter_event("enqueue", ts=0, tid=0))
        attributor.emit(_arbiter_event("enqueue", ts=0, tid=0))
        attributor.emit(_arbiter_event("grant", ts=0, tid=0, dur=5))
        attributor.emit(_arbiter_event("grant", ts=5, tid=0, dur=5))
        attributor.finish(10)
        matrix = attributor.matrix["bank0.data"]
        assert matrix[0][0] == 5  # waited behind its own earlier grant
        assert attributor.conservation_errors() == []
        # Self-interference is not cross-thread interference.
        assert attributor.interference_received() == [0, 0]

    def test_open_waits_dropped_keeps_identity(self):
        attributor = InterferenceAttributor(2)
        attributor.emit(_arbiter_event("enqueue", ts=0, tid=0))
        attributor.emit(_arbiter_event("grant", ts=0, tid=0, dur=4))
        attributor.emit(_arbiter_event("enqueue", ts=2, tid=1))  # never granted
        attributor.finish(50)
        assert attributor.dropped_waits == 1
        assert attributor.delay["bank0.data"] == [0, 0]
        assert attributor.conservation_errors() == []

    def test_resource_class_folds_banks(self):
        assert InterferenceAttributor.resource_class("bank3.data") == "data"
        assert InterferenceAttributor.resource_class("dram.ch0") == "dram.ch0"
        attributor = InterferenceAttributor(2)
        for track in ("bank0.data", "bank1.data"):
            attributor.emit(_arbiter_event("enqueue", ts=0, tid=0,
                                           track=track))
            attributor.emit(_arbiter_event("grant", ts=0, tid=0, dur=2,
                                           track=track))
            attributor.emit(_arbiter_event("enqueue", ts=1, tid=1,
                                           track=track))
            attributor.emit(_arbiter_event("grant", ts=2, tid=1, dur=2,
                                           track=track))
        snap = attributor.snapshot()
        assert snap["resources"]["data"]["matrix"][1][0] == 2
        assert set(snap["tracks"]) == {"bank0.data", "bank1.data"}

    def test_merge_pads_mismatched_thread_counts(self):
        solo = InterferenceAttributor(1)
        solo.emit(_arbiter_event("enqueue", ts=0, tid=0))
        solo.emit(_arbiter_event("grant", ts=0, tid=0, dur=2))
        duo = InterferenceAttributor(2)
        duo.emit(_arbiter_event("enqueue", ts=0, tid=0))
        duo.emit(_arbiter_event("grant", ts=0, tid=0, dur=4))
        duo.emit(_arbiter_event("enqueue", ts=1, tid=1))
        duo.emit(_arbiter_event("grant", ts=4, tid=1, dur=1))
        duo.finish(10)
        merged = merge_attribution([solo.snapshot(), duo.snapshot(), None])
        assert merged["n_threads"] == 2
        assert merged["resources"]["data"]["matrix"][1][0] == 3
        assert merged["interference_received"] == [0, 3]


# One schedule drawn per example: interleaved enqueue/grant steps the
# way a real single-ported resource produces them (grants only when the
# resource is free, only for threads with a waiting entry).
_SCHEDULE = st.lists(
    st.tuples(
        st.booleans(),             # enqueue (True) or try-grant (False)
        st.integers(0, 3),         # thread
        st.integers(0, 7),         # time advance before the step
        st.integers(0, 5),         # grant service duration
    ),
    min_size=1, max_size=60,
)


class TestAttributionProperties:
    @settings(max_examples=60, deadline=None)
    @given(steps=_SCHEDULE, n_threads=st.integers(1, 4))
    def test_conservation_over_random_schedules(self, steps, n_threads):
        attributor = InterferenceAttributor(n_threads)
        waiting = [0] * n_threads
        now = 0
        busy_until = 0
        for is_enqueue, tid, advance, dur in steps:
            tid %= n_threads
            now += advance
            if is_enqueue:
                attributor.emit(_arbiter_event("enqueue", ts=now, tid=tid))
                waiting[tid] += 1
            else:
                candidates = [t for t in range(n_threads) if waiting[t]]
                if not candidates:
                    continue
                tid = candidates[tid % len(candidates)]
                ts = max(now, busy_until)
                attributor.emit(_arbiter_event("grant", ts=ts, tid=tid,
                                               dur=dur))
                waiting[tid] -= 1
                busy_until = max(busy_until, ts + dur)
                now = ts
        attributor.finish(now + 100)
        assert attributor.conservation_errors() == []
        # Serialized snapshots must re-verify from the numbers alone.
        snap = attributor.snapshot()
        fake_metrics = {
            "schema": "repro.metrics/1", "window": 100,
            "n_threads": n_threads,
            "ipcs": [0.0] * n_threads, "instructions": [0] * n_threads,
            "series": {}, "attribution": snap,
        }
        assert validate_metrics_json(fake_metrics) == []

    @pytest.mark.parametrize("arbiter", ["vpc", "fcfs", "row-fcfs"])
    def test_conservation_on_a_real_system(self, arbiter):
        system, collector, attributor = _observed_system(arbiter=arbiter)
        run_simulation(system, warmup=2_000, measure=4_000,
                       metrics=collector)
        attributor.finish(system.cycle)
        assert attributor.conservation_errors() == []
        # A saturated two-thread system must show real contention.
        assert sum(attributor.interference_received()) > 0


class TestFaultInjection:
    def test_starved_thread_flagged_by_monitor_and_attribution(self):
        """Adversarial arbiter: thread 1's data-array virtual clock is
        pushed far into the future behind the allocator's back, so the
        scheduler keeps preferring thread 0.  The QoSMonitor must flag
        the victim, and the attribution matrix must blame the
        aggressor."""
        system, _, _ = _observed_system()
        system.run(20_000)  # steady state, queues backlogged
        # Fresh attributor: only the sabotaged interval is attributed.
        attributor = system.telemetry.attach(InterferenceAttributor(2))
        monitor = QoSMonitor(system, window=2_000)
        for arbiter in system._vpc_arbiters["data"]:
            arbiter._r_l[1] += 2_000   # t1 deferred behind t0 for a while
        run_monitored(system, 20_000, monitor)
        attributor.finish(system.cycle)

        assert not monitor.clean
        assert any(v.thread_id == 1 and "data" in v.bank_resource
                   for v in monitor.violations)
        conformance = monitor.conformance()
        assert conformance["violations"] > 0
        victim = conformance["per_thread"][1]
        assert victim["conformance_pct"] < 100.0

        assert attributor.conservation_errors() == []
        data = attributor.by_resource_class()["data"]
        # The victim's losses to the aggressor dwarf the reverse flow.
        assert data[1][0] > 10 * data[0][1]
        received = attributor.interference_received()
        assert received[1] > received[0]

        card = build_report_card(
            n_threads=2, arbiter="vpc",
            attribution=attributor.snapshot(),
            conformance=conformance,
            ipcs=[0.5, 0.01], targets=[0.5, 0.5],
        )
        assert card["threads"][1]["meets_target"] is False
        rendered = render_report_card(card)
        assert "VIOLATED" in rendered and "MISS" in rendered

    def test_healthy_system_is_conformant(self):
        system, _, attributor = _observed_system()
        system.run(20_000)
        monitor = QoSMonitor(system, window=2_000)
        run_monitored(system, 10_000, monitor)
        conformance = monitor.conformance()
        assert conformance["clean"]
        assert all(row["conformance_pct"] == 100.0
                   for row in conformance["per_thread"])


class TestCapacityTelemetry:
    @staticmethod
    def _traced_policy():
        from repro.cache.replacement import SetView
        from repro.core.capacity import VPCCapacityManager
        bus = TelemetryBus()
        ring = bus.attach(RingBufferSink())
        collector = bus.attach(MetricsCollector(2, window=100))
        policy = VPCCapacityManager([0.5, 0.5], 4)  # quota 2 each
        policy._trace = bus
        policy.trace_name = "bank0.capacity"
        policy.clock = lambda: 123
        view = SetView(ways=4, owners=[1, 1, 1, 0],
                       valid=[True] * 4, lru_order=[0, 1, 2, 3], index=7)
        return policy, view, ring, collector

    def test_victimizations_emit_instants_and_way_counters(self):
        policy, view, ring, collector = self._traced_policy()
        # Thread 1 over quota -> Condition 1 against its LRU line.
        assert policy.choose_victim(view, requester=0) == 0
        view.owners[0] = 0  # both at quota now -> Condition 2, own line
        policy.choose_victim(view, requester=0)
        events = [e for e in ring if e.category == CAT_CACHE]
        instants = [e for e in events if e.phase == PH_INSTANT]
        counters = [e for e in events if e.phase == PH_COUNTER]
        assert [e.name for e in instants] == ["cond1", "cond2"]
        cond1 = instants[0]
        assert cond1.ts == 123 and cond1.tid == 0
        assert cond1.args["set"] == 7 and cond1.args["victim"] == 1
        assert cond1.args["excess"] == 1
        # One per-set way-occupancy counter sample per victimization,
        # numeric-only so Perfetto renders it as counter series.
        assert len(counters) == len(instants)
        for event in counters:
            assert event.name == "ways"
            assert event.track == "bank0.capacity.set7"
            assert all(isinstance(v, int) for v in event.args.values())
        assert counters[0].args == {"t0": 1, "t1": 3}  # pre-eviction
        assert validate_chrome_trace(chrome_trace(events)) == []
        # The metrics layer aggregated the same victimizations.
        collector.finish(200)
        totals = collector.snapshot()["totals"]
        assert totals["cond1"] == [1, 0]
        assert totals["cond2"] == [1, 0]

    def test_untraced_policy_emits_nothing_and_still_works(self):
        from repro.cache.replacement import SetView
        from repro.core.capacity import VPCCapacityManager
        policy = VPCCapacityManager([0.5, 0.5], 4)
        view = SetView(ways=4, owners=[1, 1, 1, 0],
                       valid=[True] * 4, lru_order=[0, 1, 2, 3])
        assert policy.choose_victim(view, requester=0) == 0
        assert policy.condition1_evictions == 1


class TestValidatorExtensions:
    def test_counter_events_must_be_numeric(self):
        good = [{"ph": "C", "name": "ways", "pid": 3, "tid": 0, "ts": 1,
                 "args": {"t0": 2, "t1": 1}}]
        assert validate_chrome_trace(good) == []
        bad = [
            {"ph": "C", "name": "ways", "pid": 3, "tid": 0, "ts": 1},
            {"ph": "C", "name": "ways", "pid": 3, "tid": 0, "ts": 1,
             "args": {"t0": "two"}},
        ]
        errors = validate_chrome_trace(bad)
        assert any("counter without args" in e for e in errors)
        assert any("non-numeric value" in e for e in errors)

    def test_metrics_json_rejects_bad_schema_and_shapes(self):
        assert validate_metrics_json([1, 2]) != []
        assert validate_metrics_json({"schema": "nope"}) != []
        broken = {
            "schema": "repro.metrics/1", "window": 100, "n_threads": 2,
            "ipcs": [0.1], "instructions": [1, 2], "series": {},
        }
        assert any("ipcs" in e for e in validate_metrics_json(broken))

    def test_metrics_json_recheck_catches_broken_conservation(self):
        snap = {
            "schema": "repro.metrics/1", "window": 100, "n_threads": 2,
            "ipcs": [0.1, 0.1], "instructions": [1, 1], "series": {},
            "attribution": {
                "n_threads": 2,
                "resources": {"data": {
                    "matrix": [[0, 5], [0, 0]],
                    "queueing_delay": [4, 0],   # 5 charged, 4 observed
                    "idle_wait": [0, 0],
                }},
            },
        }
        errors = validate_metrics_json(snap)
        assert any("conservation" in e for e in errors)

    def test_prometheus_validator(self):
        good = ("# HELP m a metric\n# TYPE m gauge\n"
                'm{thread="0"} 1.5\nm 2\n')
        assert validate_prometheus(good) == []
        assert any("before its # TYPE" in e
                   for e in validate_prometheus("m 1\n"))
        assert any("non-numeric" in e for e in validate_prometheus(
            "# HELP m x\n# TYPE m gauge\nm abc\n"))
        assert any("no samples" in e for e in validate_prometheus("\n"))

    def test_cli_autodetects_artifact_kinds(self, tmp_path, capsys):
        from repro.telemetry.validate import main
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({"traceEvents": []}))
        assert main([str(trace)]) == 0

        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps({
            "schema": "repro.metrics/1", "window": 10, "n_threads": 1,
            "ipcs": [0.1], "instructions": [1], "series": {},
        }))
        assert main([str(metrics)]) == 0
        assert "metric points" in capsys.readouterr().out

        prom = tmp_path / "metrics.prom"
        prom.write_text("# HELP m x\n# TYPE m counter\nm 3\n")
        assert main([str(prom)]) == 0
        assert main(["--prometheus", str(prom)]) == 0
        assert main([]) == 2
        assert main(["--metrics"]) == 2


class TestReportCards:
    def test_headline_survives_a_starved_thread(self):
        card = build_report_card(
            n_threads=2, arbiter="vpc",
            ipcs=[0.5, 0.0], targets=[0.5, 0.5],
        )
        assert "headline" not in card
        assert "starved" in card["headline_error"]
        render_report_card(card)  # must not raise

    def test_fleet_merge_tracks_worst_run_and_violations(self):
        cards = [
            build_report_card(n_threads=1, arbiter="vpc",
                              ipcs=[0.4], targets=[0.5]),
            build_report_card(n_threads=1, arbiter="vpc",
                              ipcs=[0.6], targets=[0.5]),
        ]
        cards[0]["qos"] = {"violations": 3}
        fleet = merge_report_cards(cards, label="demo")
        assert fleet["runs"] == 2
        assert fleet["worst_min_normalized"] == pytest.approx(0.8)
        assert fleet["violations"] == 3 and not fleet["clean"]
        assert "VIOLATED" in render_fleet_card(fleet)


class TestExperimentMetrics:
    @pytest.fixture(autouse=True)
    def _reset_execution_policy(self):
        from repro.experiments import parallel
        parallel.configure(jobs=1, cache=True)
        yield
        parallel.configure(jobs=1, cache=True)

    def test_worker_snapshots_ride_home_in_point_order(self):
        from repro.experiments import parallel
        from repro.experiments.parallel import SimPoint, run_points

        def point(arbiter):
            return SimPoint(
                config=baseline_config(n_threads=2, arbiter=arbiter,
                                       vpc=VPCAllocation.equal(2)),
                traces=(("loads",), ("stores",)),
                warmup=500, measure=1_500,
            )

        points = [point("vpc"), point("fcfs")]
        parallel.configure(jobs=2, cache=False, metrics=500)
        results = run_points(points)
        snapshots = parallel.drain_metrics()
        assert len(snapshots) == 2
        for snap, result, simpoint in zip(snapshots, results, points):
            assert snap["ipcs"] == result.ipcs
            assert snap["arbiter"] == simpoint.config.arbiter
            # Conservation is re-checked from the pickled numbers.
            assert validate_metrics_json(snap) == []
        assert parallel.drain_metrics() == []  # drained exactly once

    def test_fig10_report_card_matches_analysis_bit_for_bit(self):
        """The acceptance bar: headline HM/min normalized IPC computed
        by the report-card path equals fig10's analysis columns with
        float equality, not approx."""
        from repro.experiments import parallel
        from repro.experiments.fig10_heterogeneous import FAST_MIXES
        from repro.experiments.runner import run_experiment
        from repro.workloads.profiles import HETEROGENEOUS_MIXES

        parallel.configure(jobs=1, cache=False, metrics=2_000)
        result = run_experiment("fig10", fast=True)
        aggregate = result.metrics
        assert validate_metrics_json(aggregate) == []
        per_point = aggregate["per_point"]

        unique = []
        for mix in FAST_MIXES:
            for name in HETEROGENEOUS_MIXES[mix]:
                if name not in unique:
                    unique.append(name)
        targets = {name: per_point[index]["ipcs"][0]
                   for index, name in enumerate(unique)}
        shared = iter(per_point[len(unique):])
        for row, mix in zip(result.rows, FAST_MIXES):
            mix_targets = [targets[name]
                           for name in HETEROGENEOUS_MIXES[mix]]
            for snap, hmean_col, min_col in ((next(shared), 1, 4),
                                             (next(shared), 2, 5)):
                card = build_report_card(
                    n_threads=snap["n_threads"],
                    arbiter=snap["arbiter"],
                    metrics=snap,
                    attribution=snap.get("attribution"),
                    targets=mix_targets,
                )
                assert card["headline"]["harmonic_mean"] == row[hmean_col]
                assert card["headline"]["min_normalized"] == row[min_col]


class TestMainCLI:
    def test_metrics_prometheus_and_report_flags(self, tmp_path, capsys):
        from repro.cli import main
        metrics = tmp_path / "m.json"
        prom = tmp_path / "m.prom"
        report = tmp_path / "r.json"
        assert main(["loads", "stores", "--arbiter", "vpc",
                     "--warmup", "2000", "--cycles", "2000",
                     "--metrics", str(metrics),
                     "--prometheus", str(prom),
                     "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "QoS report card" in out
        assert "headline: HM normalized IPC" in out
        snap = json.loads(metrics.read_text())
        assert validate_metrics_json(snap) == []
        assert validate_prometheus(prom.read_text()) == []
        card = json.loads(report.read_text())
        assert card["schema"] == "repro.report/1"
        # The card's per-thread IPCs are the snapshot's, bit for bit.
        assert [row["ipc"] for row in card["threads"]] == snap["ipcs"]
        assert card["qos"]["clean"] is True

    def test_report_to_stdout_without_files(self, capsys):
        from repro.cli import main
        assert main(["loads", "stores", "--warmup", "1500",
                     "--cycles", "1500", "--report"]) == 0
        out = capsys.readouterr().out
        assert "QoS report card" in out
        assert "interference attribution" in out

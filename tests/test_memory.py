"""Unit tests for the DDR2 channel model and memory controller."""

import pytest

from repro.common.config import MemoryConfig
from repro.memory.controller import MemoryController
from repro.memory.dram import DRAMChannel


class TestDRAMChannel:
    def test_idle_read_latency(self):
        config = MemoryConfig()
        channel = DRAMChannel(config)
        completions = []
        channel.enqueue_read(0, completions.append, now=0)
        for now in range(300):
            channel.tick(now)
        expected = (config.t_rcd + config.t_cl + config.burst_cycles) * config.clock_divider
        assert completions == [expected]
        assert channel.idle_latency() == expected

    def test_bank_conflict_serializes(self):
        """Two reads to the same DRAM bank pay the full closed-page cycle."""
        config = MemoryConfig()
        channel = DRAMChannel(config)
        completions = []
        n_banks = channel.n_banks
        channel.enqueue_read(0, completions.append, now=0)
        channel.enqueue_read(n_banks, completions.append, now=0)  # same bank
        for now in range(500):
            channel.tick(now)
        first = completions[0]
        # Second must wait for the precharge after the first.
        assert completions[1] >= first + config.t_rp * config.clock_divider

    def test_bank_parallelism_overlaps(self):
        """Reads to different banks overlap; the data bus is the limit."""
        config = MemoryConfig()
        channel = DRAMChannel(config)
        completions = []
        channel.enqueue_read(0, completions.append, now=0)
        channel.enqueue_read(1, completions.append, now=0)
        for now in range(500):
            channel.tick(now)
        gap = completions[1] - completions[0]
        assert gap <= config.burst_cycles * config.clock_divider + config.clock_divider

    def test_reads_prioritized_over_writes(self):
        config = MemoryConfig()
        channel = DRAMChannel(config)
        completions = []
        channel.enqueue_write(0, now=0)
        channel.enqueue_write(1, now=0)
        channel.enqueue_read(2, completions.append, now=0)
        channel.tick(0)   # the read should issue first
        assert channel.reads_done == 1
        assert channel.writes_done == 0

    def test_transaction_buffer_capacity(self):
        config = MemoryConfig(transaction_buffer=2)
        channel = DRAMChannel(config)
        channel.enqueue_read(0, lambda cycle: None, now=0)
        channel.enqueue_read(1, lambda cycle: None, now=0)
        assert not channel.can_accept_read()
        with pytest.raises(RuntimeError):
            channel.enqueue_read(2, lambda cycle: None, now=0)

    def test_write_buffer_capacity(self):
        config = MemoryConfig(write_buffer=1)
        channel = DRAMChannel(config)
        channel.enqueue_write(0, now=0)
        assert not channel.can_accept_write()

    def test_request_not_issued_before_enqueue_time(self):
        channel = DRAMChannel(MemoryConfig())
        completions = []
        channel.enqueue_read(0, completions.append, now=10)
        channel.tick(0)
        assert channel.reads_done == 0
        for now in range(1, 200):
            channel.tick(now)
        assert completions


class TestMemoryController:
    def test_private_channels(self):
        controller = MemoryController(MemoryConfig(), n_threads=2)
        assert len(controller.channels) == 2
        assert controller._channel(0) is not controller._channel(1)

    def test_thread_isolation(self):
        """Traffic from thread 0 never delays thread 1 (private channels)."""
        controller = MemoryController(MemoryConfig(), n_threads=2)
        t0_times, t1_times = [], []
        for i in range(8):
            if controller.can_accept_read(0):
                controller.enqueue_read(0, i, t0_times.append, now=0)
        controller.enqueue_read(1, 0, t1_times.append, now=0)
        for now in range(2000):
            controller.tick(now)
        assert t1_times[0] == controller.idle_read_latency()

    def test_overhead_added(self):
        controller = MemoryController(MemoryConfig(), n_threads=1)
        times = []
        controller.enqueue_read(0, 0, times.append, now=0)
        for now in range(500):
            controller.tick(now)
        assert times[0] == controller.idle_read_latency()
        assert times[0] > controller.channels[0].idle_latency()

    def test_bad_thread_rejected(self):
        controller = MemoryController(MemoryConfig(), n_threads=1)
        with pytest.raises(ValueError):
            controller.can_accept_read(2)

    def test_busy_flag(self):
        controller = MemoryController(MemoryConfig(), n_threads=1)
        assert not controller.busy()
        controller.enqueue_read(0, 0, lambda c: None, now=0)
        assert controller.busy()

"""Tests for the VPC-supported prefetching extension (paper future work).

Covers: next-line issue policy, MSHR accounting, usefulness tracking,
demand-over-prefetch intra-thread priority in the VPC arbiter, and the
end-to-end effect on a streaming (DRAM-latency-bound) workload.
"""

import itertools

import pytest

from repro.common.config import (
    CoreConfig,
    L1Config,
    VPCAllocation,
    baseline_config,
)
from repro.core.arbiter import ArbiterEntry
from repro.core.vpc_arbiter import VPCArbiter
from repro.cpu.core_model import CoreModel
from repro.cpu.isa import load, nonmem
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads.synthetic import WorkloadProfile, synthetic_trace


class Fabric:
    def __init__(self):
        self.requests = []

    def send(self, core_id, request, now):
        self.requests.append(request)


def make_core(trace, prefetch=True, degree=2, mshrs=16):
    fabric = Fabric()
    core = CoreModel(
        core_id=0,
        config=CoreConfig(prefetch_enabled=prefetch, prefetch_degree=degree),
        l1_config=L1Config(mshrs=mshrs),
        trace=iter(trace),
        send_request=fabric.send,
    )
    return core, fabric


class TestIssuePolicy:
    def test_demand_miss_triggers_next_lines(self):
        core, fabric = make_core([load(0x1000), nonmem(10)], degree=2)
        core.tick(0)
        lines = sorted(r.line for r in fabric.requests)
        assert lines == [0x1000 // 64 + d for d in range(3)]
        prefetches = [r for r in fabric.requests if r.is_prefetch]
        assert len(prefetches) == 2
        assert core.prefetches_issued == 2

    def test_disabled_by_default(self):
        core, fabric = make_core([load(0x1000), nonmem(10)], prefetch=False)
        core.tick(0)
        assert len(fabric.requests) == 1
        assert core.prefetches_issued == 0

    def test_no_prefetch_for_cached_or_inflight_lines(self):
        core, fabric = make_core([load(0x1000), nonmem(10)], degree=2)
        core.l1.fill(0x1000 + 64)          # next line already in L1
        core.tick(0)
        prefetch_lines = {r.line for r in fabric.requests if r.is_prefetch}
        assert 0x1000 // 64 + 1 not in prefetch_lines

    def test_prefetch_respects_mshr_capacity(self):
        core, fabric = make_core([load(0x1000), nonmem(10)], degree=8, mshrs=3)
        core.tick(0)
        assert core.mshrs.outstanding == 3   # 1 demand + 2 prefetches

    def test_prefetch_does_not_block_window(self):
        core, fabric = make_core(
            [load(0x1000), nonmem(1000)], degree=4
        )
        for now in range(30):
            core.tick(now)
        # Window is held by the single demand load only (size 100).
        assert core.dispatched == 1 + 99


class TestUsefulness:
    def test_demand_hit_on_inflight_prefetch_counts(self):
        core, fabric = make_core(
            [load(0x1000), load(0x1000 + 64), nonmem(10)], degree=1
        )
        core.tick(0)    # miss + prefetch of next line; second load coalesces
        for request in list(fabric.requests):
            core.on_response(request, 20)
        assert core.prefetches_useful == 1
        assert core.prefetch_accuracy() == pytest.approx(1.0)

    def test_unused_prefetch_not_counted(self):
        core, fabric = make_core([load(0x1000), nonmem(10)], degree=1)
        core.tick(0)
        for request in list(fabric.requests):
            core.on_response(request, 20)
        assert core.prefetches_useful == 0

    def test_prefetch_fills_l1(self):
        core, fabric = make_core([load(0x1000), nonmem(10)], degree=1)
        core.tick(0)
        for request in list(fabric.requests):
            core.on_response(request, 20)
        assert core.l1.array.contains(0x1000 // 64 + 1)


class TestArbiterPriority:
    def entry(self, name, is_write=False, is_prefetch=False):
        return ArbiterEntry(thread_id=0, payload=name, is_write=is_write,
                            is_prefetch=is_prefetch)

    def test_demand_read_beats_older_prefetch(self):
        arbiter = VPCArbiter(1, [1.0], 8)
        arbiter.enqueue(self.entry("pf", is_prefetch=True), 0)
        arbiter.enqueue(self.entry("demand"), 0)
        assert arbiter.select(0).payload == "demand"
        assert arbiter.select(0).payload == "pf"

    def test_prefetch_beats_write(self):
        arbiter = VPCArbiter(1, [1.0], 8)
        arbiter.enqueue(self.entry("w", is_write=True), 0)
        arbiter.enqueue(self.entry("pf", is_prefetch=True), 0)
        assert arbiter.select(0).payload == "pf"

    def test_fifo_mode_ignores_priority(self):
        arbiter = VPCArbiter(1, [1.0], 8, intra_thread_row=False)
        arbiter.enqueue(self.entry("pf", is_prefetch=True), 0)
        arbiter.enqueue(self.entry("demand"), 0)
        assert arbiter.select(0).payload == "pf"


class TestEndToEnd:
    def _streaming_ipc(self, prefetch: bool) -> float:
        """A dependent-load cold-streaming thread: MLP = 1, so every miss
        sits on the critical path and next-line prefetching pays off."""
        profile = WorkloadProfile(
            name="stream", mem_fraction=0.1, store_fraction=0.02,
            p_hot=0.0, p_warm=0.0, p_cold=1.0,
            cold_bytes=64 * 1024 * 1024, run_length=1, store_run_length=4,
            dependent_prob=1.0,
        ).validate()
        config = baseline_config(n_threads=1, arbiter="row-fcfs",
                                 vpc=VPCAllocation([1.0], [1.0]))
        from dataclasses import replace
        config = replace(
            config,
            core=CoreConfig(prefetch_enabled=prefetch, prefetch_degree=2),
        ).validate()
        system = CMPSystem(config, [synthetic_trace(profile, 0)])
        return run_simulation(system, warmup=15_000, measure=15_000).ipcs[0]

    def test_prefetching_speeds_up_streaming_workload(self):
        with_pf = self._streaming_ipc(True)
        without_pf = self._streaming_ipc(False)
        assert with_pf > without_pf * 1.1

"""Golden regression tests: pin deterministic simulator outputs.

The whole stack is deterministic (stable RNG seeding, no wall-clock),
so key end-to-end numbers are pinned here with tight tolerances.  A
failure means the *timing behaviour* changed — which is sometimes
intended (update the numbers with the commit that changes behaviour),
but must never happen silently.
"""

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads import loads_trace, spec_trace, stores_trace


def run_loads_stores(arbiter, shares=(0.5, 0.5)):
    config = baseline_config(
        n_threads=2, arbiter=arbiter,
        vpc=VPCAllocation(list(shares), [0.5, 0.5]),
    )
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    return run_simulation(system, warmup=40_000, measure=20_000)


class TestMicrobenchmarkGoldens:
    """The Figure-8 anchors: these are *exact* steady-state rates."""

    def test_loads_solo_rate(self):
        config = baseline_config(n_threads=1, arbiter="row-fcfs",
                                 vpc=VPCAllocation([1.0], [1.0]))
        result = run_simulation(
            CMPSystem(config, [loads_trace(0)]), warmup=40_000, measure=20_000
        )
        # 2 banks / 8-cycle data reads, 4 loads + 1 overhead per group:
        # 0.25 loads/cycle * 5/4 = 0.3125 IPC.
        assert result.ipcs[0] == pytest.approx(0.3125, abs=0.002)

    def test_stores_solo_rate(self):
        config = baseline_config(n_threads=1, arbiter="row-fcfs",
                                 vpc=VPCAllocation([1.0], [1.0]))
        result = run_simulation(
            CMPSystem(config, [stores_trace(0)]), warmup=40_000, measure=20_000
        )
        # 2 banks / 16-cycle writes: 0.125 stores/cycle * 5/4 = 0.15625.
        assert result.ipcs[0] == pytest.approx(0.15625, abs=0.002)

    def test_vpc_5050_split(self):
        result = run_loads_stores("vpc", shares=(0.5, 0.5))
        assert result.ipcs[0] == pytest.approx(0.15625, abs=0.002)
        assert result.ipcs[1] == pytest.approx(0.078125, abs=0.002)

    def test_fcfs_interleave(self):
        result = run_loads_stores("fcfs")
        assert result.ipcs[0] == pytest.approx(0.104, abs=0.003)
        assert result.ipcs[1] == pytest.approx(0.104, abs=0.003)

    def test_row_fcfs_starvation_exact(self):
        result = run_loads_stores("row-fcfs")
        assert result.ipcs[1] == 0.0
        assert result.ipcs[0] == pytest.approx(0.3125, abs=0.002)


class TestSyntheticGoldens:
    """Calibrated-profile behaviour, looser tolerance (stochastic but
    seeded: exact reproducibility, the tolerance is for future
    calibration adjustments to be deliberate)."""

    @pytest.mark.parametrize(
        "name,ipc_range",
        [
            ("art", (0.55, 0.90)),
            ("mcf", (0.35, 0.60)),
            ("sixtrack", (3.5, 4.6)),
        ],
    )
    def test_solo_ipc_bands(self, name, ipc_range):
        config = baseline_config(n_threads=1, arbiter="row-fcfs",
                                 vpc=VPCAllocation([1.0], [1.0]))
        result = run_simulation(
            CMPSystem(config, [spec_trace(name, 0)]),
            warmup=30_000, measure=20_000,
        )
        low, high = ipc_range
        assert low <= result.ipcs[0] <= high

    def test_same_seed_bit_identical(self):
        """Two identical constructions produce identical measurements."""
        def once():
            config = baseline_config(n_threads=2, arbiter="vpc",
                                     vpc=VPCAllocation.equal(2))
            system = CMPSystem(
                config, [spec_trace("gcc", 0), spec_trace("art", 1)]
            )
            return run_simulation(system, warmup=10_000, measure=10_000)

        first, second = once(), once()
        assert first.ipcs == second.ipcs
        assert first.utilizations == second.utilizations
        assert first.l2_reads == second.l2_reads


class TestTimingGoldens:
    def test_memory_idle_latency(self):
        """DDR2-800 5-5-5 closed page behind the controller: 78 cycles."""
        from repro.common.config import MemoryConfig
        from repro.memory.controller import MemoryController
        controller = MemoryController(MemoryConfig(), 1)
        # (tRCD 5 + CL 5 + burst 4) * 5 + 2 * 4 overhead = 78.
        assert controller.idle_read_latency() == 78

    def test_l2_hit_critical_word(self):
        """The Figure-4 anchor, end to end through the full system."""
        from repro.cpu.isa import load, nonmem
        config = baseline_config(n_threads=1, arbiter="row-fcfs",
                                 vpc=VPCAllocation([1.0], [1.0]))
        base = 1 << 30
        system = CMPSystem(config, [iter([load(base), nonmem(1)])])
        system.banks[system.bank_of(base // 64)].array.insert(base // 64, 0)
        captured = []
        for bank in system.banks:
            original = bank.respond
            bank.respond = (lambda orig: lambda req, now:
                            (captured.append((req, now)), orig(req, now)))(original)
        system.run(60)
        loads_seen = [(r, t) for r, t in captured if r.is_read]
        request, when = loads_seen[0]
        assert when - request.issued_cycle == 16

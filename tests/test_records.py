"""Unit tests for repro.common.records."""

import pytest

from repro.common.records import AccessType, MemoryRequest, make_request


class TestMakeRequest:
    def test_line_derivation(self):
        req = make_request(0, 64 * 5 + 12, AccessType.READ, 64)
        assert req.line == 5
        assert req.addr == 64 * 5 + 12

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            make_request(0, 0, AccessType.READ, 48)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            make_request(0, -1, AccessType.READ, 64)

    def test_zero_line_size_rejected(self):
        with pytest.raises(ValueError):
            make_request(0, 0, AccessType.READ, 0)

    def test_ids_are_unique(self):
        a = make_request(0, 0, AccessType.READ, 64)
        b = make_request(0, 0, AccessType.READ, 64)
        assert a.req_id != b.req_id


class TestMemoryRequest:
    def test_read_write_predicates(self):
        read = make_request(1, 0, AccessType.READ, 64)
        write = make_request(1, 0, AccessType.WRITE, 64)
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_lifecycle_timestamps_default_unset(self):
        req = make_request(0, 0, AccessType.READ, 64)
        assert req.tag_done_cycle == -1
        assert req.completed_cycle == -1

    def test_repr_mentions_thread_and_kind(self):
        req = make_request(3, 128, AccessType.WRITE, 64)
        assert "W" in repr(req) and "t3" in repr(req)

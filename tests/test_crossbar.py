"""Unit tests for the crossbar interconnect."""

import pytest

from repro.common.config import CrossbarConfig
from repro.common.records import AccessType, make_request
from repro.interconnect.crossbar import Crossbar


def request(thread=0):
    return make_request(thread, 0, AccessType.READ, 64)


class TestCrossbar:
    def test_request_latency(self):
        xbar = Crossbar(2, CrossbarConfig(latency=2))
        req = request()
        xbar.send_request(0, req, now=10)
        assert list(xbar.deliver_requests(0, 11)) == []
        assert list(xbar.deliver_requests(0, 12)) == [req]

    def test_response_is_immediate_by_default(self):
        """The bank data bus reaches the cores directly (Figure 2a)."""
        xbar = Crossbar(1, CrossbarConfig())
        req = request()
        xbar.send_response(0, req, now=5)
        assert list(xbar.deliver_responses(0, 5)) == [req]

    def test_lanes_are_private_per_core(self):
        xbar = Crossbar(2, CrossbarConfig())
        req = request()
        xbar.send_request(1, req, now=0)
        assert list(xbar.deliver_requests(0, 10)) == []
        assert list(xbar.deliver_requests(1, 10)) == [req]

    def test_order_preserved(self):
        xbar = Crossbar(1, CrossbarConfig(latency=3))
        a, b = request(), request()
        xbar.send_request(0, a, now=0)
        xbar.send_request(0, b, now=1)
        assert list(xbar.deliver_requests(0, 10)) == [a, b]

    def test_busy(self):
        xbar = Crossbar(1, CrossbarConfig())
        assert not xbar.busy()
        xbar.send_request(0, request(), now=0)
        assert xbar.busy()

    def test_needs_a_core(self):
        with pytest.raises(ValueError):
            Crossbar(0, CrossbarConfig())

"""Unit tests for the window/MLP-limited core model."""

import pytest

from repro.common.config import CoreConfig, L1Config
from repro.common.records import AccessType
from repro.cpu.core_model import CoreModel
from repro.cpu.isa import load, nonmem, store


class Fabric:
    """Captures requests the core sends; can answer them on demand."""

    def __init__(self):
        self.requests = []

    def send(self, core_id, request, now):
        self.requests.append(request)


def make_core(trace, issue_width=5, window=100, mshrs=16, store_queue=32):
    fabric = Fabric()
    core = CoreModel(
        core_id=0,
        config=CoreConfig(issue_width=issue_width, window_size=window,
                          store_queue=store_queue),
        l1_config=L1Config(mshrs=mshrs),
        trace=iter(trace),
        send_request=fabric.send,
    )
    return core, fabric


class TestNonMemory:
    def test_issue_width_bounds_ipc(self):
        core, _ = make_core([nonmem(1000)], issue_width=4)
        for now in range(100):
            core.tick(now)
        assert core.dispatched == 400
        assert core.ipc() == pytest.approx(4.0)

    def test_finite_trace_completes(self):
        core, _ = make_core([nonmem(7)])
        for now in range(10):
            core.tick(now)
        assert core.done
        assert core.dispatched == 7


class TestLoads:
    def test_l1_hit_does_not_send_request(self):
        core, fabric = make_core([load(0x100), nonmem(10)])
        core.l1.fill(0x100)
        core.tick(0)
        assert not fabric.requests
        assert core.dispatched >= 1

    def test_l1_miss_sends_l2_read(self):
        core, fabric = make_core([load(0x100), nonmem(10)])
        core.tick(0)
        assert len(fabric.requests) == 1
        assert fabric.requests[0].access is AccessType.READ

    def test_secondary_miss_coalesces(self):
        core, fabric = make_core([load(0x100), load(0x104), nonmem(10)])
        core.tick(0)
        assert len(fabric.requests) == 1  # same line: one L2 read
        assert core.outstanding_loads == 2

    def test_response_completes_and_fills_l1(self):
        core, fabric = make_core([load(0x100), nonmem(10)])
        core.tick(0)
        core.on_response(fabric.requests[0], now=20)
        assert core.outstanding_loads == 0
        assert core.l1.load(0x100)

    def test_mshr_limit_stalls(self):
        trace = [load(i * 64) for i in range(8)] + [nonmem(10)]
        core, fabric = make_core(trace, mshrs=4)
        for now in range(10):
            core.tick(now)
        assert len(fabric.requests) == 4
        assert core.stall_cycles > 0

    def test_window_limit_stalls_dispatch(self):
        """An incomplete load blocks dispatch window_size ahead."""
        core, fabric = make_core([load(0x40), nonmem(1000)], window=20)
        for now in range(50):
            core.tick(now)
        assert core.dispatched == 1 + 19  # load + window-limited run

    def test_dependent_load_waits_for_all_loads(self):
        trace = [load(0x40), load(0x1040, dependent=True), nonmem(10)]
        core, fabric = make_core(trace)
        for now in range(5):
            core.tick(now)
        assert len(fabric.requests) == 1   # dependent load held back
        core.on_response(fabric.requests[0], now=5)
        core.tick(6)
        assert len(fabric.requests) == 2


class TestStores:
    def test_store_sends_write_through(self):
        core, fabric = make_core([store(0x200), nonmem(10)])
        core.tick(0)
        assert fabric.requests[0].access is AccessType.WRITE
        assert core.outstanding_stores == 1

    def test_store_ack_releases_credit(self):
        core, fabric = make_core([store(0x200), nonmem(10)])
        core.tick(0)
        core.on_response(fabric.requests[0], now=3)
        assert core.outstanding_stores == 0

    def test_store_queue_backpressure(self):
        trace = [store(i * 64) for i in range(10)] + [nonmem(5)]
        core, fabric = make_core(trace, store_queue=4)
        for now in range(10):
            core.tick(now)
        assert len(fabric.requests) == 4

    def test_unmatched_ack_rejected(self):
        core, fabric = make_core([store(0x200), nonmem(5)])
        core.tick(0)
        core.on_response(fabric.requests[0], now=1)
        with pytest.raises(RuntimeError):
            core.on_response(fabric.requests[0], now=2)

    def test_store_does_not_block_window(self):
        """Stores retire into the store queue; only loads hold the window."""
        core, _ = make_core([store(0x200), nonmem(1000)], window=20)
        for now in range(50):
            core.tick(now)
        assert core.dispatched > 100


class TestIPC:
    def test_ipc_over_explicit_cycles(self):
        core, _ = make_core([nonmem(100)], issue_width=5)
        for now in range(100):
            core.tick(now)
        assert core.ipc(cycles=50) == pytest.approx(2.0)

    def test_zero_cycles(self):
        core, _ = make_core([nonmem(5)])
        assert core.ipc() == 0.0

"""Shared fixtures: small, fast system configurations for tests."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the experiment result cache at a per-test directory so tests
    never read or pollute the user's ``~/.cache/repro-vpc``."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))

from repro.common.config import (
    L2Config,
    MemoryConfig,
    SystemConfig,
    VPCAllocation,
    baseline_config,
)


@pytest.fixture
def two_thread_config() -> SystemConfig:
    """Paper-baseline 2-thread, 2-bank system."""
    return baseline_config(n_threads=2)


@pytest.fixture
def four_thread_config() -> SystemConfig:
    return baseline_config(n_threads=4)


def tiny_l2(**overrides) -> L2Config:
    """A small L2 so tests exercise evictions quickly."""
    params = dict(
        banks=2,
        size_bytes=2 * 64 * 1024,  # 2 banks * 8 sets * 8 ways... see below
        ways=8,
    )
    params.update(overrides)
    return L2Config(**params)


def fast_memory() -> MemoryConfig:
    """Low-latency memory so unit tests converge quickly."""
    return MemoryConfig(t_rcd=1, t_cl=1, t_wl=1, t_rp=1, burst_cycles=1,
                        clock_divider=1)


@pytest.fixture
def equal_vpc_two() -> VPCAllocation:
    return VPCAllocation.equal(2)

"""Unit tests for the reference fair-queuing scheduler."""

import pytest

from repro.fairqueue.scheduler import (
    Arrival,
    FairQueueScheduler,
    backlogged_intervals,
    service_by_flow,
)


def saturating_arrivals(flow_id: int, count: int, length: float, start: float = 0.0):
    """``count`` packets all arriving at ``start`` (continuously backlogged)."""
    return [Arrival(start, flow_id, length) for _ in range(count)]


class TestConstruction:
    def test_requires_flows(self):
        with pytest.raises(ValueError):
            FairQueueScheduler([])

    def test_rejects_overallocation(self):
        with pytest.raises(ValueError):
            FairQueueScheduler([0.7, 0.7])

    def test_rejects_unknown_flow_and_bad_length(self):
        sched = FairQueueScheduler([1.0])
        with pytest.raises(ValueError):
            sched.run([Arrival(0.0, 3, 1.0)])
        with pytest.raises(ValueError):
            FairQueueScheduler([1.0]).run([Arrival(0.0, 0, 0.0)])


class TestBandwidthSplit:
    def test_equal_shares_split_evenly(self):
        sched = FairQueueScheduler([0.5, 0.5])
        arrivals = saturating_arrivals(0, 50, 1.0) + saturating_arrivals(1, 50, 1.0)
        records = sched.run(arrivals)
        totals = service_by_flow(records)
        # Over the first 50 time units, each flow gets ~25.
        first_half = [r for r in records if r.finish <= 50.0]
        halves = service_by_flow(first_half)
        assert abs(halves[0] - halves[1]) <= 1.0
        assert totals[0] == totals[1] == 50.0

    def test_weighted_shares(self):
        sched = FairQueueScheduler([0.75, 0.25])
        arrivals = saturating_arrivals(0, 90, 1.0) + saturating_arrivals(1, 90, 1.0)
        records = sched.run(arrivals)
        window = [r for r in records if r.finish <= 80.0]
        totals = service_by_flow(window)
        assert totals[0] / totals[1] == pytest.approx(3.0, rel=0.1)

    def test_work_conservation_idle_flow(self):
        """A flow with no traffic donates its share to the busy flow."""
        sched = FairQueueScheduler([0.5, 0.5])
        records = sched.run(saturating_arrivals(0, 10, 1.0))
        assert records[-1].finish == 10.0  # back-to-back, no idling

    def test_zero_share_flow_served_only_when_alone(self):
        sched = FairQueueScheduler([1.0, 0.0])
        arrivals = saturating_arrivals(0, 10, 1.0) + saturating_arrivals(1, 5, 1.0)
        records = sched.run(arrivals)
        # All of flow 0 completes before any of flow 1 is served.
        first_flow1 = min(r.start for r in records if r.flow_id == 1)
        last_flow0 = max(r.finish for r in records if r.flow_id == 0)
        assert first_flow1 >= last_flow0


class TestServiceRecords:
    def test_response_time(self):
        sched = FairQueueScheduler([1.0])
        records = sched.run([Arrival(0.0, 0, 2.0), Arrival(0.0, 0, 2.0)])
        assert records[0].response_time == 2.0
        assert records[1].response_time == 4.0

    def test_non_preemptive_server(self):
        """A long packet in service delays a later short one entirely."""
        sched = FairQueueScheduler([0.5, 0.5])
        records = sched.run(
            [Arrival(0.0, 0, 10.0), Arrival(1.0, 1, 1.0)]
        )
        short = next(r for r in records if r.flow_id == 1)
        assert short.start >= 10.0  # could not preempt


class TestBackloggedIntervals:
    def test_single_interval(self):
        sched = FairQueueScheduler([1.0])
        arrivals = [Arrival(0.0, 0, 1.0), Arrival(0.5, 0, 1.0)]
        records = sched.run(arrivals)
        intervals = backlogged_intervals(arrivals, records, 0)
        assert intervals == [(0.0, 2.0)]

    def test_two_disjoint_intervals(self):
        sched = FairQueueScheduler([1.0])
        arrivals = [Arrival(0.0, 0, 1.0), Arrival(10.0, 0, 1.0)]
        records = sched.run(arrivals)
        intervals = backlogged_intervals(arrivals, records, 0)
        assert len(intervals) == 2
        assert intervals[0] == (0.0, 1.0)
        assert intervals[1] == (10.0, 11.0)

"""Tests for the online QoS monitor and the latency-analysis toolkit."""

import pytest

from repro.analysis.latency import (
    LatencySummary,
    format_report,
    load_latency,
    loads_by_thread,
    queueing_by_thread,
)
from repro.common.config import VPCAllocation, baseline_config
from repro.common.records import AccessType, make_request
from repro.core.monitor import QoSMonitor, run_monitored
from repro.system.cmp import CMPSystem
from repro.workloads import loads_trace, stores_trace


def vpc_system(record_requests=False):
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    return CMPSystem(config, [loads_trace(0), stores_trace(1)],
                     record_requests=record_requests)


class TestQoSMonitor:
    def test_requires_vpc(self):
        config = baseline_config(n_threads=2, arbiter="fcfs")
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        with pytest.raises(ValueError):
            QoSMonitor(system)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            QoSMonitor(vpc_system(), window=0)

    def test_saturated_system_is_clean(self):
        """Two saturating threads under a healthy VPC: no violations."""
        system = vpc_system()
        system.run(30_000)   # warm up (arrays resident, queues backlogged)
        monitor = QoSMonitor(system, window=2_000)
        run_monitored(system, 20_000, monitor)
        assert monitor.windows_checked == 10
        assert monitor.clean, monitor.violations[:3]

    def test_detects_injected_share_theft(self):
        """Tamper with one arbiter's share behind the monitor's back
        (simulating broken hardware): the monitor must notice."""
        system = vpc_system()
        system.run(30_000)
        monitor = QoSMonitor(system, window=2_000)
        # Steal thread 1's data-array bandwidth without telling anyone.
        for arbiter in system._vpc_arbiters["data"]:
            arbiter._r_l[1] = 1e12    # effectively zero share
        run_monitored(system, 20_000, monitor)
        assert not monitor.clean
        assert any(v.thread_id == 1 and "data" in v.bank_resource
                   for v in monitor.violations)

    def test_violation_records_window_and_amounts(self):
        system = vpc_system()
        system.run(30_000)
        monitor = QoSMonitor(system, window=2_000)
        for arbiter in system._vpc_arbiters["data"]:
            arbiter._r_l[0] = 1e12
        run_monitored(system, 4_000, monitor)
        violation = monitor.violations[0]
        assert violation.window_end - violation.window_start == 2_000
        assert violation.granted < violation.guaranteed


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.of([])
        assert summary.count == 0 and summary.maximum == 0

    def test_percentiles(self):
        summary = LatencySummary.of(list(range(1, 101)))
        assert summary.p50 == 50
        assert summary.p95 == 95
        assert summary.maximum == 100
        assert summary.mean == pytest.approx(50.5)

    def test_single_sample(self):
        summary = LatencySummary.of([16])
        assert summary.p50 == summary.p95 == 16.0


class TestRequestAnalysis:
    def test_load_latency_requires_timestamps(self):
        request = make_request(0, 0, AccessType.READ, 64)
        assert load_latency(request) is None
        request.issued_cycle = 0
        request.critical_word_cycle = 16
        assert load_latency(request) == 16

    def test_writes_excluded(self):
        request = make_request(0, 0, AccessType.WRITE, 64)
        request.issued_cycle = 0
        request.critical_word_cycle = 16
        assert load_latency(request) is None

    def test_end_to_end_logging(self):
        system = vpc_system(record_requests=True)
        system.run(40_000)
        assert system.request_log, "no requests recorded"
        summaries = loads_by_thread(system.request_log)
        assert 0 in summaries            # the Loads thread
        # Every load hit takes at least the 16-cycle pipelined minimum.
        assert summaries[0].p50 >= 16

    def test_queueing_delay_report(self):
        system = vpc_system(record_requests=True)
        system.run(40_000)
        queueing = queueing_by_thread(system.request_log)
        assert queueing[0].count > 0
        report = format_report(queueing, "queueing delay")
        assert "thread" in report and "p95" in report

    def test_logging_off_by_default(self):
        system = vpc_system()
        system.run(5_000)
        assert system.request_log == []

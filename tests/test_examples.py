"""Smoke tests: every example script runs to completion.

The examples double as end-to-end checks — several raise SystemExit
with a message if a QoS guarantee they demonstrate is violated, so a
clean exit is a meaningful assertion.  Simulation lengths are trimmed
via monkeypatched module constants to keep the suite fast.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_three_examples(self):
        scripts = list(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()


class TestFairQueuingDemo:
    def test_runs_clean(self, capsys):
        module = load_example("fair_queuing_demo.py")
        module.main()
        out = capsys.readouterr().out
        assert "OK" in out
        assert "VIOLATIONS" not in out


class TestQuickstart:
    def test_runs_with_short_budget(self, capsys, monkeypatch):
        module = load_example("quickstart.py")

        def quick_simulate(arbiter, vpc):
            from repro import CMPSystem, baseline_config, run_simulation
            from repro.workloads import loads_trace, stores_trace
            config = baseline_config(n_threads=2, arbiter=arbiter, vpc=vpc)
            system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
            result = run_simulation(system, warmup=8_000, measure=6_000)
            print(f"{arbiter} {result.ipcs[0]:.3f} {result.ipcs[1]:.3f}")

        monkeypatch.setattr(module, "simulate", quick_simulate)
        module.main()
        out = capsys.readouterr().out
        assert "vpc" in out


class TestMultimediaQoS:
    def test_floor_guaranteed(self, capsys, monkeypatch):
        module = load_example("multimedia_qos.py")
        monkeypatch.setattr(module, "WARMUP", 15_000)
        monkeypatch.setattr(module, "MEASURE", 10_000)
        module.main()   # raises SystemExit if the QoS floor is violated
        out = capsys.readouterr().out
        assert "floor guaranteed" in out


class TestDifferentiatedService:
    def test_sweep_monotone(self, capsys, monkeypatch):
        module = load_example("differentiated_service.py")
        monkeypatch.setattr(module, "WARMUP", 15_000)
        monkeypatch.setattr(module, "MEASURE", 8_000)
        monkeypatch.setattr(module, "SHARES", (0.25, 0.75))
        module.main()
        out = capsys.readouterr().out
        assert "live reprogramming" in out


class TestPrefetchStudy:
    def test_runs_and_contains_guarantee(self, capsys, monkeypatch):
        module = load_example("prefetch_study.py")
        monkeypatch.setattr(module, "WARMUP", 10_000)
        monkeypatch.setattr(module, "MEASURE", 8_000)
        module.main()   # raises SystemExit on a violated floor
        out = capsys.readouterr().out
        assert "solo pointer-chaser" in out
        assert "QoS floor" in out


class TestInterferenceForensics:
    def test_runs_clean(self, capsys, monkeypatch):
        module = load_example("interference_forensics.py")
        monkeypatch.setattr(module, "WARMUP", 12_000)
        monkeypatch.setattr(module, "MEASURE", 8_000)
        module.main()   # raises SystemExit on a monitor violation
        out = capsys.readouterr().out
        assert "FCFS" in out and "VPC" in out
        assert "all windows clean" in out


class TestAutopilotAllocation:
    def test_converges(self, capsys, monkeypatch):
        module = load_example("autopilot_allocation.py")
        monkeypatch.setattr(module, "EPOCH", 3_000)
        module.main()   # raises SystemExit if the target is missed badly
        out = capsys.readouterr().out
        assert "converged at share" in out

"""Unit tests for the workload generators (Table 2 + SPEC stand-ins)."""

import itertools

import pytest

from repro.cpu.isa import (
    LOAD,
    NONMEM,
    STORE,
    instruction_count,
    load,
    nonmem,
    store,
    validate_trace,
)
from repro.workloads.microbench import (
    ARRAY_BYTES,
    ROW_BYTES,
    ROWS,
    loads_trace,
    stores_trace,
    thread_base,
)
from repro.workloads.profiles import (
    HETEROGENEOUS_MIXES,
    SPEC_ORDER,
    SPEC_PROFILES,
    spec_trace,
)
from repro.workloads.synthetic import WorkloadProfile, synthetic_trace


class TestISA:
    def test_constructors_validate(self):
        with pytest.raises(ValueError):
            nonmem(0)
        with pytest.raises(ValueError):
            load(-1)
        with pytest.raises(ValueError):
            store(-4)

    def test_instruction_count(self):
        trace = [nonmem(10), load(0), store(4)]
        assert instruction_count(trace) == 12

    def test_validate_trace_rejects_junk(self):
        with pytest.raises(ValueError):
            list(validate_trace([("X", 1)]))
        with pytest.raises(ValueError):
            list(validate_trace([(LOAD, 0, "yes")]))

    def test_validate_trace_passthrough(self):
        trace = [nonmem(1), load(0, True), store(4)]
        assert list(validate_trace(trace)) == trace


class TestMicrobenchmarks:
    def test_table2_geometry(self):
        assert ARRAY_BYTES == 32 * 1024      # twice the 16KB L1
        assert ROW_BYTES == 64               # one L1 line per row
        assert ROWS == 512

    def test_loads_walks_every_row(self):
        items = list(itertools.islice(loads_trace(0), 0, 640))
        loads = [item for item in items if item[0] == LOAD]
        lines = {item[1] // 64 for item in loads}
        base_line = thread_base(0) // 64
        assert min(lines) == base_line
        # Addresses stride by one row (64 bytes).
        assert len(lines) >= 500

    def test_loads_stream_is_all_loads_plus_overhead(self):
        items = list(itertools.islice(loads_trace(0), 0, 100))
        kinds = {item[0] for item in items}
        assert kinds == {LOAD, NONMEM}

    def test_stores_stream_is_all_stores_plus_overhead(self):
        items = list(itertools.islice(stores_trace(0), 0, 100))
        kinds = {item[0] for item in items}
        assert kinds == {STORE, NONMEM}

    def test_stores_touch_distinct_lines(self):
        """Consecutive stores hit different lines: nothing gathers."""
        items = list(itertools.islice(stores_trace(0), 0, 10))
        stores = [item for item in items if item[0] == STORE]
        lines = [item[1] // 64 for item in stores]
        assert len(set(lines)) == len(lines)

    def test_threads_use_disjoint_address_spaces(self):
        a = next(item for item in loads_trace(0) if item[0] == LOAD)
        b = next(item for item in loads_trace(1) if item[0] == LOAD)
        assert abs(a[1] - b[1]) >= ARRAY_BYTES

    def test_trace_wraps_around(self):
        per_pass = ROWS + ROWS // 4
        items = list(itertools.islice(loads_trace(0), 0, 3 * per_pass))
        loads = [item[1] for item in items if item[0] == LOAD]
        assert loads.count(loads[0]) >= 2   # revisits the first row


class TestSyntheticGenerator:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", p_hot=0.5, p_warm=0.1, p_cold=0.1).validate()
        with pytest.raises(ValueError):
            WorkloadProfile("bad", mem_fraction=0.0).validate()
        with pytest.raises(ValueError):
            WorkloadProfile("bad", dependent_prob=1.5).validate()

    def test_deterministic_for_seed(self):
        profile = SPEC_PROFILES["gcc"]
        a = list(itertools.islice(synthetic_trace(profile, 0, seed=1), 200))
        b = list(itertools.islice(synthetic_trace(profile, 0, seed=1), 200))
        assert a == b

    def test_different_threads_differ(self):
        profile = SPEC_PROFILES["gcc"]
        a = list(itertools.islice(synthetic_trace(profile, 0, seed=1), 200))
        b = list(itertools.islice(synthetic_trace(profile, 1, seed=1), 200))
        assert a != b

    def test_memory_fraction_approximates_profile(self):
        profile = SPEC_PROFILES["art"]
        items = list(itertools.islice(synthetic_trace(profile, 0), 20000))
        mem_ops = sum(1 for item in items if item[0] != NONMEM)
        total = instruction_count(items)
        observed = mem_ops / total
        assert observed == pytest.approx(profile.mem_fraction, rel=0.3)

    def test_store_fraction_approximates_profile(self):
        """store_fraction is run-level; derive the expected op-level mix."""
        profile = SPEC_PROFILES["mesa"]
        items = list(itertools.islice(synthetic_trace(profile, 0), 20000))
        stores = sum(1 for item in items if item[0] == STORE)
        mem_ops = sum(1 for item in items if item[0] != NONMEM)
        st, srun, run = (
            profile.store_fraction, profile.store_run_length, profile.run_length
        )
        expected = st * srun / (st * srun + (1 - st) * run)
        assert stores / mem_ops == pytest.approx(expected, rel=0.2)

    def test_dependent_loads_emitted(self):
        profile = SPEC_PROFILES["mcf"]
        items = list(itertools.islice(synthetic_trace(profile, 0), 20000))
        dependents = [item for item in items if item[0] == LOAD and item[2]]
        assert dependents, "mcf profile must emit dependent loads"


class TestProfiles:
    def test_all_figure6_benchmarks_present(self):
        assert set(SPEC_ORDER) == set(SPEC_PROFILES)
        assert len(SPEC_ORDER) == 18

    def test_profiles_validate(self):
        for profile in SPEC_PROFILES.values():
            profile.validate()

    def test_equake_swim_write_light(self):
        """Figure 7: equake and swim have very few L2 writes."""
        assert SPEC_PROFILES["equake"].store_fraction < 0.1
        assert SPEC_PROFILES["swim"].store_fraction < 0.1

    def test_mcf_is_low_mlp(self):
        assert SPEC_PROFILES["mcf"].dependent_prob >= 0.3

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            spec_trace("doom")

    def test_mixes_reference_known_benchmarks(self):
        for mix in HETEROGENEOUS_MIXES.values():
            assert len(mix) == 4
            assert all(name in SPEC_PROFILES for name in mix)

"""Tests for the optional shared L3 level."""

from dataclasses import replace

import pytest

from repro.cache.l3 import L3Config, SharedL3
from repro.cache.replacement import LRUPolicy
from repro.common.config import VPCAllocation, baseline_config
from repro.core.arbiter import FCFSArbiter
from repro.core.vpc_arbiter import VPCArbiter
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads import loads_trace, spec_trace


class StubMemory:
    def __init__(self, latency=60):
        self.latency = latency
        self.reads = []
        self.writes = []

    def can_accept_read(self, thread_id):
        return True

    def can_accept_write(self, thread_id):
        return True

    def enqueue_read(self, thread_id, line, notify, now, tracked=False):
        self.reads.append(line)
        notify(now + self.latency)

    def enqueue_write(self, thread_id, line, now):
        self.writes.append(line)


def make_l3(n_threads=1, arbiter=None, config=None, memory=None):
    config = config or L3Config()
    memory = memory or StubMemory()
    if arbiter is None:
        # NB: `arbiter or FCFS...` would be wrong — an empty arbiter has
        # len() == 0 and is falsy.
        arbiter = FCFSArbiter(n_threads)
    l3 = SharedL3(
        config=config,
        n_threads=n_threads,
        arbiter=arbiter,
        policy=LRUPolicy(),
        memory=memory,
    )
    return l3, memory


def run(l3, cycles, start=0):
    for now in range(start, start + cycles):
        l3.tick(now)


class TestReadPath:
    def test_miss_forwards_fills_and_notifies(self):
        l3, memory = make_l3()
        done = []
        l3.enqueue_read(0, 7, done.append, 0)
        run(l3, 200)
        assert memory.reads == [7]
        assert l3.array.contains(7)
        # Access latency 20 + memory 60.
        assert done == [80]

    def test_hit_served_at_port_latency(self):
        l3, memory = make_l3()
        l3.array.insert(7, 0)
        done = []
        l3.enqueue_read(0, 7, done.append, 0)
        run(l3, 100)
        assert done == [l3.config.latency]
        assert not memory.reads

    def test_port_occupancy_paces_accesses(self):
        l3, _ = make_l3()
        l3.array.insert(1, 0)
        l3.array.insert(2, 0)
        done = []
        l3.enqueue_read(0, 1, done.append, 0)
        l3.enqueue_read(0, 2, done.append, 0)
        run(l3, 100)
        assert done[1] - done[0] == l3.config.port_occupancy


class TestWritePath:
    def test_writeback_installs_dirty(self):
        l3, memory = make_l3()
        l3.enqueue_write(0, 9, 0)
        run(l3, 100)
        assert l3.array.is_dirty(9)
        assert not memory.writes   # absorbed, not forwarded

    def test_dirty_victim_reaches_memory(self):
        config = L3Config(size_bytes=2 * 64, ways=2, latency=4,
                          port_occupancy=2)
        l3, memory = make_l3(config=config)
        l3.enqueue_write(0, 0, 0)
        l3.enqueue_write(0, 1, 0)
        l3.enqueue_write(0, 2, 0)    # evicts dirty line 0
        run(l3, 300)
        assert memory.writes


class TestAdmission:
    def test_per_thread_pending_limit(self):
        config = L3Config(pending_per_thread=2)
        l3, _ = make_l3(config=config, memory=StubMemory(latency=500))
        l3.enqueue_read(0, 1, lambda c: None, 0)
        l3.enqueue_read(0, 2, lambda c: None, 0)
        assert not l3.can_accept_read(0)
        with pytest.raises(RuntimeError):
            l3.enqueue_read(0, 3, lambda c: None, 0)

    def test_busy_drains(self):
        l3, _ = make_l3()
        l3.enqueue_read(0, 1, lambda c: None, 0)
        assert l3.busy()
        run(l3, 300)
        assert not l3.busy()


class TestVPCPort:
    def test_shares_divide_port_bandwidth(self):
        arbiter = VPCArbiter(2, [0.75, 0.25], 10)
        l3, _ = make_l3(n_threads=2, arbiter=arbiter,
                        config=L3Config(pending_per_thread=64))
        # Pre-install lines so everything hits (pure port contention).
        for line in range(80):
            l3.array.insert(line, 0)
        served = [0, 0]

        def sink_for(tid):
            def sink(cycle):
                served[tid] += 1
            return sink

        next_line = [0, 40]
        for now in range(1200):
            for tid in (0, 1):
                if l3.can_accept_read(tid):
                    l3.enqueue_read(tid, next_line[tid] % 80, sink_for(tid), now)
                    next_line[tid] += 1
            l3.tick(now)
        assert served[0] / max(served[1], 1) == pytest.approx(3.0, rel=0.2)


class TestSystemIntegration:
    def _config(self, l2_kb=32, l3_port=4):
        # 32KB L2: the two 32KB microbenchmark arrays cannot fit, so L2
        # victims stream to the L3 continuously; the L3 port is set
        # faster than the two private DRAM channels combined so its
        # benefit is visible even for bandwidth-bound threads.
        base = baseline_config(n_threads=2, arbiter="vpc",
                               vpc=VPCAllocation.equal(2))
        small_l2 = replace(base.l2, size_bytes=l2_kb * 1024, ways=8)
        l3 = L3Config(port_occupancy=l3_port)
        return replace(base, l2=small_l2, l3=l3).validate()

    def test_l2_victims_hit_in_l3(self):
        """With a tiny L2, the microbenchmark's working set lives in the
        L3: after warmup the L3 serves hits, far faster than DRAM."""
        system = CMPSystem(self._config(), [loads_trace(0), loads_trace(1)])
        result = run_simulation(system, warmup=40_000, measure=20_000)
        assert system.l3.counters.get("read_hits") > 0
        assert min(result.ipcs) > 0

    def test_l3_faster_than_memory_only(self):
        config_l3 = self._config()
        config_mem = replace(config_l3, l3=None).validate()
        with_l3 = run_simulation(
            CMPSystem(config_l3, [loads_trace(0), loads_trace(1)]),
            warmup=40_000, measure=20_000,
        ).ipcs
        without = run_simulation(
            CMPSystem(config_mem, [loads_trace(0), loads_trace(1)]),
            warmup=40_000, measure=20_000,
        ).ipcs
        assert sum(with_l3) > sum(without) * 1.2

    def test_no_l3_by_default(self):
        config = baseline_config(n_threads=2)
        system = CMPSystem(config, [loads_trace(0), loads_trace(1)])
        assert system.l3 is None

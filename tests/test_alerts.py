"""The declarative alert engine: rules, burn rates, golden payloads.

The contract under test:

* Rule files (JSON or TOML) parse into validated :class:`AlertRule`
  sets; malformed files fail loudly at load time, not mid-run.
* ``for_windows`` is a burn-rate guard — a rule fires after exactly
  that many *consecutive* breaching windows, fires exactly once per
  sustained violation, emits a ``resolved`` event on recovery, and can
  fire again on a fresh violation.
* Alert payloads are byte-stable: no wall-clock fields, deterministic
  ``sequence`` ordinals, round-6 values — goldens compare exact bytes.
* Counter signals (violations/retries/excluded) evaluate from live
  events AND from scraped health documents (max-merge, so a late
  aggregator still converges on the true counts).
* A fired ``severity=page`` rule is sticky (``page_fired`` survives
  recovery) — the runners' nonzero-exit contract.
* The ``repro.alerts/1`` document round-trips through the validator.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry import LiveRun
from repro.telemetry.alerts import (
    PAGE_EXIT_CODE,
    AlertEngine,
    AlertRule,
    load_rules,
    write_alerts,
)
from repro.telemetry.validate import (
    main as validate_main,
    validate_alerts,
)


def _window(slowdowns=None, ipcs=None, fairness=None):
    """A minimal window event payload (per-thread rows of one value)."""
    series = {}
    if slowdowns is not None:
        series["slowdown"] = [[value] for value in slowdowns]
    if ipcs is not None:
        series["ipc"] = [[value] for value in ipcs]
    if fairness is not None:
        series["jain_fairness"] = [fairness]
    return {"point": 0, "snapshot": {"series": series}}


def _rule(**overrides) -> AlertRule:
    params = dict(name="r", signal="slowdown", threshold=2.0)
    params.update(overrides)
    return AlertRule(**params)


# ---------------------------------------------------------------------- #
# Rule files.
# ---------------------------------------------------------------------- #

def test_load_rules_json_both_shapes(tmp_path):
    wrapped = tmp_path / "rules.json"
    wrapped.write_text(json.dumps({"rules": [
        {"name": "s", "signal": "slowdown", "threshold": 2.5,
         "for_windows": 3, "severity": "page"},
    ]}))
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps([
        {"name": "f", "signal": "fairness", "op": "<", "threshold": 0.7},
    ]))
    (rule,) = load_rules(str(wrapped))
    assert (rule.name, rule.for_windows, rule.severity) == ("s", 3, "page")
    (rule,) = load_rules(str(bare))
    assert (rule.signal, rule.op) == ("fairness", "<")
    assert rule.severity == "warn"  # default


def test_load_rules_toml(tmp_path):
    path = tmp_path / "rules.toml"
    path.write_text(
        '[[rules]]\n'
        'name = "retry-storm"\n'
        'signal = "retries"\n'
        'op = ">="\n'
        'threshold = 3\n'
        'severity = "page"\n'
    )
    (rule,) = load_rules(str(path))
    assert rule.name == "retry-storm"
    assert rule.breached(3) and not rule.breached(2)


@pytest.mark.parametrize("bad", [
    {"rules": []},
    {"rules": [{"name": "x", "signal": "nope", "threshold": 1}]},
    {"rules": [{"name": "x", "signal": "ipc", "op": "!=", "threshold": 1}]},
    {"rules": [{"name": "x", "signal": "ipc", "threshold": 1,
                "severity": "fatal"}]},
    {"rules": [{"name": "x", "signal": "ipc", "threshold": 1,
                "for_windows": 0}]},
    {"rules": [{"name": "x", "signal": "ipc", "threshold": "high"}]},
    {"rules": [{"name": "x", "signal": "ipc", "threshold": 1,
                "surprise": True}]},
    {"rules": [{"name": "x", "signal": "ipc", "threshold": 1},
               {"name": "x", "signal": "ipc", "threshold": 2}]},
])
def test_load_rules_rejects_malformed(tmp_path, bad):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(bad))
    with pytest.raises(ValueError):
        load_rules(str(path))


# ---------------------------------------------------------------------- #
# Burn-rate state machine.
# ---------------------------------------------------------------------- #

def test_fires_exactly_once_per_sustained_window():
    engine = AlertEngine([_rule(name="burn", for_windows=3,
                                severity="page")])
    emitted = []
    for _ in range(5):  # five consecutive breaching windows
        emitted += engine.observe("window", _window(slowdowns=[3.0, 1.0]))
    assert len(emitted) == 1  # exactly once, on the third window
    assert emitted[0]["state"] == "firing"
    assert emitted[0]["streak"] == 3
    assert engine.fired == 1 and engine.firing == ["burn"]


def test_streak_resets_on_recovery_and_refires():
    engine = AlertEngine([_rule(name="burn", for_windows=2)])
    assert engine.observe("window", _window(slowdowns=[3.0])) == []
    # Recovery below for_windows: no firing, no resolved (never fired).
    assert engine.observe("window", _window(slowdowns=[1.0])) == []
    assert engine.observe("window", _window(slowdowns=[3.0])) == []
    (fired,) = engine.observe("window", _window(slowdowns=[3.0]))
    assert fired["state"] == "firing"
    (resolved,) = engine.observe("window", _window(slowdowns=[1.5]))
    assert resolved["state"] == "resolved"
    assert engine.firing == []
    # A fresh sustained violation fires again.
    engine.observe("window", _window(slowdowns=[4.0]))
    (refired,) = engine.observe("window", _window(slowdowns=[4.0]))
    assert refired["state"] == "firing"
    assert engine.fired == 2


def test_worst_thread_and_thread_restriction():
    worst = AlertEngine([_rule(name="any", threshold=2.0)])
    pinned = AlertEngine([_rule(name="t0", threshold=2.0, thread=0)])
    event = _window(slowdowns=[1.2, 2.8])  # only thread 1 breaches
    (fired,) = worst.observe("window", event)
    assert fired["value"] == 2.8
    assert pinned.observe("window", event) == []


def test_ipc_uses_slowest_thread_and_fairness_latest():
    engine = AlertEngine([
        _rule(name="slow-ipc", signal="ipc", op="<", threshold=0.5),
        _rule(name="unfair", signal="fairness", op="<", threshold=0.8),
    ])
    emitted = engine.observe(
        "window", _window(ipcs=[0.9, 0.3], fairness=0.6))
    assert {event["alert"]: event["value"] for event in emitted} == \
        {"slow-ipc": 0.3, "unfair": 0.6}


# ---------------------------------------------------------------------- #
# Counter and health signals.
# ---------------------------------------------------------------------- #

def test_counter_signals_from_events():
    engine = AlertEngine([
        _rule(name="retry-storm", signal="retries", op=">=", threshold=2,
              severity="page"),
        _rule(name="qos", signal="violations", op=">=", threshold=1),
    ])
    (qos,) = engine.observe("violation", {"thread": 0})
    assert qos["alert"] == "qos"
    assert engine.observe("retry", {"point": 1}) == []
    (storm,) = engine.observe("retry", {"point": 1})
    assert storm["alert"] == "retry-storm" and storm["value"] == 2
    assert engine.page_fired


def test_health_counters_max_merge():
    """A late subscriber that never saw the retry events still converges
    from the run's own health document — and re-observing a smaller
    count never regresses the counter."""
    engine = AlertEngine([_rule(name="retry-storm", signal="retries",
                                op=">=", threshold=3)])
    (fired,) = engine.observe_health({"resilience": {"retries": 4}})
    assert fired["alert"] == "retry-storm" and fired["value"] == 4
    engine.observe_health({"resilience": {"retries": 2}})
    assert engine.counters["retries"] == 4


def test_stale_workers_signal():
    engine = AlertEngine([_rule(name="stale", signal="stale_workers",
                                op=">=", threshold=1)])
    assert engine.observe_health({"stale_workers": []}) == []
    (fired,) = engine.observe_health({"stale_workers": [111, 222]})
    assert fired["value"] == 2
    (resolved,) = engine.observe_health({"stale_workers": []})
    assert resolved["state"] == "resolved"


def test_bench_regression_against_ledger():
    engine = AlertEngine([_rule(name="bench", signal="bench_regression",
                                op=">", threshold=0.10)])
    entries = [
        {"exp_id": "fig8", "totals": {"instructions": 900,
                                      "measured_cycles": 1000}},
        {"exp_id": "fig10", "totals": {"instructions": 1000,
                                       "measured_cycles": 1000}},
    ]
    # 20% throughput drop vs the fig10 entry -> fires.
    now = {"totals": {"instructions": 800, "measured_cycles": 1000}}
    (fired,) = engine.evaluate_history("fig10", now, entries)
    assert fired["value"] == pytest.approx(0.2)
    assert fired["exp_id"] == "fig10"
    # No prior entry for this experiment -> no evaluation.
    assert engine.evaluate_history("fig4", now, entries) == []
    assert engine.evaluate_history("fig10", None, entries) == []


def test_run_start_resets_state():
    engine = AlertEngine([_rule(name="qos", signal="violations",
                                op=">=", threshold=1)])
    engine.observe("violation", {})
    assert engine.firing == ["qos"]
    engine.observe("run", {"status": "started", "run": "second"})
    assert engine.firing == [] and engine.counters["violations"] == 0
    assert engine.fired == 1  # history of past runs is retained


# ---------------------------------------------------------------------- #
# Byte-stable payloads and the repro.alerts/1 artifact.
# ---------------------------------------------------------------------- #

def test_payloads_are_byte_stable(tmp_path):
    def run_once() -> bytes:
        engine = AlertEngine([
            _rule(name="burn", for_windows=2, severity="page"),
            _rule(name="unfair", signal="fairness", op="<", threshold=0.8),
        ])
        engine.observe("window", _window(slowdowns=[2.5], fairness=0.9))
        engine.observe("window", _window(slowdowns=[2.5], fairness=0.5))
        engine.observe("window", _window(slowdowns=[1.0], fairness=0.5))
        path = tmp_path / "alerts.json"
        write_alerts(path, engine)
        return path.read_bytes()

    first = run_once()
    assert first == run_once()  # identical run -> identical bytes
    document = json.loads(first)
    assert validate_alerts(document) == []
    assert [(e["alert"], e["state"], e["sequence"])
            for e in document["events"]] == [
        ("burn", "firing", 1),    # declaration order on the same window
        ("unfair", "firing", 2),
        ("burn", "resolved", 3),
    ]
    golden = {
        "alert": "burn", "severity": "page", "signal": "slowdown",
        "op": ">", "threshold": 2.0, "value": 2.5, "state": "firing",
        "streak": 2, "sequence": 1,
    }
    assert document["events"][0] == golden
    assert document["summary"] == {
        "fired": 2, "firing": ["unfair"], "page_fired": True,
    }


def test_document_round_trips_validate_cli(tmp_path, capsys):
    engine = AlertEngine([_rule(name="qos", signal="violations",
                                op=">=", threshold=1, severity="page")])
    engine.observe("violation", {})
    path = tmp_path / "alerts.json"
    assert write_alerts(path, engine) == 1
    assert validate_main([str(path)]) == 0
    assert "alert events" in capsys.readouterr().out
    assert PAGE_EXIT_CODE == 4 and engine.page_fired


def test_validate_alerts_rejects_malformed():
    engine = AlertEngine([_rule(name="qos", signal="violations",
                                op=">=", threshold=1)])
    engine.observe("violation", {})
    document = engine.document()
    assert validate_alerts(document) == []

    broken = json.loads(json.dumps(document))
    broken["events"][0]["sequence"] = 0
    assert any("monotonically" in p for p in validate_alerts(broken))

    orphan = json.loads(json.dumps(document))
    orphan["events"][0]["alert"] = "ghost"
    assert any("undeclared" in p for p in validate_alerts(orphan))

    lying = json.loads(json.dumps(document))
    lying["summary"]["fired"] = 99
    assert any("summary.fired" in p for p in validate_alerts(lying))


# ---------------------------------------------------------------------- #
# LiveRun integration: the publish-path tap.
# ---------------------------------------------------------------------- #

def test_live_run_publishes_alert_events():
    """An engine attached to a LiveRun sees every published event and
    its emissions ride the same SSE stream, labelled ``alert``."""
    engine = AlertEngine([_rule(name="qos", signal="violations",
                                op=">=", threshold=1, severity="page")])
    live = LiveRun()
    live.alert_engine = engine
    live.begin_run("alert-test")
    live.begin_batch(1)
    subscriber = live.subscribe()
    live.put(("violation", 0, 111, {"thread": 0, "window": 4}))
    events = []
    while not subscriber.empty():
        events.append(subscriber.get_nowait())
    alerts = [payload for event, payload in events if event == "alert"]
    assert len(alerts) == 1
    assert alerts[0]["alert"] == "qos" and alerts[0]["state"] == "firing"
    assert live.health()["alerts"] == {"fired": 1, "firing": ["qos"]}
    assert engine.page_fired

"""Property-based tests for the VPC arbiter's bandwidth guarantee.

These drive the arbiter the way the cache bank does (cycle-stepped,
non-preemptible resource, occupancy = latency * quanta) on random
traffic and check the paper's core claims:

* a continuously backlogged thread receives at least its share of the
  resource, minus one maximum service time (the preemption penalty);
* the resource never idles while work is queued (work conservation);
* intra-thread RoW reordering never changes inter-thread service totals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbiter import ArbiterEntry
from repro.core.vpc_arbiter import VPCArbiter

LATENCY = 8


def simulate(arbiter, traffic, horizon):
    """Cycle-stepped service of `traffic` = {cycle: [(tid, is_write)]}.

    Returns per-thread service cycles granted within `horizon`.
    """
    service = [0] * arbiter.n_threads
    busy_until = 0
    for now in range(horizon):
        for tid, is_write in traffic.get(now, ()):
            arbiter.enqueue(
                ArbiterEntry(
                    thread_id=tid, payload=None, is_write=is_write,
                    service_quanta=2 if is_write else 1,
                ),
                now,
            )
        if now >= busy_until and len(arbiter):
            granted = arbiter.select(now)
            duration = LATENCY * granted.service_quanta
            busy_until = now + duration
            service[granted.thread_id] += duration
    return service


@st.composite
def backlogged_scenarios(draw):
    """Thread 0 is permanently backlogged; others send random traffic."""
    n_threads = draw(st.integers(min_value=2, max_value=4))
    share0 = draw(st.sampled_from([0.25, 0.4, 0.5, 0.75]))
    rest = (1.0 - share0) / (n_threads - 1)
    shares = [share0] + [rest] * (n_threads - 1)
    horizon = draw(st.integers(min_value=400, max_value=1200))
    traffic = {0: [(0, False)] * 64}
    # Keep thread 0 backlogged: top it up continuously.
    for cycle in range(0, horizon, LATENCY):
        traffic.setdefault(cycle, []).append((0, False))
    n_others = draw(st.integers(min_value=0, max_value=120))
    for _ in range(n_others):
        cycle = draw(st.integers(min_value=0, max_value=horizon - 1))
        tid = draw(st.integers(min_value=1, max_value=n_threads - 1))
        is_write = draw(st.booleans())
        traffic.setdefault(cycle, []).append((tid, is_write))
    return shares, traffic, horizon


@settings(max_examples=40, deadline=None)
@given(backlogged_scenarios())
def test_backlogged_thread_gets_its_share(scenario):
    """Minimum-bandwidth guarantee with the non-preemption penalty.

    Worst-case slack: one maximum service time (a write, 2*L) at the
    start of the interval plus the partial service at the end.
    """
    shares, traffic, horizon = scenario
    arbiter = VPCArbiter(len(shares), shares, LATENCY)
    service = simulate(arbiter, traffic, horizon)
    max_service = 2 * LATENCY
    guaranteed = shares[0] * horizon - 2 * max_service
    assert service[0] >= guaranteed, (service, shares, horizon)


@settings(max_examples=40, deadline=None)
@given(backlogged_scenarios())
def test_work_conservation_under_backlog(scenario):
    """Thread 0 never drains, so the resource must never idle."""
    shares, traffic, horizon = scenario
    arbiter = VPCArbiter(len(shares), shares, LATENCY)
    service = simulate(arbiter, traffic, horizon)
    # Total granted service covers the horizon minus at most one
    # in-flight service window.
    assert sum(service) >= horizon - 2 * LATENCY


@settings(max_examples=30, deadline=None)
@given(backlogged_scenarios())
def test_row_reordering_preserves_inter_thread_totals(scenario):
    """Section 4.1.1: intra-thread reordering must not shift bandwidth
    between threads."""
    shares, traffic, horizon = scenario
    with_row = simulate(
        VPCArbiter(len(shares), shares, LATENCY, intra_thread_row=True),
        traffic, horizon,
    )
    without_row = simulate(
        VPCArbiter(len(shares), shares, LATENCY, intra_thread_row=False),
        traffic, horizon,
    )
    for got, expected in zip(with_row, without_row):
        assert abs(got - expected) <= 2 * LATENCY


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.sampled_from([0.25, 0.5]), min_size=2, max_size=4),
    st.integers(min_value=500, max_value=1500),
)
def test_saturated_threads_split_proportionally(raw_shares, horizon):
    """All threads saturated -> service proportional to shares."""
    total = sum(raw_shares)
    shares = [s / total for s in raw_shares]
    traffic = {}
    for cycle in range(0, horizon, LATENCY):
        traffic[cycle] = [(tid, False) for tid in range(len(shares))]
    arbiter = VPCArbiter(len(shares), shares, LATENCY)
    service = simulate(arbiter, traffic, horizon)
    for tid, share in enumerate(shares):
        expected = share * sum(service)
        assert abs(service[tid] - expected) <= 3 * LATENCY, (service, shares)

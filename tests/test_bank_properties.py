"""Property-based and failure-injection tests for the L2 bank pipeline.

Invariants under arbitrary traffic:

* **conservation** — every accepted load eventually produces exactly one
  response; every store is eventually acknowledged;
* **meter sanity** — resource busy-cycles never exceed elapsed cycles;
* **drain** — with no new input the bank eventually goes quiescent
  (except stores legitimately parked below the gathering high-water mark);
* **flaky memory** — a memory controller that refuses admission for long
  stretches delays but never loses requests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.bank import CacheBank
from repro.cache.cache_array import CacheArray
from repro.cache.replacement import LRUPolicy
from repro.common.config import L2Config
from repro.common.records import AccessType, make_request
from repro.core.arbiter import FCFSArbiter
from repro.core.vpc_arbiter import VPCArbiter


class FlakyMemory:
    """Memory that only accepts requests when `now % period < duty`."""

    def __init__(self, latency=40, period=1, duty=1):
        self.latency = latency
        self.period = period
        self.duty = duty
        self._now = 0

    def observe(self, now):
        self._now = now

    def _open(self):
        return (self._now % self.period) < self.duty

    def can_accept_read(self, thread_id):
        return self._open()

    def can_accept_write(self, thread_id):
        return self._open()

    def enqueue_read(self, thread_id, line, notify, now, tracked=False):
        notify(now + self.latency)

    def enqueue_write(self, thread_id, line, now):
        pass


def build_bank(n_threads, arbiter_kind, memory):
    config = L2Config(banks=1)
    responses = []

    def factory(name, latency):
        if arbiter_kind == "vpc":
            return VPCArbiter(n_threads, [1.0 / n_threads] * n_threads, latency)
        return FCFSArbiter(n_threads)

    array = CacheArray(config.sets, config.ways, LRUPolicy(), index_stride=1)
    bank = CacheBank(
        bank_id=0, n_threads=n_threads, config=config, array=array,
        arbiter_factory=factory,
        respond=lambda request, now: responses.append(request),
        memory=memory,
    )
    return bank, responses


@st.composite
def traffic(draw):
    n_threads = draw(st.integers(min_value=1, max_value=4))
    arbiter = draw(st.sampled_from(["fcfs", "vpc"]))
    n_requests = draw(st.integers(min_value=1, max_value=60))
    events = []
    cycle = 0
    for _ in range(n_requests):
        cycle += draw(st.integers(min_value=0, max_value=12))
        events.append((
            cycle,
            draw(st.integers(min_value=0, max_value=n_threads - 1)),
            draw(st.integers(min_value=0, max_value=40)),   # line
            draw(st.booleans()),                            # is_store
        ))
    return n_threads, arbiter, events


def drive(bank, memory, events, horizon):
    loads_sent = stores_sent = 0
    index = 0
    for now in range(horizon):
        if hasattr(memory, "observe"):
            memory.observe(now)
        while index < len(events) and events[index][0] <= now:
            _, tid, line, is_store = events[index]
            access = AccessType.WRITE if is_store else AccessType.READ
            bank.accept(make_request(tid, line * 64, access, 64), now)
            if is_store:
                stores_sent += 1
            else:
                loads_sent += 1
            index += 1
        bank.tick(now)
    return loads_sent, stores_sent


@settings(max_examples=40, deadline=None)
@given(traffic())
def test_every_load_answered_exactly_once(case):
    n_threads, arbiter, events = case
    memory = FlakyMemory()
    bank, responses = build_bank(n_threads, arbiter, memory)
    horizon = events[-1][0] + 6_000
    loads_sent, stores_sent = drive(bank, memory, events, horizon)
    load_responses = [r for r in responses if r.access is AccessType.READ]
    store_acks = [r for r in responses if r.access is AccessType.WRITE]
    assert len(load_responses) == loads_sent
    assert len(store_acks) == stores_sent
    assert len({r.req_id for r in load_responses}) == loads_sent


@settings(max_examples=40, deadline=None)
@given(traffic())
def test_meters_within_elapsed_time(case):
    n_threads, arbiter, events = case
    memory = FlakyMemory()
    bank, _ = build_bank(n_threads, arbiter, memory)
    horizon = events[-1][0] + 6_000
    drive(bank, memory, events, horizon)
    for resource in bank.resources:
        assert 0 <= resource.meter.busy_cycles <= horizon + 2 * resource.base_latency


@settings(max_examples=30, deadline=None)
@given(traffic())
def test_bank_drains_after_input_stops(case):
    """Only sub-high-water gathered stores may remain parked."""
    n_threads, arbiter, events = case
    memory = FlakyMemory()
    bank, _ = build_bank(n_threads, arbiter, memory)
    horizon = events[-1][0] + 6_000
    drive(bank, memory, events, horizon)
    assert not bank._sms, "state machines leaked"
    assert not bank._mem_wait and not bank._wbmem_wait
    for sgb in bank.sgbs:
        assert sgb.occupancy < sgb.high_water


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),   # closed period
    st.integers(min_value=1, max_value=10),   # open duty
    st.integers(min_value=1, max_value=30),   # request count
)
def test_flaky_memory_delays_but_never_loses(period, duty, n_requests):
    duty = min(duty, period)
    memory = FlakyMemory(latency=30, period=period, duty=duty)
    bank, responses = build_bank(1, "fcfs", memory)
    events = [(i * 3, 0, i, False) for i in range(n_requests)]  # all misses
    drive(bank, memory, events, events[-1][0] + 8_000)
    load_responses = [r for r in responses if r.access is AccessType.READ]
    assert len(load_responses) == n_requests

"""Unit tests for the L2 cache bank pipeline, including the Figure-4
timing reproduction (16-cycle critical word, 22-cycle full line)."""

import pytest

from repro.cache.bank import CacheBank
from repro.cache.cache_array import CacheArray
from repro.cache.replacement import LRUPolicy
from repro.common.config import L2Config
from repro.common.records import AccessType, make_request
from repro.core.arbiter import FCFSArbiter


class StubMemory:
    """Fixed-latency memory with optional admission refusal."""

    def __init__(self, latency=50, accept=True):
        self.latency = latency
        self.accept = accept
        self.reads = []
        self.writes = []

    def can_accept_read(self, thread_id):
        return self.accept

    def can_accept_write(self, thread_id):
        return self.accept

    def enqueue_read(self, thread_id, line, notify, now, tracked=False):
        self.reads.append((thread_id, line, now))
        notify(now + self.latency)

    def enqueue_write(self, thread_id, line, now):
        self.writes.append((thread_id, line, now))


def make_bank(n_threads=1, memory=None, config=None):
    config = config or L2Config(banks=1)
    memory = memory or StubMemory()
    responses = []
    array = CacheArray(config.sets, config.ways, LRUPolicy(), index_stride=1)
    bank = CacheBank(
        bank_id=0,
        n_threads=n_threads,
        config=config,
        array=array,
        arbiter_factory=lambda name, latency: FCFSArbiter(n_threads),
        respond=lambda request, now: responses.append((request, now)),
        memory=memory,
    )
    return bank, responses, memory


def run(bank, cycles, start=0):
    for now in range(start, start + cycles):
        bank.tick(now)
    return start + cycles


def read(line, thread=0):
    return make_request(thread, line * 64, AccessType.READ, 64)


def write(line, thread=0):
    return make_request(thread, line * 64, AccessType.WRITE, 64)


class TestReadHitTiming:
    def test_figure4_critical_word_at_14_in_bank(self):
        """Tag(4) + data array(8) + first bus beat(2) = 14 bank cycles;
        plus the 2-cycle request crossbar = the paper's 16-cycle total."""
        bank, responses, _ = make_bank()
        # Warm the line without timing (install directly).
        bank.array.insert(5, 0)
        request = read(5)
        bank.accept(request, 0)
        run(bank, 40)
        assert responses, "read hit never responded"
        _, when = responses[0]
        assert when == 14
        assert request.critical_word_cycle == 14

    def test_figure4_full_line_at_20_in_bank(self):
        """Bus occupies 8 cycles: full line done at 12+8=20 (paper: 22
        including the request crossbar)."""
        bank, _, _ = make_bank()
        bank.array.insert(5, 0)
        bank.accept(read(5), 0)
        run(bank, 40)
        assert bank.bus.meter.busy_until == 20

    def test_stage_timestamps_recorded(self):
        bank, _, _ = make_bank()
        bank.array.insert(5, 0)
        request = read(5)
        bank.accept(request, 0)
        run(bank, 40)
        assert request.tag_done_cycle == 4
        assert request.data_done_cycle == 12
        assert request.completed_cycle == 20

    def test_back_to_back_reads_pipeline(self):
        """A second hit to the same bank overlaps in the pipeline: its
        tag access starts while the first is in the data array."""
        bank, responses, _ = make_bank()
        bank.array.insert(5, 0)
        bank.array.insert(9, 0)
        bank.accept(read(5), 0)
        bank.accept(read(9), 0)
        run(bank, 60)
        times = sorted(when for _, when in responses)
        assert times[0] == 14
        # Second read: admitted at cycle 1, tag 1..5 wait data until 12,
        # data 12..20, bus beat at 22.
        assert times[1] == 22


class TestWriteTiming:
    def test_write_hit_two_data_accesses(self):
        """ECC read-merge-write: the data array is busy 16 cycles."""
        config = L2Config(banks=1, sgb_high_water=1, sgb_entries=8)
        bank, _, _ = make_bank(config=config)
        bank.array.insert(5, 0)
        bank.accept(write(5), 0)
        run(bank, 60)
        assert bank.data.meter.busy_cycles == 16
        assert bank.array.is_dirty(5)

    def test_write_does_not_use_bus(self):
        config = L2Config(banks=1, sgb_high_water=1)
        bank, _, _ = make_bank(config=config)
        bank.array.insert(5, 0)
        bank.accept(write(5), 0)
        run(bank, 60)
        assert bank.bus.meter.busy_cycles == 0

    def test_store_ack_sent_at_gathering(self):
        """The store-queue credit returns when the SGB accepts the store,
        not when the write retires."""
        bank, responses, _ = make_bank()
        request = write(5)
        bank.accept(request, 0)
        run(bank, 3)
        assert responses and responses[0][0] is request


class TestReadMiss:
    def test_miss_goes_to_memory_and_fills(self):
        bank, responses, memory = make_bank()
        request = read(7)
        bank.accept(request, 0)
        run(bank, 200)
        assert memory.reads and memory.reads[0][1] == 7
        assert responses[0][0] is request
        assert bank.array.contains(7)
        assert bank.counters.get("read_misses") == 1
        assert bank.counters.get("fills") == 1

    def test_miss_response_after_memory_latency(self):
        bank, responses, _ = make_bank(memory=StubMemory(latency=50))
        bank.accept(read(7), 0)
        run(bank, 200)
        _, when = responses[0]
        # tag 4 + miss-status tag 4 + memory 50 + bus beat 2 = 60.
        assert when == 60

    def test_second_access_hits_after_fill(self):
        bank, responses, _ = make_bank()
        bank.accept(read(7), 0)
        run(bank, 200)
        bank.accept(read(7), 200)
        run(bank, 40, start=200)
        assert bank.counters.get("read_hits") == 1

    def test_miss_status_tag_access_optional(self):
        config = L2Config(banks=1, miss_status_tag_access=False)
        bank, responses, _ = make_bank(config=config, memory=StubMemory(latency=50))
        bank.accept(read(7), 0)
        run(bank, 200)
        _, when = responses[0]
        assert when == 56  # tag 4 + memory 50 + bus beat 2


class TestWriteMiss:
    def test_write_allocate(self):
        config = L2Config(banks=1, sgb_high_water=1)
        bank, _, memory = make_bank(config=config)
        bank.accept(write(9), 0)
        run(bank, 300)
        assert memory.reads, "write miss must fetch the line"
        assert bank.array.contains(9)
        assert bank.array.is_dirty(9)


class TestWriteback:
    def test_dirty_victim_written_back(self):
        config = L2Config(banks=1, sgb_high_water=1)
        bank, _, memory = make_bank(config=config)
        sets = config.sets
        ways = config.ways
        # Fill one set with dirty lines, then force one more fill.
        for i in range(ways):
            bank.array.insert(1 + i * sets, 0)
            bank.array.set_dirty(1 + i * sets)
        bank.accept(read(1 + ways * sets), 0)
        run(bank, 400)
        assert memory.writes, "dirty victim should be written back"
        assert bank.counters.get("writebacks") == 1


class TestConflictsAndLimits:
    def test_same_line_requests_serialize(self):
        """A request to a line already owned by a state machine waits."""
        bank, responses, _ = make_bank(memory=StubMemory(latency=100))
        bank.accept(read(7), 0)
        bank.tick(0)
        bank.accept(read(7), 1)
        run(bank, 3, start=1)
        assert len(bank._sms) == 1  # second request not admitted yet
        run(bank, 400, start=4)
        assert len(responses) == 2

    def test_state_machine_limit(self):
        config = L2Config(banks=1, state_machines_per_thread=2)
        bank, _, _ = make_bank(config=config, memory=StubMemory(latency=500))
        for line in range(5):
            bank.accept(read(line), 0)
        run(bank, 10)
        assert len(bank._sms) == 2

    def test_row_inversion_blocks_loads(self):
        """With the SGB at its high-water mark, loads stop bypassing."""
        config = L2Config(banks=1, sgb_entries=8, sgb_high_water=2)
        bank, _, _ = make_bank(config=config)
        bank.array.insert(50, 0)
        bank.accept(write(10), 0)
        bank.accept(write(11), 0)   # occupancy 2 == high water
        bank.accept(read(50), 0)
        bank.tick(0)
        bank.tick(1)
        # First admission must be a store (loads inverted), not the load.
        assert bank.counters.get("writes_admitted") >= 1

    def test_utilization_reporting(self):
        bank, _, _ = make_bank()
        bank.array.insert(5, 0)
        bank.accept(read(5), 0)
        run(bank, 100)
        utils = bank.utilizations(100)
        assert utils["tag"] == pytest.approx(0.04)
        assert utils["data"] == pytest.approx(0.08)
        assert utils["bus"] == pytest.approx(0.08)

    def test_busy_drains(self):
        bank, _, _ = make_bank()
        bank.array.insert(5, 0)
        bank.accept(read(5), 0)
        assert bank.busy()
        run(bank, 100)
        assert not bank.busy()

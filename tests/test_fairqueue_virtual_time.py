"""Unit tests for the fair-queuing virtual-time algebra (Eqs. 1-2)."""

import math

import pytest

from repro.fairqueue.virtual_time import (
    FlowState,
    PacketTags,
    deadline_bound,
    min_service_in_interval,
    shares_feasible,
    virtual_finish,
    virtual_service_time,
    virtual_start,
)


class TestVirtualServiceTime:
    def test_scales_by_reciprocal_share(self):
        assert virtual_service_time(8, 0.5) == 16
        assert virtual_service_time(8, 0.25) == 32
        assert virtual_service_time(8, 1.0) == 8

    def test_zero_share_is_infinite(self):
        assert math.isinf(virtual_service_time(8, 0.0))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            virtual_service_time(-1, 0.5)
        with pytest.raises(ValueError):
            virtual_service_time(8, 1.5)


class TestEquations:
    def test_eq1_start_is_max_of_arrival_and_prev_finish(self):
        assert virtual_start(10.0, 5.0) == 10.0
        assert virtual_start(5.0, 10.0) == 10.0

    def test_eq2_finish_adds_virtual_service(self):
        assert virtual_finish(10.0, 8, 0.5) == 26.0


class TestFlowState:
    def test_backlogged_packets_chain_finish_times(self):
        flow = FlowState(0, share=0.5)
        first = flow.tag(arrival=0.0, length=8)
        second = flow.tag(arrival=0.0, length=8)
        assert first.virtual_finish == 16.0
        assert second.virtual_start == 16.0
        assert second.virtual_finish == 32.0

    def test_idle_flow_restarts_at_arrival(self):
        flow = FlowState(0, share=0.5)
        flow.tag(arrival=0.0, length=8)          # finish 16
        late = flow.tag(arrival=100.0, length=8)  # idle gap: no credit
        assert late.virtual_start == 100.0
        assert late.virtual_finish == 116.0

    def test_service_recording(self):
        flow = FlowState(0, share=1.0)
        flow.record_service(8)
        flow.record_service(8)
        assert flow.packets_served == 2
        assert flow.service_received == 16


class TestPacketTags:
    def test_rejects_inverted_tags(self):
        with pytest.raises(ValueError):
            PacketTags(0, 0.0, 1.0, virtual_start=5.0, virtual_finish=4.0)


class TestBounds:
    def test_deadline_bound(self):
        assert deadline_bound(100.0, 16.0) == 116.0

    def test_min_service_guarantee(self):
        # share .25 over 100 time units with max packet 8: at least 17.
        assert min_service_in_interval(0.25, 100.0, 8.0) == pytest.approx(17.0)

    def test_min_service_never_negative(self):
        assert min_service_in_interval(0.1, 5.0, 8.0) == 0.0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            min_service_in_interval(0.5, -1.0, 8.0)


class TestSharesFeasible:
    def test_feasible(self):
        assert shares_feasible([0.25, 0.25, 0.5])
        assert shares_feasible([0.5, 0.1])

    def test_infeasible(self):
        assert not shares_feasible([0.6, 0.6])
        assert not shares_feasible([-0.1, 0.5])

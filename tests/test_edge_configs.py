"""Edge-configuration tests: unusual but legal system shapes must work.

Single-bank caches, one-thread systems, eight threads, zero warmup,
single-entry structures — shapes no experiment uses but a library user
will eventually construct.
"""

from dataclasses import replace

import pytest

import repro
from repro.common.config import (
    CoreConfig,
    L1Config,
    L2Config,
    VPCAllocation,
    baseline_config,
)
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads import loads_trace, spec_trace, stores_trace


class TestSingleBank:
    def test_one_bank_system_runs(self):
        config = baseline_config(n_threads=2, banks=1, arbiter="vpc",
                                 vpc=VPCAllocation.equal(2))
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        result = run_simulation(system, warmup=20_000, measure=8_000)
        assert len(system.banks) == 1
        assert all(ipc >= 0 for ipc in result.ipcs)

    def test_one_bank_loads_rate_halves(self):
        """One bank = half the data-array bandwidth of the baseline."""
        def solo(banks):
            config = baseline_config(n_threads=1, banks=banks,
                                     arbiter="row-fcfs",
                                     vpc=VPCAllocation([1.0], [1.0]))
            system = CMPSystem(config, [loads_trace(0)])
            return run_simulation(system, warmup=30_000, measure=10_000).ipcs[0]

        assert solo(1) == pytest.approx(solo(2) / 2, rel=0.05)


class TestManyThreads:
    def test_eight_threads_on_two_banks(self):
        config = baseline_config(n_threads=8, arbiter="vpc",
                                 vpc=VPCAllocation.equal(8))
        names = ["art", "mcf", "gzip", "gcc", "swim", "mesa", "vpr", "ammp"]
        traces = [spec_trace(name, tid) for tid, name in enumerate(names)]
        system = CMPSystem(config, traces)
        result = run_simulation(system, warmup=15_000, measure=8_000)
        assert len(result.ipcs) == 8
        assert all(ipc > 0 for ipc in result.ipcs)   # nobody starves

    def test_eight_way_quota_is_four_ways(self):
        from repro.core.capacity import ways_quota
        assert ways_quota([1 / 8] * 8, 32) == [4] * 8


class TestOneThread:
    def test_vpc_with_single_thread(self):
        """A lone thread with share 1.0 behaves like a private machine."""
        config = baseline_config(n_threads=1, arbiter="vpc",
                                 vpc=VPCAllocation([1.0], [1.0]))
        system = CMPSystem(config, [loads_trace(0)])
        result = run_simulation(system, warmup=30_000, measure=10_000)
        assert result.ipcs[0] == pytest.approx(0.3125, abs=0.003)


class TestUnusualIntervals:
    def test_zero_warmup(self):
        config = baseline_config(n_threads=2)
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        result = run_simulation(system, warmup=0, measure=5_000)
        assert result.warmup_cycles == 0

    def test_tiny_measure_interval(self):
        config = baseline_config(n_threads=2)
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        result = run_simulation(system, warmup=100, measure=1)
        assert result.cycles == 1


class TestTinyStructures:
    def test_single_entry_sgb(self):
        l2 = L2Config(sgb_entries=1, sgb_high_water=1)
        config = replace(baseline_config(n_threads=2), l2=l2).validate()
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        result = run_simulation(system, warmup=20_000, measure=5_000)
        assert result.ipcs[1] > 0           # stores still flow
        assert result.gathering_rate == 0.0  # nothing can merge

    def test_single_state_machine_per_thread(self):
        l2 = L2Config(state_machines_per_thread=1)
        config = replace(baseline_config(n_threads=2), l2=l2).validate()
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        result = run_simulation(system, warmup=20_000, measure=5_000)
        assert all(ipc > 0 for ipc in result.ipcs)

    def test_tiny_window_core(self):
        core = CoreConfig(window_size=2, issue_width=1)
        config = replace(baseline_config(n_threads=1,
                                         vpc=VPCAllocation([1.0], [1.0]),
                                         arbiter="row-fcfs"),
                         core=core).validate()
        system = CMPSystem(config, [loads_trace(0)])
        result = run_simulation(system, warmup=10_000, measure=5_000)
        assert 0 < result.ipcs[0] < 0.3125   # window-bound, but alive

    def test_single_mshr(self):
        l1 = L1Config(mshrs=1)
        config = replace(baseline_config(n_threads=1,
                                         vpc=VPCAllocation([1.0], [1.0]),
                                         arbiter="row-fcfs"),
                         l1=l1).validate()
        system = CMPSystem(config, [loads_trace(0)])
        result = run_simulation(system, warmup=10_000, measure=5_000)
        assert 0 < result.ipcs[0] < 0.3125   # MLP = 1


class TestPublicAPI:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__

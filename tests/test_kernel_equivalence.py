"""Cross-kernel equivalence: every kernel must reproduce the
cycle-by-cycle stepper bit for bit.

Three kernels share one state-transition model (``repro.system.kernel``,
``repro.system.batch_kernel``): ``cycle`` steps every component every
cycle and is the oracle; ``event`` skips globally-quiescent stretches;
``batch`` activates components selectively and jumps between wake
cycles.  Every field of
:class:`~repro.system.simulator.SimulationResult` — IPCs, instruction
counts, utilizations, all L2 counters, and (when collected) the full
metrics snapshot — is compared with exact equality, no tolerances: the
skipping kernels only elide cycles they can prove are no-ops, so any
divergence is a bug.

The matrix also covers the surfaces that historically break exactness
claims: telemetry attachment (replacement-policy clocks read
``system.cycle`` mid-cycle), metrics windows (chunked ``run()`` calls),
checkpoint/resume mid-measurement, and the lockstep lane driver.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict

import pytest

from repro.common.config import baseline_config
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads.microbench import loads_trace, stores_trace
from repro.workloads.profiles import HETEROGENEOUS_MIXES, spec_trace

SKIPPING_KERNELS = ("event", "batch")


def _run(config, trace_factories, kernel, warmup, measure, metrics=False,
         **kwargs):
    traces = [factory(tid) for tid, factory in enumerate(trace_factories)]
    system = CMPSystem(config, traces, kernel=kernel, **kwargs)
    collector = None
    if metrics:
        from repro.telemetry import MetricsCollector, TelemetryBus
        bus = system.attach_telemetry(TelemetryBus())
        collector = bus.attach(MetricsCollector(
            config.n_threads, window=500))
    result = run_simulation(system, warmup=warmup, measure=measure,
                            metrics=collector)
    return system, result


def _assert_equivalent(config, trace_factories, warmup=6_000, measure=4_000,
                       metrics=False, **kwargs):
    """Run cycle as the oracle, then each skipping kernel; bit-compare."""
    ref_system, reference = _run(config, trace_factories, "cycle", warmup,
                                 measure, metrics=metrics, **kwargs)
    # The cycle kernel never scans for skips.
    assert ref_system.skip_attempts == 0
    assert ref_system.skips_taken == 0
    assert ref_system.skipped_cycles == 0
    systems = {}
    for kernel in SKIPPING_KERNELS:
        system, result = _run(config, trace_factories, kernel, warmup,
                              measure, metrics=metrics, **kwargs)
        assert asdict(result) == asdict(reference), kernel
        # Skip accounting must be internally consistent: no more takes
        # than attempts, and every taken skip removed at least one cycle.
        assert system.skip_attempts >= system.skips_taken, kernel
        assert system.skipped_cycles >= system.skips_taken, kernel
        if system.skipped_cycles:
            assert system.skips_taken > 0, kernel
        systems[kernel] = system
    return systems


class TestKernelEquivalence:
    @pytest.mark.parametrize("arbiter", ["vpc", "fcfs", "row-fcfs"])
    def test_two_thread_loads_stores(self, arbiter):
        config = baseline_config(n_threads=2, arbiter=arbiter)
        systems = _assert_equivalent(config, [loads_trace, stores_trace])
        # The matrix is vacuous unless the skipping kernels skipped.
        for kernel, system in systems.items():
            assert system.skipped_cycles > 0, kernel

    def test_lru_capacity_policy(self):
        config = baseline_config(n_threads=2, arbiter="fcfs")
        _assert_equivalent(config, [loads_trace, stores_trace],
                           capacity_policy="lru")

    def test_four_thread_fig10_mix(self):
        names = HETEROGENEOUS_MIXES["mix1"]
        factories = [
            (lambda tid, name=name: spec_trace(name, tid)) for name in names
        ]
        config = baseline_config(n_threads=4, arbiter="vpc")
        systems = _assert_equivalent(config, factories,
                                     warmup=5_000, measure=3_000)
        for kernel, system in systems.items():
            assert system.skipped_cycles > 0, kernel

    def test_smt_core_pair(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        _assert_equivalent(config, [loads_trace, stores_trace],
                           warmup=4_000, measure=3_000, smt_degree=2)

    def test_finite_trace_drains_identically(self):
        # A short finite trace leaves the machine idle long before the
        # interval ends — the drained tail must be skipped, not mis-stepped.
        def short(tid):
            return itertools.islice(loads_trace(tid), 200)

        config = baseline_config(n_threads=2, arbiter="vpc")
        systems = _assert_equivalent(config, [short, short],
                                     warmup=1_000, measure=2_000)
        for kernel, system in systems.items():
            assert system.skipped_cycles > 1_000, kernel

    def test_with_telemetry_and_metrics_windows(self):
        # Telemetry wires the replacement-policy clock to system.cycle
        # (a mid-cycle read the batch kernel must keep synchronized) and
        # a metrics collector chunks the run into windows; both the
        # result AND the metrics JSON must stay byte-identical.
        config = baseline_config(n_threads=2, arbiter="vpc")
        _, reference = _run(config, [loads_trace, stores_trace], "cycle",
                            6_000, 4_000, metrics=True)
        ref_json = json.dumps(reference.metrics, indent=2, sort_keys=True)
        for kernel in SKIPPING_KERNELS:
            _, result = _run(config, [loads_trace, stores_trace], kernel,
                             6_000, 4_000, metrics=True)
            assert asdict(result) == asdict(reference), kernel
            assert json.dumps(result.metrics, indent=2,
                              sort_keys=True) == ref_json, kernel

    @pytest.mark.parametrize("kernel", SKIPPING_KERNELS)
    def test_checkpoint_roundtrip_mid_run(self, tmp_path, kernel):
        # A run checkpointed mid-measurement and resumed "in another
        # process" must land on the uninterrupted cycle-kernel result.
        from repro.resilience import (
            Checkpointer,
            ResumableTrace,
            resume_simulation,
        )
        config = baseline_config(n_threads=2, arbiter="vpc")
        specs = (("loads",), ("stores",))

        ref_system = CMPSystem(
            config, [loads_trace(0), stores_trace(1)], kernel="cycle")
        reference = run_simulation(ref_system, warmup=6_000, measure=4_000)

        ckpt = tmp_path / f"{kernel}.ckpt"
        system = CMPSystem(
            config,
            [ResumableTrace(spec, tid) for tid, spec in enumerate(specs)],
            kernel=kernel,
        )
        checkpointer = Checkpointer(ckpt, every=1_000, point_key=kernel)
        chunked = run_simulation(system, warmup=6_000, measure=4_000,
                                 checkpoint=checkpointer)
        assert asdict(chunked) == asdict(reference)
        assert checkpointer.saved >= 2
        resumed = resume_simulation(ckpt)
        assert asdict(resumed) == asdict(reference)

    def test_skip_counters_account_for_fast_forwards(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        for kernel in SKIPPING_KERNELS:
            system, _ = _run(config, [loads_trace, stores_trace], kernel,
                             warmup=6_000, measure=4_000)
            # loads+stores stalls on DRAM round trips, so the kernel must
            # both attempt and take skips here, and the cycles it removed
            # must be attributable to those takes.
            assert system.skip_attempts >= system.skips_taken > 0, kernel
            assert system.skipped_cycles >= system.skips_taken, kernel

    def test_unknown_kernel_rejected(self):
        config = baseline_config(n_threads=1, arbiter="row-fcfs")
        with pytest.raises(ValueError):
            CMPSystem(config, [loads_trace(0)], kernel="warp")


class TestLockstepLanes:
    def test_lane_driver_matches_serial_run_point(self):
        """K points interleaved in one process are bit-identical to the
        same points run serially (and under a different kernel)."""
        from repro.experiments import parallel
        from repro.experiments.parallel import SimPoint

        points = [
            SimPoint(
                config=baseline_config(n_threads=2, arbiter=arbiter),
                traces=(("loads",), ("stores",)),
                warmup=2_000,
                measure=2_000,
            )
            for arbiter in ("vpc", "fcfs", "row-fcfs", "vpc")
        ]
        serial = [parallel.run_point(p, kernel="event") for p in points]
        try:
            parallel.configure(lanes=3, kernel="batch")
            laned = parallel.run_points(points)
        finally:
            parallel.configure(lanes=1, kernel="event", jobs=1, cache=True)
        assert [asdict(r) for r in laned] == [asdict(r) for r in serial]

    def test_lanes_reject_conflicting_modes(self):
        from repro.experiments import parallel
        try:
            with pytest.raises(ValueError):
                parallel.configure(lanes=2, jobs=4)
        finally:
            parallel.configure(lanes=1, jobs=1, cache=True)

"""Cross-kernel equivalence: the skip-ahead event kernel must reproduce
the cycle-by-cycle stepper bit for bit.

Every field of :class:`~repro.system.simulator.SimulationResult` — IPCs,
instruction counts, utilizations, and all L2 counters — is compared with
exact equality (no tolerances): the event kernel only skips cycles it
can prove are no-ops, so any divergence is a bug.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict

import pytest

from repro.common.config import baseline_config
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads.microbench import loads_trace, stores_trace
from repro.workloads.profiles import HETEROGENEOUS_MIXES, spec_trace


def _run(config, trace_factories, kernel, warmup, measure, **kwargs):
    traces = [factory(tid) for tid, factory in enumerate(trace_factories)]
    system = CMPSystem(config, traces, kernel=kernel, **kwargs)
    result = run_simulation(system, warmup=warmup, measure=measure)
    return system, result


def _assert_equivalent(config, trace_factories, warmup=6_000, measure=4_000,
                       **kwargs):
    ref_system, reference = _run(config, trace_factories, "cycle", warmup,
                                 measure, **kwargs)
    system, skipped = _run(config, trace_factories, "event", warmup, measure,
                           **kwargs)
    assert asdict(skipped) == asdict(reference)
    # The cycle kernel never scans for skips; the event kernel's counters
    # must be internally consistent: it cannot take more skips than it
    # attempted, and every taken skip fast-forwarded at least one cycle.
    assert ref_system.skip_attempts == 0
    assert ref_system.skips_taken == 0
    assert ref_system.skipped_cycles == 0
    assert system.skip_attempts >= system.skips_taken
    assert system.skipped_cycles >= system.skips_taken
    if system.skipped_cycles:
        assert system.skips_taken > 0
    return system


class TestKernelEquivalence:
    def test_two_thread_loads_stores_vpc(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = _assert_equivalent(config, [loads_trace, stores_trace])
        # The test is vacuous unless the event kernel actually skipped.
        assert system.skipped_cycles > 0

    def test_two_thread_loads_stores_fcfs(self):
        config = baseline_config(n_threads=2, arbiter="fcfs")
        system = _assert_equivalent(config, [loads_trace, stores_trace],
                                    capacity_policy="lru")
        assert system.skipped_cycles > 0

    def test_four_thread_fig10_mix(self):
        names = HETEROGENEOUS_MIXES["mix1"]
        factories = [
            (lambda tid, name=name: spec_trace(name, tid)) for name in names
        ]
        config = baseline_config(n_threads=4, arbiter="vpc")
        system = _assert_equivalent(config, factories,
                                    warmup=5_000, measure=3_000)
        assert system.skipped_cycles > 0

    def test_smt_core_pair(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        _assert_equivalent(config, [loads_trace, stores_trace],
                           warmup=4_000, measure=3_000, smt_degree=2)

    def test_finite_trace_drains_identically(self):
        # A short finite trace leaves the machine idle long before the
        # interval ends — the drained tail must be skipped, not mis-stepped.
        def short(tid):
            return itertools.islice(loads_trace(tid), 200)

        config = baseline_config(n_threads=2, arbiter="vpc")
        system = _assert_equivalent(config, [short, short],
                                    warmup=1_000, measure=2_000)
        assert system.skipped_cycles > 1_000

    def test_skip_counters_account_for_fast_forwards(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system, _ = _run(config, [loads_trace, stores_trace], "event",
                         warmup=6_000, measure=4_000)
        # loads+stores stalls on DRAM round trips, so the scanner must
        # both attempt and take skips here, and the cycles it removed
        # must be attributable to those takes.
        assert system.skip_attempts >= system.skips_taken > 0
        assert system.skipped_cycles >= system.skips_taken

    def test_unknown_kernel_rejected(self):
        config = baseline_config(n_threads=1, arbiter="row-fcfs")
        with pytest.raises(ValueError):
            CMPSystem(config, [loads_trace(0)], kernel="warp")

"""Unit tests for the VPC Capacity Manager (paper Section 4.2)."""

import pytest

from repro.cache.cache_array import CacheArray
from repro.cache.replacement import SetView
from repro.core.capacity import VPCCapacityManager, ways_quota


class TestWaysQuota:
    def test_equal_quarter_shares(self):
        assert ways_quota([0.25] * 4, 32) == [8, 8, 8, 8]

    def test_floor_leaves_excess_unallocated(self):
        assert ways_quota([0.3, 0.3], 8) == [2, 2]

    def test_paper_figure1_allocation(self):
        """VPM example: 50% + 3x10% leaves 20% unallocated."""
        assert ways_quota([0.5, 0.1, 0.1, 0.1], 32) == [16, 3, 3, 3]

    def test_overallocation_rejected(self):
        with pytest.raises(ValueError):
            ways_quota([0.6, 0.6], 32)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ways_quota([-0.25, 0.5], 32)


def view(owners, lru_order=None):
    ways = len(owners)
    valid = [o >= 0 for o in owners]
    if lru_order is None:
        lru_order = list(range(ways))  # way 0 is LRU
    return SetView(ways=ways, owners=owners, valid=valid, lru_order=lru_order)


class TestCondition1:
    """Victimize the LRU line of an over-quota *other* thread."""

    def test_over_quota_other_thread_victimized(self):
        policy = VPCCapacityManager([0.5, 0.5], 4)  # quota 2 each
        # Thread 1 holds 3 ways (over), thread 0 holds 1.
        victim = policy.choose_victim(view([1, 1, 1, 0]), requester=0)
        assert victim == 0  # thread 1's LRU line
        assert policy.condition1_evictions == 1

    def test_requesters_own_excess_not_condition1(self):
        """Condition 1 applies to *another* thread only."""
        policy = VPCCapacityManager([0.5, 0.5], 4)
        # Requester 0 is over quota itself; thread 1 at quota.
        victim = policy.choose_victim(view([0, 0, 0, 1]), requester=0)
        assert victim == 0       # falls to Condition 2: own LRU line
        assert policy.condition2_evictions == 1

    def test_most_over_quota_thread_preferred(self):
        """Fairness refinement: drain the largest excess first."""
        policy = VPCCapacityManager([0.25, 0.25, 0.25, 0.25], 8)  # quota 2
        owners = [1, 1, 1, 1, 2, 2, 2, 0]   # thread1 excess 2, thread2 excess 1
        victim = policy.choose_victim(view(owners), requester=0)
        assert owners[victim] == 1
        assert victim == 0  # thread 1's LRU

    def test_at_quota_thread_protected(self):
        """A thread exactly at quota never loses a line to others."""
        policy = VPCCapacityManager([0.5, 0.5], 4)
        owners = [1, 1, 0, 0]   # both exactly at quota 2
        victim = policy.choose_victim(view(owners), requester=0)
        assert owners[victim] == 0  # Condition 2: requester's own line


class TestCondition2:
    def test_own_lru_line_when_all_at_quota(self):
        policy = VPCCapacityManager([0.5, 0.5], 4)
        owners = [0, 1, 0, 1]
        # LRU order: way1 (thread1), way0 (thread0), ...
        victim = policy.choose_victim(
            view(owners, lru_order=[1, 0, 3, 2]), requester=0
        )
        assert victim == 0  # thread 0's least-recent line, not thread 1's

    def test_fallback_global_lru_when_requester_owns_nothing(self):
        """Unallocated capacity scenario: requester has no lines and no
        thread exceeds its quota -> global LRU fallback."""
        policy = VPCCapacityManager([0.5, 0.5], 4)  # quotas 2+2
        owners = [1, 1, -1, -1]  # thread 1 exactly at quota, ways 2-3 invalid
        victim = policy.choose_victim(view(owners), requester=0)
        assert victim == 0  # global LRU among valid lines


class TestErrors:
    def test_unknown_requester(self):
        policy = VPCCapacityManager([1.0], 4)
        with pytest.raises(ValueError):
            policy.choose_victim(view([0, 0, 0, 0]), requester=3)

    def test_empty_set_rejected(self):
        policy = VPCCapacityManager([1.0], 2)
        with pytest.raises(RuntimeError):
            policy.choose_victim(view([-1, -1]), requester=0)


class TestIntegrationWithCacheArray:
    def test_quota_floor_maintained_under_pressure(self):
        """An aggressive thread can never push a quota-holding thread
        below its guaranteed ways in any set."""
        policy = VPCCapacityManager([0.5, 0.5], 8)
        array = CacheArray(sets=4, ways=8, policy=policy)
        # Thread 0 fills its half of set 0 (lines map to set = line % 4).
        for i in range(4):
            array.insert(0 + 4 * i, thread_id=0)
        # Thread 1 floods the same set far beyond capacity.
        for i in range(100):
            array.insert(4 * (10 + i), thread_id=1)
        occupancy = array.occupancy_by_thread(2)
        assert occupancy[0] == 4  # untouched: thread 1 only ate its own lines

    def test_thread_can_use_excess_when_available(self):
        """Work conservation for capacity: a lone thread may exceed its
        quota when other ways are free."""
        policy = VPCCapacityManager([0.5, 0.5], 8)
        array = CacheArray(sets=1, ways=8, policy=policy)
        for i in range(8):
            array.insert(i, thread_id=0)
        assert array.occupancy_by_thread(2)[0] == 8

    def test_excess_reclaimed_by_owner(self):
        """When the second thread arrives, it reclaims ways from the
        over-quota squatter, one eviction per insert."""
        policy = VPCCapacityManager([0.5, 0.5], 8)
        array = CacheArray(sets=1, ways=8, policy=policy)
        for i in range(8):
            array.insert(i, thread_id=0)       # thread 0 holds all 8
        for i in range(4):
            array.insert(100 + i, thread_id=1)
        occupancy = array.occupancy_by_thread(2)
        assert occupancy == [4, 4]

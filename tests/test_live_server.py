"""The live observability plane: LiveRun state, HTTP endpoints, SSE.

The contract under test is layered:

* :class:`~repro.telemetry.server.LiveRun` merges whatever the fleet
  has streamed so far exactly the way the experiment runner merges
  final snapshots (``merge_snapshots`` + ``merge_attribution``), and
  once the runner hands over its aggregate, ``/snapshot`` serves that
  exact object.
* The HTTP surface (``/metrics`` ``/healthz`` ``/snapshot``
  ``/events``) round-trips through the repo's own validators — a
  scraped exposition and a downloaded snapshot are first-class
  artifacts for ``python -m repro.telemetry.validate``.
* Observation never perturbs simulation: a point run with a live feed
  returns a bit-identical result to one run without.
* A worker that stops flushing windows flips ``/healthz`` to 503
  ``degraded`` and warns once through the progress reporter.
"""

from __future__ import annotations

import http.client
import io
import json
import urllib.error
import urllib.request

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments import parallel
from repro.experiments.parallel import SimPoint, run_point, run_points
from repro.telemetry import (
    LiveRun,
    ProgressReporter,
    TelemetryServer,
    merge_attribution,
    merge_snapshots,
    to_prometheus,
)
from repro.telemetry.validate import (
    main as validate_main,
    validate_metrics_json,
    validate_prometheus,
)

WINDOW = 500


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    parallel.configure(jobs=1, cache=True)
    yield
    parallel.configure(jobs=1, cache=True)


def _point(**overrides) -> SimPoint:
    params = dict(
        config=baseline_config(n_threads=2, arbiter="vpc",
                               vpc=VPCAllocation.equal(2)),
        traces=(("loads",), ("stores",)),
        warmup=500,
        measure=1_500,
    )
    params.update(overrides)
    return SimPoint(**params)


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def _get(url: str, timeout: float = 5.0):
    """GET returning (status, headers, body) without raising on 503."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


# ---------------------------------------------------------------------- #
# LiveRun state machine.
# ---------------------------------------------------------------------- #

def test_merged_matches_runner_merge():
    """The live merge is the same function composition the experiment
    runner applies to drained snapshots — same bytes, same order."""
    parallel.configure(jobs=1, metrics=WINDOW, live=LiveRun())
    live = parallel.configured_live()
    results = run_points([_point(), _point(traces=(("spec", "art"),
                                                   ("spec", "mcf")))])
    snapshots = [result.metrics for result in results]
    expected = merge_snapshots(snapshots)
    expected["attribution"] = merge_attribution(
        [snap.get("attribution") for snap in snapshots]
    )
    assert live.merged() == expected
    assert json.dumps(live.merged(), sort_keys=True) == \
        json.dumps(expected, sort_keys=True)


def test_finish_run_serves_exact_aggregate():
    live = LiveRun()
    live.begin_run("fig-test")
    live.begin_batch(1)
    aggregate = {"schema": "repro.metrics-aggregate/1", "points": 1,
                 "totals": {}, "per_point": [], "marker": object()}
    live.finish_run(aggregate)
    assert live.merged() is aggregate
    assert live.health()["status"] == "finished"


def test_mid_run_windows_move_the_merge():
    """A window flush changes the merged snapshot before the point
    completes — the scrape-to-scrape freshness /metrics promises."""
    parallel.configure(jobs=1, metrics=WINDOW, live=LiveRun())
    live = parallel.configured_live()
    merges = []

    class Tap:
        def put(self, msg):
            live.put(msg)
            if msg[0] == "window":
                merges.append(
                    live.merged()["totals"]["measured_cycles"])

    base = live.begin_batch(1)
    run_point(_point(), metrics_window=WINDOW, feed=Tap(), index=base)
    assert len(merges) >= 2
    assert merges[-1] > merges[0]  # cycles accumulate across scrapes
    assert len(set(merges)) > 1


def test_begin_run_resets_state():
    live = LiveRun()
    live.begin_run("one")
    live.begin_batch(3)
    live.point_done(0, None)
    live.begin_run("two")
    health = live.health()
    assert health["run"] == "two"
    assert health["points"] == {"done": 0, "total": 0}
    assert health["status"] == "idle"


def test_feed_does_not_perturb_simulation():
    """Observation-only contract: the simulated result is bit-identical
    with and without a live feed attached."""
    plain = run_point(_point(), metrics_window=WINDOW)
    live = LiveRun()
    live.begin_batch(1)
    observed = run_point(_point(), metrics_window=WINDOW, feed=live,
                         index=0)
    assert observed == plain


# ---------------------------------------------------------------------- #
# Staleness detection.
# ---------------------------------------------------------------------- #

def test_stale_worker_degrades_health_and_warns_once():
    """A worker that stops flushing windows past the threshold flips
    health to degraded and produces exactly one progress warning."""
    clock = _FakeClock()
    stream = io.StringIO()
    live = LiveRun(stale_after=5.0, progress=ProgressReporter(stream),
                   clock=clock)
    live.begin_run("hang-test")
    live.begin_batch(2)
    live.put(("start", 0, 111))   # the worker that will hang
    live.put(("start", 1, 222))
    clock.now += 3.0
    live.put(("hb", 222))         # worker 222 stays live
    clock.now += 3.0              # 111 is now 6s quiet; 222 only 3s
    assert live.health()["status"] == "degraded"
    assert live.health()["stale_workers"] == [111]
    assert [worker for worker, _ in live.check_stale()] == [111]
    live.check_stale()            # second poll must not re-warn
    warnings = stream.getvalue()
    assert warnings.count("WARNING") == 1
    assert "worker 111" in warnings and "stale" in warnings
    # A fresh heartbeat clears the flag and re-arms the warning.
    live.put(("hb", 111))
    assert live.health()["status"] == "running"
    clock.now += 6.0
    live.put(("hb", 222))
    live.check_stale()
    assert stream.getvalue().count("WARNING") == 2


def test_stale_ignored_once_finished():
    clock = _FakeClock()
    live = LiveRun(stale_after=5.0, clock=clock)
    live.begin_batch(1)
    live.put(("start", 0, 111))
    clock.now += 60.0
    live.point_done(0, None)
    assert live.stale_workers() == []
    assert live.health()["status"] == "finished"


def test_stale_worker_returns_503_over_http():
    clock = _FakeClock()
    live = LiveRun(stale_after=5.0, clock=clock)
    live.begin_run("hang-test")
    live.begin_batch(1)
    live.put(("start", 0, 111))
    clock.now += 10.0
    with TelemetryServer(live, port=0) as server:
        status, _, body = _get(f"{server.url}/healthz")
    health = json.loads(body)
    assert status == 503
    assert health["status"] == "degraded"
    assert health["stale_workers"] == [111]
    assert health["workers"]["111"]["heartbeat_age_s"] == pytest.approx(10.0)


# ---------------------------------------------------------------------- #
# HTTP surface over a real (fast) run.
# ---------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def served_run():
    """One fast observed point behind a live server, shared across the
    HTTP tests (module-scoped: the run is the expensive part)."""
    parallel.configure(jobs=1, metrics=WINDOW, live=LiveRun())
    live = parallel.configured_live()
    live.begin_run("fast-fig4-point")
    results = run_points([SimPoint(
        config=baseline_config(n_threads=2, arbiter="vpc",
                               vpc=VPCAllocation.equal(2)),
        traces=(("loads",), ("stores",)),
        warmup=500,
        measure=1_500,
    )])
    snapshots = [result.metrics for result in results]
    aggregate = merge_snapshots(snapshots)
    aggregate["attribution"] = merge_attribution(
        [snap.get("attribution") for snap in snapshots]
    )
    live.finish_run(aggregate)
    with TelemetryServer(live, port=0) as server:
        yield server, aggregate
    parallel.configure(jobs=1, cache=True)


def test_metrics_endpoint_is_valid_exposition(served_run):
    server, _ = served_run
    status, headers, body = _get(f"{server.url}/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = body.decode()
    assert validate_prometheus(text) == []
    assert "repro_run_points 1" in text
    assert 'repro_thread_ipc{point="0",thread="0"}' in text


def test_snapshot_endpoint_is_exact_aggregate(served_run):
    server, aggregate = served_run
    status, headers, body = _get(f"{server.url}/snapshot")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    payload = json.loads(body)
    assert payload == json.loads(json.dumps(aggregate))
    assert validate_metrics_json(payload) == []


def test_healthz_reports_finished(served_run):
    server, _ = served_run
    status, _, body = _get(f"{server.url}/healthz")
    health = json.loads(body)
    assert status == 200
    assert health["status"] == "finished"
    assert health["points"] == {"done": 1, "total": 1}
    assert health["workers"]  # at least the serial in-process worker


def test_unknown_path_404s(served_run):
    server, _ = served_run
    status, _, body = _get(f"{server.url}/nope")
    assert status == 404
    assert b"/metrics" in body


def test_events_streams_a_window_event(served_run):
    """A late /events subscriber still receives a window event — the
    replay priming the CI smoke job relies on."""
    server, _ = served_run
    connection = http.client.HTTPConnection(server.host, server.port,
                                            timeout=5.0)
    try:
        connection.request("GET", "/events")
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"
        event_line = response.fp.readline().decode().strip()
        data_line = response.fp.readline().decode().strip()
    finally:
        connection.close()
    assert event_line == "event: window"
    payload = json.loads(data_line[len("data: "):])
    assert payload["replay"] is True
    assert payload["snapshot"]["schema"] == "repro.metrics/1"


def test_scrape_round_trips_through_validate_cli(served_run, tmp_path,
                                                 capsys):
    """Satellite: artifacts scraped off the live server are accepted by
    the validate CLI — the exposition body via Prometheus-text
    auto-detection (no .prom suffix, no flag), the snapshot JSON via
    its schema tag (which also re-verifies attribution conservation)."""
    server, _ = served_run
    _, _, prom_body = _get(f"{server.url}/metrics")
    _, _, snap_body = _get(f"{server.url}/snapshot")
    scrape = tmp_path / "scraped-metrics.txt"   # deliberately not .prom
    scrape.write_bytes(prom_body)
    snapshot = tmp_path / "snapshot.json"
    snapshot.write_bytes(snap_body)
    assert validate_main([str(scrape)]) == 0
    assert "exposition samples" in capsys.readouterr().out
    assert validate_main([str(snapshot)]) == 0
    assert "metric points" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# to_prometheus over aggregates (the /metrics body builder).
# ---------------------------------------------------------------------- #

def test_prometheus_aggregate_labels_points():
    parallel.configure(jobs=1, metrics=WINDOW, live=LiveRun())
    live = parallel.configured_live()
    run_points([_point(), _point(traces=(("spec", "art"),
                                         ("spec", "mcf")))])
    text = to_prometheus(live.merged())
    assert validate_prometheus(text) == []
    assert "repro_run_points 2" in text
    assert 'point="0"' in text and 'point="1"' in text
    # Families are declared once even with per-point samples.
    assert text.count("# TYPE repro_thread_ipc gauge") == 1

"""Property-based tests: the FQ scheduler honours its guarantees on
arbitrary arrival patterns (hypothesis-driven)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fairqueue.bounds import audit_all
from repro.fairqueue.scheduler import Arrival, FairQueueScheduler, service_by_flow


@st.composite
def workloads(draw):
    """(shares, arrivals): a feasible allocation and a random trace."""
    n_flows = draw(st.integers(min_value=1, max_value=4))
    raw = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n_flows, max_size=n_flows,
        )
    )
    total = sum(raw)
    if total > 0:
        shares = [r / max(total, 1.0) for r in raw]
    else:
        shares = [1.0 / n_flows] * n_flows
    n_packets = draw(st.integers(min_value=1, max_value=40))
    arrivals = []
    clock = 0.0
    for _ in range(n_packets):
        clock += draw(st.floats(min_value=0.0, max_value=5.0))
        flow = draw(st.integers(min_value=0, max_value=n_flows - 1))
        length = draw(st.floats(min_value=0.25, max_value=4.0))
        arrivals.append(Arrival(clock, flow, length))
    return shares, arrivals


@settings(max_examples=60, deadline=None)
@given(workloads())
def test_all_guarantees_hold_on_random_traces(workload):
    """Deadline, bandwidth, and work-conservation audits all pass."""
    shares, arrivals = workload
    records = FairQueueScheduler(shares).run(arrivals)
    results = audit_all(arrivals, records, shares)
    assert not results["deadline"], results["deadline"]
    assert not results["bandwidth"], results["bandwidth"]
    assert not results["work_conservation"], results["work_conservation"]


@settings(max_examples=60, deadline=None)
@given(workloads())
def test_every_packet_served_exactly_once(workload):
    shares, arrivals = workload
    records = FairQueueScheduler(shares).run(arrivals)
    assert len(records) == len(arrivals)
    assert math.isclose(
        sum(r.length for r in records), sum(a.length for a in arrivals)
    )


@settings(max_examples=60, deadline=None)
@given(workloads())
def test_server_never_overlaps(workload):
    """The link serves one packet at a time."""
    shares, arrivals = workload
    records = sorted(
        FairQueueScheduler(shares).run(arrivals), key=lambda r: r.start
    )
    for earlier, later in zip(records, records[1:]):
        assert later.start >= earlier.finish - 1e-9


@settings(max_examples=60, deadline=None)
@given(workloads())
def test_per_flow_fifo_service(workload):
    """Within one flow, packets complete in arrival order."""
    shares, arrivals = workload
    records = FairQueueScheduler(shares).run(arrivals)
    for flow_id in range(len(shares)):
        finishes = [r.finish for r in records if r.flow_id == flow_id]
        assert finishes == sorted(finishes)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=20, max_value=60),
)
def test_saturated_equal_shares_equalize_service(n_flows, n_packets):
    """All flows permanently backlogged with equal shares -> equal service
    in any prefix (within one packet per flow)."""
    shares = [1.0 / n_flows] * n_flows
    arrivals = [
        Arrival(0.0, f, 1.0) for f in range(n_flows) for _ in range(n_packets)
    ]
    records = FairQueueScheduler(shares).run(arrivals)
    horizon = float(n_packets)  # every flow still backlogged until here
    window = [r for r in records if r.finish <= horizon]
    totals = service_by_flow(window)
    values = [totals.get(f, 0.0) for f in range(n_flows)]
    assert max(values) - min(values) <= 1.0 + 1e-9

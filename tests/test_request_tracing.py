"""Request-scope tracing (ISSUE 9): segment conservation, kernel
identity, and the tail-latency surfaces.

The contract under test (docs/ARCHITECTURE.md "Request tracing"):
every completed demand load's end-to-end latency decomposes into
per-stage segments that sum *exactly* to its issue-to-critical-word
latency — on all three kernels, which must produce byte-identical
documents because the hooks fire at identical (thread, cycle) points.
On top of the invariant sit the surfaces: exact streaming quantiles
that match the list-based ``analysis.latency`` convention, the bounded
request log whose summaries never truncate, declarative SLO rules and
the ``slo_burn`` alert signal, the validate CLI, the run-history p99
slice, and the fig10 golden — VPC shrinks the L2-arbiter-queue
segments of the worst exemplars vs. FCFS, and ``/snapshot`` serves the
exact aggregate written to disk.
"""

from __future__ import annotations

import json
import urllib.request
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.latency import LatencySummary, load_latency
from repro.common.config import baseline_config
from repro.experiments import parallel
from repro.experiments.runner import run_experiment
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.telemetry import LiveRun, RequestLogSink, TelemetryServer
from repro.telemetry.requests import (
    SEGMENTS,
    SLORule,
    StreamingLatencies,
    exact_quantile,
    load_slo,
    render_requests,
    slo_burn,
    verify_requests,
    write_requests,
)
from repro.workloads.profiles import spec_trace

KERNELS = ("cycle", "event", "batch")
WORKLOADS = ("art", "mcf", "mesa", "equake", "swim", "ammp", "crafty")

# Positional indices of the L2-arbiter-queue segments in SEGMENTS.
_L2_QUEUE = tuple(SEGMENTS.index(name) for name in
                  ("l2_tag_queue", "l2_data_queue", "l2_bus_queue"))


def _traced_run(names, arbiter, kernel, exemplar_k=8, slo_rules=(),
                warmup=800, measure=1_200, record_requests=False):
    config = baseline_config(n_threads=len(names), arbiter=arbiter)
    traces = [spec_trace(name, tid) for tid, name in enumerate(names)]
    system = CMPSystem(config, traces, kernel=kernel,
                       record_requests=record_requests)
    system.attach_request_tracing(exemplar_k=exemplar_k,
                                  slo_rules=tuple(slo_rules))
    result = run_simulation(system, warmup=warmup, measure=measure)
    return system, result


@settings(max_examples=6, deadline=None)
@given(
    names=st.lists(st.sampled_from(WORKLOADS), min_size=2, max_size=4),
    arbiter=st.sampled_from(["fcfs", "vpc"]),
)
def test_conservation_and_kernel_identity(names, arbiter):
    """Random mixes x {fcfs, vpc} x all three kernels: every exemplar's
    segments sum exactly to its latency, the document re-validates, and
    the skipping kernels reproduce the cycle kernel's quantiles and
    exemplars byte for byte."""
    docs = {}
    for kernel in KERNELS:
        _, result = _traced_run(names, arbiter, kernel)
        doc = result.requests
        assert doc is not None
        assert verify_requests(doc) == [], (kernel, verify_requests(doc))
        for row in doc["threads"]:
            for exemplar in row["exemplars"]:
                assert sum(exemplar["segments"]) == exemplar["latency"]
        docs[kernel] = json.dumps(doc, sort_keys=True)
    assert docs["event"] == docs["cycle"]
    assert docs["batch"] == docs["cycle"]


def test_every_load_conserves_and_matches_the_request_log():
    """With an exemplar reservoir wider than the run, every completed
    demand load is an exemplar — each one's segments must sum to its
    latency, and the retired-load latencies in the request log must be
    a sub-multiset of what the tracer saw (retirement follows the
    critical word, so the tracer can only know *more* loads)."""
    system, result = _traced_run(
        ["art", "mcf"], "vpc", "event", exemplar_k=50_000,
        warmup=0, measure=2_000, record_requests=True,
    )
    doc = result.requests
    traced: Counter = Counter()
    for tid, row in enumerate(doc["threads"]):
        assert len(row["exemplars"]) == row["loads"]
        for exemplar in row["exemplars"]:
            assert sum(exemplar["segments"]) == exemplar["latency"]
            traced[(tid, exemplar["latency"])] += 1
    logged: Counter = Counter()
    for request in system.request_log:
        if request.is_prefetch:
            continue
        latency = load_latency(request)
        if latency is not None:
            logged[(request.thread_id, latency)] += 1
    assert sum(logged.values()) > 0
    assert not logged - traced  # logged ⊆ traced


def test_streaming_quantiles_match_list_convention():
    """The tracer's exact streaming quantiles must agree with the
    sorted-list convention ``analysis.latency.LatencySummary`` uses —
    checked against the full population (reservoir covers every load)."""
    _, result = _traced_run(["art", "mcf", "swim"], "fcfs", "event",
                            exemplar_k=50_000, warmup=0, measure=2_000)
    for row in result.requests["threads"]:
        if not row["loads"]:
            continue
        samples = [ex["latency"] for ex in row["exemplars"]]
        summary = LatencySummary.of(samples)
        assert row["quantiles"]["p50"] == summary.p50
        assert row["quantiles"]["p95"] == summary.p95
        assert row["quantiles"]["p99"] == summary.p99
        assert row["max"] == summary.maximum


def test_exact_quantile_and_reservoir_units():
    stats = StreamingLatencies(exemplar_k=2)
    for latency in (10, 30, 20, 30, 5):
        stats.add(0, latency, {"seq": latency, "line": 0,
                               "issued_cycle": latency, "latency": latency})
    assert stats.loads(0) == 5
    assert stats.maximum(0) == 30
    counts = {10: 1, 30: 2, 20: 1, 5: 1}
    assert exact_quantile(counts, 5, 0.5) == 20
    assert exact_quantile(counts, 5, 0.99) == 30
    # Worst-k reservoir: the two 30s survive; ties keep the earlier.
    kept = stats.exemplars(0)
    assert [ex["latency"] for ex in kept] == [30, 30]
    assert stats.attainment(0, 25) == pytest.approx(3 / 5)


def test_bounded_request_log_keeps_summaries_exact():
    """Satellite 1: the log keeps the first ``capacity`` retirements
    and counts the rest, while the streaming summary still covers every
    demand load — so tail quantiles never truncate."""
    config = baseline_config(n_threads=2, arbiter="fcfs")
    traces = [spec_trace("art", 0), spec_trace("mcf", 1)]
    system = CMPSystem(config, traces, record_requests=True)
    bounded = system.telemetry.attach(RequestLogSink(capacity=3))
    run_simulation(system, warmup=0, measure=2_000)
    full = system.request_log  # default capacity: nothing dropped here
    demand = [r for r in full
              if not r.is_prefetch and load_latency(r) is not None]
    assert len(full) > 3
    assert bounded.dropped == len(full) - 3
    assert bounded.requests == full[:3]
    for tid in bounded.summary.threads():
        latencies = sorted(load_latency(r) for r in demand
                           if r.thread_id == tid)
        assert bounded.summary.loads(tid) == len(latencies)
        assert bounded.summary.maximum(tid) == latencies[-1]


def test_rejects_smt():
    config = baseline_config(n_threads=2, arbiter="vpc")
    traces = [spec_trace("art", 0), spec_trace("mcf", 1)]
    system = CMPSystem(config, traces, smt_degree=2)
    with pytest.raises(ValueError, match="smt_degree"):
        system.attach_request_tracing()


# --------------------------------------------------------------------- #
# SLO rules, burn rate, rendering, validation.
# --------------------------------------------------------------------- #

def test_load_slo_shorthand_and_files(tmp_path):
    (rule,) = load_slo("150")
    assert rule.name == "p99-under-150"
    assert rule.threshold_cycles == 150
    assert rule.target == 0.99
    spec = tmp_path / "slo.json"
    spec.write_text(json.dumps({"slos": [
        {"name": "interactive", "threshold_cycles": 80, "target": 0.95},
        {"name": "t1-only", "threshold_cycles": 200, "thread": 1},
    ]}))
    rules = load_slo(str(spec))
    assert [r.name for r in rules] == ["interactive", "t1-only"]
    assert rules[1].thread == 1
    with pytest.raises((OSError, ValueError)):
        load_slo(str(tmp_path / "absent-and-not-an-int"))


def test_slo_attainment_burn_and_rendering():
    rules = (SLORule("tight", 1, target=0.99),
             SLORule("loose", 10_000_000, target=0.5))
    _, result = _traced_run(["art", "mcf"], "vpc", "event",
                            slo_rules=rules)
    doc = result.requests
    assert verify_requests(doc) == []
    by_name = {rule["name"]: rule for rule in doc["slo"]["rules"]}
    # Nothing completes in one cycle; everything beats ten million.
    assert all(a == 0.0 for a in by_name["tight"]["attainment"])
    assert all(a == 1.0 for a in by_name["loose"]["attainment"])
    burn = slo_burn(doc)
    assert burn == pytest.approx((1 - 0.0) / (1 - 0.99))
    assert slo_burn(None) is None
    text = "\n".join(render_requests(doc))
    assert "MISSED" in text and "met" in text
    assert "worst exemplar per thread" in text


def test_slo_burn_alert_signal_fires():
    from repro.telemetry.alerts import AlertEngine, AlertRule
    rules = (SLORule("tight", 1, target=0.99),)
    _, result = _traced_run(["art", "mcf"], "fcfs", "event",
                            slo_rules=rules)
    engine = AlertEngine([AlertRule(name="burning", signal="slo_burn",
                                    threshold=1.0, op=">=")])
    emitted = engine.observe(
        "window", {"snapshot": {"requests": result.requests}})
    assert [e["state"] for e in emitted] == ["firing"]
    # A window with no requests document leaves the signal unevaluated.
    assert engine.observe("window", {"snapshot": {}}) == []


def test_validate_cli_accepts_docs_and_rejects_broken_segments(tmp_path):
    from repro.telemetry.validate import main as validate_main
    _, result = _traced_run(["art", "mcf"], "vpc", "event")
    doc = result.requests
    path = tmp_path / "run.requests.json"
    write_requests(str(path), doc)
    assert validate_main([str(path)]) == 0
    assert validate_main(["--requests", str(path)]) == 0
    # The experiment runner's artifact shape: a list of documents.
    listed = tmp_path / "fig.requests.json"
    listed.write_text(json.dumps([doc, doc]) + "\n")
    assert validate_main([str(listed)]) == 0
    # Break conservation in one exemplar; validation must catch it.
    broken = json.loads(json.dumps(doc))
    for row in broken["threads"]:
        if row["exemplars"]:
            row["exemplars"][0]["segments"][0] += 1
            break
    bad = tmp_path / "broken.requests.json"
    bad.write_text(json.dumps(broken) + "\n")
    assert validate_main([str(bad)]) == 1


# --------------------------------------------------------------------- #
# fig10 golden: requests ride the aggregate, /snapshot byte identity,
# report cards, and the paper's claim at the exemplar level.
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def fig10_traced(tmp_path_factory):
    """One fast fig10 sweep with request tracing + an SLO, served live
    — the expensive part, shared by the golden tests below."""
    parallel.configure(jobs=1, metrics=500, live=LiveRun(),
                       requests=True,
                       slo=(SLORule("p99-under-400", 400),))
    live = parallel.configured_live()
    try:
        result = run_experiment("fig10", fast=True)
        disk = tmp_path_factory.mktemp("fig10r") / "fig10.metrics.json"
        disk.write_text(json.dumps(result.metrics, indent=2) + "\n")
        with TelemetryServer(live, port=0) as server:
            with urllib.request.urlopen(f"{server.url}/snapshot",
                                        timeout=10) as response:
                scraped = json.loads(response.read())
        yield result, json.loads(disk.read_text()), scraped
    finally:
        parallel.configure(jobs=1, cache=True)


def test_fig10_documents_validate_and_snapshot_matches_disk(fig10_traced):
    _, disk, scraped = fig10_traced
    assert scraped == disk
    traced = 0
    for snapshot in disk["per_point"]:
        doc = snapshot.get("requests")
        if doc is None:
            continue
        assert verify_requests(doc) == []
        assert doc["n_threads"] == snapshot["n_threads"]
        traced += 1
    assert traced >= 2
    # The quantiles served mid-run and written to disk are the same
    # bytes — finish_run hands /snapshot the exact disk aggregate.
    disk_q = [snap["requests"]["threads"]
              for snap in disk["per_point"] if snap.get("requests")]
    snap_q = [snap["requests"]["threads"]
              for snap in scraped["per_point"] if snap.get("requests")]
    assert json.dumps(disk_q, sort_keys=True) == \
        json.dumps(snap_q, sort_keys=True)


def test_fig10_report_cards_show_p99_and_slo(fig10_traced):
    from repro.telemetry import build_report_card, merge_report_cards
    from repro.telemetry.report import render_fleet_card, render_report_card
    _, disk, _ = fig10_traced
    cards = [
        build_report_card(n_threads=snap["n_threads"],
                          arbiter=snap.get("arbiter", "?"), metrics=snap)
        for snap in disk["per_point"]
    ]
    carded = [card for card in cards
              if any("p99_latency" in row for row in card["threads"])]
    assert carded
    rendered = render_report_card(carded[0])
    assert "p99(cyc)" in rendered and "slo%" in rendered
    fleet = merge_report_cards(cards, label="fig10")
    assert fleet["worst_p99_latency"] > 0
    assert 0.0 <= fleet["worst_slo_attainment"] <= 1.0
    fleet_text = render_fleet_card(fleet)
    assert "worst p99 load latency" in fleet_text
    assert "worst SLO attainment" in fleet_text


def test_fig10_vpc_shrinks_exemplar_l2_queueing(fig10_traced):
    """The paper's mechanism at the request level: VPC's arbiter bounds
    each thread's share of L2 bandwidth, so the L2-arbiter-queue
    segments of the worst exemplars shrink vs. FCFS."""
    _, disk, _ = fig10_traced
    queue_per_exemplar = {}
    for snapshot in disk["per_point"]:
        doc = snapshot.get("requests")
        if doc is None or snapshot["n_threads"] < 2:
            continue
        arbiter = snapshot.get("arbiter")
        totals = queue_per_exemplar.setdefault(arbiter, [0, 0])
        for row in doc["threads"]:
            for exemplar in row["exemplars"]:
                totals[0] += sum(exemplar["segments"][i] for i in _L2_QUEUE)
                totals[1] += 1
    assert {"fcfs", "vpc"} <= set(queue_per_exemplar)
    fcfs = queue_per_exemplar["fcfs"]
    vpc = queue_per_exemplar["vpc"]
    assert vpc[1] and fcfs[1]
    assert vpc[0] / vpc[1] < fcfs[0] / fcfs[1]


def test_fig10_history_ledger_carries_p99(fig10_traced, tmp_path):
    from repro.telemetry.history import (
        append_entry,
        build_entry,
        diff_entries,
        read_history,
        render_diff,
    )
    _, disk, _ = fig10_traced
    ledger = tmp_path / "ledger.jsonl"
    append_entry(ledger, build_entry("fig10", metrics=disk))
    append_entry(ledger, build_entry("fig10-b", metrics=disk))
    entries = read_history(ledger)
    assert any(snap.get("request_p99")
               for snap in entries[0]["per_point"])
    diff = diff_entries(entries[0], entries[1])
    assert "p99" in diff
    for group in diff["p99"].values():
        assert all(d in (0, None) for d in group["delta"])
    assert any("p99 load latency" in line for line in render_diff(diff))


def test_fig10_prometheus_and_dashboard_surfaces(fig10_traced):
    from repro.telemetry.dashboard import render
    from repro.telemetry.metrics import to_prometheus
    _, disk, _ = fig10_traced
    traced = next(snap for snap in disk["per_point"]
                  if snap.get("requests"))
    text = to_prometheus(traced)
    assert "repro_request_latency_cycles" in text
    assert 'quantile="p99"' in text
    assert "repro_slo_attainment" in text
    health = {"status": "finished", "run": "fig10",
              "points": {"done": disk["points"], "total": disk["points"]}}
    assert "p99(cyc)" in render(disk, health)

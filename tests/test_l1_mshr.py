"""Unit tests for the write-through L1 and the MSHR file."""

import pytest

from repro.cache.l1 import L1Cache
from repro.cache.mshr import MSHRFile
from repro.common.config import L1Config


class TestL1:
    def test_load_miss_then_fill_then_hit(self):
        l1 = L1Cache(L1Config())
        assert not l1.load(0x1000)
        l1.fill(0x1000)
        assert l1.load(0x1000)
        assert l1.load_misses == 1 and l1.load_hits == 1

    def test_miss_does_not_allocate(self):
        """In-flight misses must not appear cached before the fill."""
        l1 = L1Cache(L1Config())
        l1.load(0x2000)
        assert not l1.load(0x2000)

    def test_store_no_write_allocate(self):
        l1 = L1Cache(L1Config())
        assert not l1.store(0x3000)
        assert not l1.load(0x3000)   # still absent
        assert l1.store_misses == 1

    def test_store_hit_counts(self):
        l1 = L1Cache(L1Config())
        l1.fill(0x4000)
        assert l1.store(0x4000)
        assert l1.store_hits == 1

    def test_same_line_words_hit(self):
        l1 = L1Cache(L1Config())
        l1.fill(0x5000)
        assert l1.load(0x5000 + 60)

    def test_streaming_exceeds_capacity(self):
        """A 32KB stream through a 16KB L1 misses continuously (the
        microbenchmark design from Table 2)."""
        config = L1Config()
        l1 = L1Cache(config)
        lines = 2 * config.size_bytes // config.line_size
        for sweep in range(2):
            for i in range(lines):
                addr = i * config.line_size
                if not l1.load(addr):
                    l1.fill(addr)
        # Second sweep should still miss everywhere (LRU streaming).
        assert l1.load_misses == 2 * lines


class TestMSHR:
    def test_primary_and_secondary(self):
        mshrs = MSHRFile(4)
        assert mshrs.allocate(10, seq=1) is True
        assert mshrs.allocate(10, seq=2) is False
        assert mshrs.primary_misses == 1
        assert mshrs.secondary_misses == 1

    def test_complete_returns_all_waiters(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(10, 1)
        mshrs.allocate(10, 2)
        mshrs.allocate(10, 3)
        entry = mshrs.complete(10)
        assert [entry.primary_seq] + entry.waiters == [1, 2, 3]
        assert 10 not in mshrs

    def test_capacity_enforced(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(1, 0)
        mshrs.allocate(2, 1)
        assert not mshrs.can_allocate(3)
        assert mshrs.can_allocate(1)  # coalescing still allowed
        with pytest.raises(RuntimeError):
            mshrs.allocate(3, 2)

    def test_complete_unknown_line(self):
        with pytest.raises(KeyError):
            MSHRFile(1).complete(9)

    def test_outstanding_count(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 0)
        mshrs.allocate(2, 1)
        mshrs.allocate(1, 2)   # secondary: no new entry
        assert mshrs.outstanding == 2

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_prefetch_entry_marks_useful_on_demand_join(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(10, seq=-1, is_prefetch=True)
        mshrs.allocate(10, seq=7)           # demand coalesces
        entry = mshrs.complete(10)
        assert entry.is_prefetch and entry.demand_joined

    def test_prefetch_entry_without_demand(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(10, seq=-1, is_prefetch=True)
        assert not mshrs.complete(10).demand_joined

"""The federated metrics plane: merge_fleet, aggregator, fleet HTTP.

The contract under test:

* :func:`merge_fleet` flattens per-worker aggregates (worker order,
  each worker's point order preserved) through the same
  ``merge_snapshots``/``merge_attribution`` composition a single big
  run uses — and the served fleet ``/snapshot`` is *byte-identical* to
  that function applied offline to the scraped per-worker snapshots
  (the PR's acceptance criterion).
* The fleet health rollup is worst-of: one unreachable or degraded
  worker degrades the fleet (503); all-finished reports finished.
* The multiplexed SSE stream labels every event with its worker, primes
  late subscribers with each worker's last event (``replay: true``),
  and survives a worker restart mid-stream (reconnect with backoff).
* A fleet-level alert engine observes the multiplexed stream and the
  health polls; its emissions ride the fleet stream as ``alert``
  events and are served at ``/alerts``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments import parallel
from repro.experiments.parallel import SimPoint, run_points
from repro.telemetry import (
    FleetAggregator,
    FleetServer,
    LiveRun,
    TelemetryServer,
    merge_attribution,
    merge_fleet,
    merge_snapshots,
)
from repro.telemetry.alerts import AlertEngine, AlertRule
from repro.telemetry.validate import (
    validate_alerts,
    validate_metrics_json,
    validate_prometheus,
)

WINDOW = 500


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    parallel.configure(jobs=1, cache=True)
    yield
    parallel.configure(jobs=1, cache=True)


def _point(**overrides) -> SimPoint:
    params = dict(
        config=baseline_config(n_threads=2, arbiter="vpc",
                               vpc=VPCAllocation.equal(2)),
        traces=(("loads",), ("stores",)),
        warmup=500,
        measure=1_500,
    )
    params.update(overrides)
    return SimPoint(**params)


def _finished_live(label: str, points) -> LiveRun:
    """A LiveRun that ran the given points and serves their aggregate."""
    live = LiveRun()
    parallel.configure(jobs=1, cache=False, metrics=WINDOW, live=live)
    live.begin_run(label, kernel="event")
    results = run_points(points)
    snapshots = [result.metrics for result in results]
    aggregate = merge_snapshots(snapshots)
    aggregate["attribution"] = merge_attribution(
        [snap.get("attribution") for snap in snapshots])
    aggregate["kernel"] = "event"
    live.finish_run(aggregate)
    return live


def _get(url: str, timeout: float = 5.0):
    """GET returning (status, body) without raising on 503."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _wait_for(predicate, timeout: float = 10.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------- #
# merge_fleet (offline).
# ---------------------------------------------------------------------- #

def test_merge_fleet_flattens_in_worker_order():
    live_a = _finished_live("worker-a", [_point()])
    live_b = _finished_live("worker-b", [_point(traces=(("spec", "art"),
                                                        ("spec", "mcf")))])
    snap_a, snap_b = live_a.merged(), live_b.merged()
    fleet = merge_fleet([snap_a, snap_b])
    expected = merge_snapshots(snap_a["per_point"] + snap_b["per_point"])
    assert fleet["points"] == 2
    assert fleet["per_point"] == expected["per_point"]
    assert fleet["totals"] == expected["totals"]
    assert fleet["kernel"] == "event"  # unanimous fleet
    assert validate_metrics_json(fleet) == []


def test_merge_fleet_skips_unreachable_and_mixed_kernels():
    live = _finished_live("worker-a", [_point()])
    snapshot = live.merged()
    fleet = merge_fleet([None, snapshot, None])
    assert fleet["points"] == 1
    other = json.loads(json.dumps(snapshot))
    other["kernel"] = "cycle"
    mixed = merge_fleet([snapshot, other])
    assert "kernel" not in mixed  # no single truthful value


# ---------------------------------------------------------------------- #
# The aggregator over live worker servers.
# ---------------------------------------------------------------------- #

@pytest.fixture()
def fleet_of_two():
    """Two finished worker servers behind one aggregator + fleet server."""
    live_a = _finished_live("worker-a", [_point()])
    live_b = _finished_live("worker-b", [_point(traces=(("spec", "art"),
                                                        ("spec", "mcf")))])
    with TelemetryServer(live_a, port=0) as worker_a, \
            TelemetryServer(live_b, port=0) as worker_b:
        fleet = FleetAggregator([worker_a.url, worker_b.url], timeout=2.0)
        fleet.refresh()
        with FleetServer(fleet, port=0) as server:
            yield server, fleet, (worker_a, worker_b)


def test_fleet_snapshot_byte_identical_to_offline_merge(fleet_of_two):
    """The acceptance criterion: GET /snapshot off the fleet server is
    byte-for-byte the offline merge over the scraped worker snapshots."""
    server, _, workers = fleet_of_two
    scraped = []
    for worker in workers:
        status, body = _get(f"{worker.url}/snapshot")
        assert status == 200
        scraped.append(json.loads(body))
    status, fleet_bytes = _get(f"{server.url}/snapshot")
    assert status == 200
    expected = (json.dumps(merge_fleet(scraped)) + "\n").encode()
    assert fleet_bytes == expected


def test_fleet_health_rollup_finished(fleet_of_two):
    server, fleet, _ = fleet_of_two
    status, body = _get(f"{server.url}/fleet/healthz")
    health = json.loads(body)
    assert status == 200
    assert health["status"] == "finished"
    assert health["n_workers"] == 2
    assert health["unreachable_workers"] == []
    assert {entry["status"] for entry in health["workers"].values()} == \
        {"finished"}
    # /healthz is an alias, 404s advertise the surface.
    assert _get(f"{server.url}/healthz")[0] == 200
    status, body = _get(f"{server.url}/nope")
    assert status == 404 and b"/fleet/healthz" in body


def test_fleet_metrics_exposition(fleet_of_two):
    server, _, _ = fleet_of_two
    status, body = _get(f"{server.url}/metrics")
    text = body.decode()
    assert status == 200
    assert validate_prometheus(text) == []
    assert "repro_run_points 2" in text       # both workers' points
    assert "repro_fleet_workers 2" in text
    assert "repro_fleet_workers_reachable 2" in text


def test_unreachable_worker_degrades_fleet():
    live = _finished_live("worker-a", [_point()])
    with TelemetryServer(live, port=0) as worker:
        dead = "http://127.0.0.1:9"  # discard port: nothing listens
        fleet = FleetAggregator([worker.url, dead], timeout=0.5)
        fleet.refresh()
        health = fleet.health()
        assert health["status"] == "degraded"
        assert health["unreachable_workers"] == [1]
        # The reachable worker's points still merge.
        assert fleet.snapshot()["points"] == 1
        with FleetServer(fleet, port=0) as server:
            status, _ = _get(f"{server.url}/fleet/healthz")
            assert status == 503


# ---------------------------------------------------------------------- #
# Multiplexed SSE: labelling, replay, reconnect.
# ---------------------------------------------------------------------- #

def test_sse_multiplex_labels_and_late_replay():
    live = LiveRun()
    live.begin_run("sse-test")
    live.begin_batch(1)
    with TelemetryServer(live, port=0) as worker:
        fleet = FleetAggregator([worker.url], timeout=2.0)
        fleet.start()
        try:
            early = fleet.subscribe()
            live.put(("window", 0, 4242,
                      1000, {"schema": "repro.metrics/1", "marker": 7}))
            assert _wait_for(lambda: not early.empty())
            event, payload = early.get_nowait()
            assert event == "window"
            assert payload["worker"] == 0
            assert payload["worker_url"] == worker.url
            assert payload["snapshot"]["marker"] == 7
            # A late subscriber is primed with the worker's last event,
            # explicitly marked as a replay.
            late = fleet.subscribe()
            event, replay = late.get_nowait()
            assert event == "window"
            assert replay["replay"] is True
            assert replay["worker"] == 0
            assert replay["snapshot"]["marker"] == 7
        finally:
            fleet.stop()


def test_worker_restart_mid_stream_reconnects():
    """Kill a worker's server mid-stream, bring a new one up on the
    same port: the pump reconnects (backoff) and events flow again."""
    live = LiveRun()
    live.begin_run("restart-test")
    live.begin_batch(1)
    first = TelemetryServer(live, port=0)
    first.start()
    port = first.port
    fleet = FleetAggregator([first.url], timeout=2.0)
    fleet.start()
    subscriber = fleet.subscribe()
    try:
        live.put(("window", 0, 1, 100, {"phase": "before"}))
        assert _wait_for(lambda: not subscriber.empty())
        while not subscriber.empty():
            subscriber.get_nowait()
        first.stop()  # connection drops mid-stream
        time.sleep(0.1)
        second = TelemetryServer(live, port=port)  # same address
        second.start()
        try:
            # Events published after the restart reach the fleet once
            # the pump's backoff loop re-subscribes.
            def poke_and_check() -> bool:
                live.put(("window", 0, 1, 200, {"phase": "after"}))
                while not subscriber.empty():
                    _, payload = subscriber.get_nowait()
                    if payload.get("snapshot", {}).get("phase") == "after":
                        return True
                return False

            assert _wait_for(poke_and_check, timeout=15.0, interval=0.25)
        finally:
            second.stop()
    finally:
        fleet.stop()


# ---------------------------------------------------------------------- #
# Fleet-level alerting.
# ---------------------------------------------------------------------- #

def test_fleet_alert_engine_observes_stream_and_serves_alerts():
    engine = AlertEngine([
        AlertRule(name="retry-storm", signal="retries", op=">=",
                  threshold=2, severity="page"),
    ])
    live = LiveRun()
    live.begin_run("alerting")
    live.begin_batch(2)
    with TelemetryServer(live, port=0) as worker:
        fleet = FleetAggregator([worker.url], timeout=2.0,
                                alert_engine=engine)
        fleet.start()
        subscriber = fleet.subscribe()
        try:
            # Wait for the SSE pump to attach before producing, so the
            # retry events flow live (not through health backfill).
            live.put(("window", 0, 1, 100, {"warming": True}))
            assert _wait_for(lambda: fleet.workers[0].events_seen > 0)
            live.point_retry(0, attempt=1, error="worker died")
            live.point_retry(1, attempt=1, error="timeout")
            assert _wait_for(lambda: engine.page_fired)
        finally:
            fleet.stop()
        received = []
        while not subscriber.empty():
            received.append(subscriber.get_nowait())
        alerts = [payload for event, payload in received
                  if event == "alert"]
        assert len(alerts) == 1 and alerts[0]["alert"] == "retry-storm"
        assert fleet.health()["alerts"]["fired"] == 1
        assert "repro_fleet_alerts_fired 1" in fleet.metrics()
        with FleetServer(fleet, port=0) as server:
            status, body = _get(f"{server.url}/alerts")
            assert status == 200
            document = json.loads(body)
            assert validate_alerts(document) == []
            assert document["summary"]["page_fired"] is True


def test_alerts_endpoint_404_without_engine():
    live = _finished_live("worker-a", [_point()])
    with TelemetryServer(live, port=0) as worker:
        fleet = FleetAggregator([worker.url], timeout=2.0)
        fleet.refresh()
        with FleetServer(fleet, port=0) as server:
            status, body = _get(f"{server.url}/alerts")
            assert status == 404 and b"no alert rules" in body


def test_health_poll_feeds_worker_resilience_counters():
    """A fleet engine that subscribed after the retry events still sees
    the counts through the worker's health document (max-merge)."""
    engine = AlertEngine([
        AlertRule(name="retry-storm", signal="retries", op=">=",
                  threshold=3, severity="warn"),
    ])
    live = LiveRun()
    live.begin_run("late-subscriber")
    # The retries happen BEFORE the aggregator exists — only the
    # /healthz resilience block can carry them to the fleet engine.
    for point in range(3):
        live.point_retry(point, attempt=1, error="worker died")
    with TelemetryServer(live, port=0) as worker:
        fleet = FleetAggregator([worker.url], timeout=2.0,
                                alert_engine=engine)
        fleet.refresh()
    assert engine.counters["retries"] == 3
    assert engine.firing == ["retry-storm"]

"""Unit tests for the simulation driver and cross-run metrics."""

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.core.qos import QoSOutcome
from repro.system import (
    CMPSystem,
    run_simulation,
    qos_outcomes,
    target_ipc,
    workload_summary,
)
from repro.workloads import loads_trace, stores_trace


def small_system(arbiter="fcfs"):
    config = baseline_config(n_threads=2, arbiter=arbiter)
    return CMPSystem(config, [loads_trace(0), stores_trace(1)])


class TestRunSimulation:
    def test_measurement_interval_only(self):
        """Stats cover the measure window, not warmup."""
        system = small_system()
        result = run_simulation(system, warmup=5_000, measure=5_000)
        assert result.cycles == 5_000
        assert result.warmup_cycles == 5_000
        assert system.cycle == 10_000
        # instructions == ipc * cycles by construction
        for ipc, insts in zip(result.ipcs, result.instructions):
            assert insts == pytest.approx(ipc * result.cycles)

    def test_invalid_intervals_rejected(self):
        system = small_system()
        with pytest.raises(ValueError):
            run_simulation(system, warmup=-1, measure=100)
        with pytest.raises(ValueError):
            run_simulation(system, warmup=0, measure=0)

    def test_utilizations_in_unit_range(self):
        result = run_simulation(small_system(), warmup=5_000, measure=5_000)
        for name in ("tag", "data", "bus"):
            assert 0.0 <= result.utilizations[name] <= 1.0
        assert len(result.bank_utilizations) == 2

    def test_derived_fractions(self):
        result = run_simulation(small_system(), warmup=20_000, measure=10_000)
        assert 0.0 <= result.write_fraction <= 1.0
        assert 0.0 <= result.gathering_rate <= 1.0
        assert 0.0 <= result.l2_miss_rate <= 1.0

    def test_counters_are_interval_deltas(self):
        system = small_system()
        first = run_simulation(system, warmup=5_000, measure=5_000)
        # Running again continues from the same system state.
        second_reads = first.l2_reads
        assert second_reads >= 0


class TestTargetIPC:
    def test_full_allocation_target_matches_solo_run(self):
        config = baseline_config(n_threads=2)
        target = target_ipc(config, loads_trace(0), phi=1.0, beta=1.0,
                            warmup=20_000, measure=10_000)
        assert target > 0.2   # the Loads benchmark saturates two banks

    def test_smaller_share_lower_target(self):
        config = baseline_config(n_threads=2)
        high = target_ipc(config, loads_trace(0), 1.0, 1.0,
                          warmup=20_000, measure=10_000)
        low = target_ipc(config, loads_trace(0), 0.25, 0.25,
                         warmup=20_000, measure=10_000)
        assert low < high


class TestQoSHelpers:
    def test_qos_outcomes_shape(self):
        result = run_simulation(small_system(), warmup=5_000, measure=5_000)
        outcomes = qos_outcomes(result, targets=[0.1, 0.1])
        assert [o.thread_id for o in outcomes] == [0, 1]

    def test_qos_outcomes_length_check(self):
        result = run_simulation(small_system(), warmup=5_000, measure=5_000)
        with pytest.raises(ValueError):
            qos_outcomes(result, targets=[0.1])

    def test_workload_summary(self):
        outcomes = [QoSOutcome(0, 1.0, 1.0), QoSOutcome(1, 0.8, 1.0)]
        summary = workload_summary(outcomes)
        assert summary["min_normalized"] == pytest.approx(0.8)
        assert summary["harmonic_mean"] == pytest.approx(8 / 9)

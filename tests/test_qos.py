"""Unit tests for QoS accounting (targets, normalization, monotonicity)."""

import pytest

from repro.core.qos import QoSOutcome, monotonicity_violations, summarize


class TestQoSOutcome:
    def test_normalized(self):
        outcome = QoSOutcome(0, ipc=0.5, target_ipc=0.4)
        assert outcome.normalized == pytest.approx(1.25)

    def test_meets_target_with_tolerance(self):
        assert QoSOutcome(0, 0.96, 1.0).meets_target(tolerance=0.05)
        assert not QoSOutcome(0, 0.90, 1.0).meets_target(tolerance=0.05)

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError):
            _ = QoSOutcome(0, 0.5, 0.0).normalized


class TestSummarize:
    def test_headline_metrics(self):
        outcomes = [
            QoSOutcome(0, 1.0, 1.0),
            QoSOutcome(1, 0.5, 1.0),
        ]
        hmean, minimum = summarize(outcomes)
        assert minimum == pytest.approx(0.5)
        assert hmean == pytest.approx(2 / 3)

    def test_min_is_worst_thread(self):
        outcomes = [QoSOutcome(i, ipc, 1.0) for i, ipc in enumerate([2.0, 0.25, 1.0])]
        _, minimum = summarize(outcomes)
        assert minimum == pytest.approx(0.25)


class TestMonotonicity:
    def test_monotone_curve_clean(self):
        points = [(0.25, 0.1), (0.5, 0.2), (1.0, 0.35)]
        assert monotonicity_violations(points) == []

    def test_violation_detected(self):
        points = [(0.25, 0.2), (0.5, 0.1)]
        violations = monotonicity_violations(points)
        assert len(violations) == 1
        assert violations[0][0] == 0.25

    def test_small_dip_within_tolerance(self):
        points = [(0.25, 0.200), (0.5, 0.199)]
        assert monotonicity_violations(points, tolerance=0.02) == []

    def test_unsorted_input_sorted_first(self):
        points = [(1.0, 0.35), (0.25, 0.1), (0.5, 0.2)]
        assert monotonicity_violations(points) == []

"""Unit tests for the fair-queuing QoS audits."""

from repro.fairqueue.bounds import (
    audit_all,
    audit_bandwidth,
    audit_deadlines,
    audit_work_conservation,
)
from repro.fairqueue.scheduler import Arrival, FairQueueScheduler, ServiceRecord


def run(shares, arrivals):
    return FairQueueScheduler(shares).run(arrivals)


class TestDeadlineAudit:
    def test_feasible_schedule_has_no_violations(self):
        shares = [0.5, 0.5]
        arrivals = [Arrival(float(i), i % 2, 1.0) for i in range(20)]
        records = run(shares, arrivals)
        assert audit_deadlines(records, max_preemption_latency=1.0) == []

    def test_manufactured_violation_detected(self):
        record = ServiceRecord(
            flow_id=0, start=100.0, finish=101.0, length=1.0,
            arrival=0.0, virtual_finish=2.0,
        )
        violations = audit_deadlines([record], max_preemption_latency=1.0)
        assert len(violations) == 1
        assert violations[0].kind == "deadline"

    def test_infinite_tags_skipped(self):
        record = ServiceRecord(
            flow_id=1, start=100.0, finish=101.0, length=1.0,
            arrival=0.0, virtual_finish=float("inf"),
        )
        assert audit_deadlines([record], 1.0) == []


class TestBandwidthAudit:
    def test_saturating_flows_meet_guarantee(self):
        shares = [0.25, 0.75]
        arrivals = [Arrival(0.0, 0, 1.0)] * 25 + [Arrival(0.0, 1, 1.0)] * 75
        records = run(shares, arrivals)
        assert audit_bandwidth(arrivals, records, shares, max_packet=1.0) == []

    def test_starved_flow_detected(self):
        """Hand-build a schedule where flow 0 is backlogged but unserved."""
        arrivals = [Arrival(0.0, 0, 1.0), Arrival(0.0, 1, 1.0)] * 10
        # Serve only flow 1, leaving flow 0 queued for 100 time units.
        records = [
            ServiceRecord(1, float(i), float(i + 1), 1.0, 0.0, float(i + 1))
            for i in range(10)
        ] + [
            ServiceRecord(0, 100.0 + i, 101.0 + i, 1.0, 0.0, 2.0)
            for i in range(10)
        ]
        violations = audit_bandwidth(arrivals, records, [0.5, 0.5], 1.0)
        assert any(v.flow_id == 0 for v in violations)


class TestWorkConservationAudit:
    def test_back_to_back_schedule_passes(self):
        shares = [1.0]
        arrivals = [Arrival(0.0, 0, 1.0)] * 5
        records = run(shares, arrivals)
        assert audit_work_conservation(arrivals, records) == []

    def test_idle_with_queued_work_detected(self):
        arrivals = [Arrival(0.0, 0, 1.0), Arrival(0.0, 0, 1.0)]
        records = [
            ServiceRecord(0, 0.0, 1.0, 1.0, 0.0, 1.0),
            ServiceRecord(0, 50.0, 51.0, 1.0, 0.0, 2.0),  # server napped
        ]
        violations = audit_work_conservation(arrivals, records)
        assert violations and violations[0].kind == "work-conservation"


class TestAuditAll:
    def test_clean_schedule(self):
        shares = [0.5, 0.5]
        arrivals = [Arrival(float(i // 2), i % 2, 1.0) for i in range(40)]
        records = run(shares, arrivals)
        results = audit_all(arrivals, records, shares)
        assert all(not v for v in results.values())

"""Host-time orchestration tracing: SpanTracer, propagation, export.

The contract under test:

* Spans carry wall-clock microsecond stamps on one run-wide timeline
  (the tracer's unix epoch), ids are process-unique, and the collected
  document is the deterministic, validatable ``repro.spans/1`` shape.
* A :class:`SpanContext` hands a worker tracer the parent's trace id,
  epoch, and parent span; worker records travel home over the feed
  channel as ``("span", index, pid, record)`` tuples and are adopted by
  the parent via :meth:`SpanTracer.ingest`.
* With a telemetry bus attached, spans double as ``CAT_HOST`` trace
  events and the Perfetto exporter renders them as the dedicated
  "host orchestration" process — one trace, simulated cycles and
  wall-clock side by side.
* The orchestration layer (run_points scheduling, result cache) emits
  spans when configured and — observation-only contract — never
  perturbs the simulated results.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments import parallel
from repro.experiments.parallel import SimPoint, run_points
from repro.telemetry import (
    CAT_HOST,
    LiveRun,
    RingBufferSink,
    TelemetryBus,
    chrome_trace,
)
from repro.telemetry.perfetto import PID_HOST
from repro.telemetry.spans import (
    SPANS_SCHEMA,
    TRACK_RUN,
    TRACK_SCHED,
    TRACK_WORKER,
    SpanContext,
    SpanTracer,
    write_spans,
)
from repro.telemetry.validate import (
    main as validate_main,
    validate_chrome_trace,
    validate_spans,
)

WINDOW = 500


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    parallel.configure(jobs=1, cache=True)
    yield
    parallel.configure(jobs=1, cache=True)


class _FakeClock:
    def __init__(self, start=1_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


def _point(**overrides) -> SimPoint:
    params = dict(
        config=baseline_config(n_threads=2, arbiter="vpc",
                               vpc=VPCAllocation.equal(2)),
        traces=(("loads",), ("stores",)),
        warmup=500,
        measure=1_500,
    )
    params.update(overrides)
    return SimPoint(**params)


# ---------------------------------------------------------------------- #
# Tracer mechanics.
# ---------------------------------------------------------------------- #

def test_span_lifecycle_and_timeline():
    clock = _FakeClock()
    tracer = SpanTracer(clock=clock)
    span = tracer.begin("batch", TRACK_RUN, points=3)
    clock.now += 1.5
    record = tracer.end(span, outcome="ok")
    assert record["kind"] == "span"
    assert record["name"] == "batch"
    assert record["track"] == TRACK_RUN
    assert record["ts_us"] == 0
    assert record["dur_us"] == 1_500_000
    assert record["args"] == {"points": 3, "outcome": "ok"}
    assert record["trace_id"] == tracer.trace_id
    assert tracer.records == [record]


def test_span_ids_are_unique_and_instants_zero_width():
    tracer = SpanTracer(clock=_FakeClock())
    records = [tracer.instant(f"i{n}", TRACK_SCHED) for n in range(50)]
    ids = {record["span_id"] for record in records}
    assert len(ids) == 50
    assert all(record["dur_us"] == 0 for record in records)
    assert all(record["kind"] == "instant" for record in records)


def test_span_scope_records_error_on_exception():
    tracer = SpanTracer(clock=_FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("doomed", TRACK_WORKER):
            raise ValueError("boom")
    (record,) = tracer.records
    assert record["name"] == "doomed"
    assert record["args"]["error"] == "ValueError"


def test_clock_skew_never_goes_negative():
    clock = _FakeClock()
    tracer = SpanTracer(clock=clock)
    clock.now -= 10.0  # a worker whose wall clock lags the parent's
    assert tracer.now_us() == 0


# ---------------------------------------------------------------------- #
# Cross-process propagation.
# ---------------------------------------------------------------------- #

def test_child_context_is_picklable_and_anchors_worker():
    clock = _FakeClock()
    parent = SpanTracer(clock=clock)
    scheduling = parent.begin("point0", TRACK_SCHED)
    context = pickle.loads(pickle.dumps(parent.child_context(scheduling)))
    assert isinstance(context, SpanContext)
    clock.now += 2.0
    worker = SpanTracer(context=context, clock=clock)
    record = worker.end(worker.begin("simulate.point0", TRACK_WORKER))
    # Same trace, same timeline, parented under the scheduling span.
    assert worker.trace_id == parent.trace_id
    assert record["trace_id"] == parent.trace_id
    assert record["parent_id"] == scheduling.span_id
    assert record["ts_us"] == 2_000_000


def test_worker_records_ship_over_feed_and_ingest():
    class Feed:
        def __init__(self):
            self.messages = []

        def put(self, msg):
            self.messages.append(msg)

    clock = _FakeClock()
    parent = SpanTracer(clock=clock)
    scheduling = parent.begin("point7", TRACK_SCHED)
    feed = Feed()
    worker = SpanTracer(feed=feed, index=7,
                        context=parent.child_context(scheduling),
                        clock=clock)
    worker.instant("journal.started", TRACK_WORKER)
    kind, index, _pid, record = feed.messages[0]
    assert (kind, index) == ("span", 7)
    parent.ingest(record)
    parent.end(scheduling)
    document = parent.document()
    names = [span["name"] for span in document["spans"]]
    assert "journal.started" in names and "point7" in names
    assert validate_spans(document) == []
    # Garbage off the wire is dropped, not raised.
    parent.ingest("not-a-record")
    parent.ingest({"no": "span_id"})
    assert len(parent.records) == 2


def test_live_run_routes_span_tuples():
    """LiveRun.put dispatches span tuples to on_span (parent adoption)
    and republishes them as worker-visible SSE events."""
    live = LiveRun()
    live.begin_batch(1)
    adopted = []
    live.on_span = adopted.append
    subscriber = live.subscribe()
    record = SpanTracer(clock=_FakeClock()).instant("cache-hit", TRACK_SCHED)
    live.put(("span", 0, 4242, record))
    assert adopted == [record]
    published = []
    while not subscriber.empty():
        published.append(subscriber.get_nowait())
    events = [payload for event, payload in published if event == "span"]
    assert events and events[0]["worker"] == 4242
    assert events[0]["span"] == record


# ---------------------------------------------------------------------- #
# The repro.spans/1 artifact.
# ---------------------------------------------------------------------- #

def test_write_spans_is_valid_and_deterministic(tmp_path, capsys):
    clock = _FakeClock()
    tracer = SpanTracer(clock=clock)
    outer = tracer.begin("experiment", TRACK_RUN)
    clock.now += 0.25
    tracer.instant("cache-miss", TRACK_SCHED, parent=outer, point=0)
    clock.now += 0.25
    tracer.end(outer)
    path = tmp_path / "spans.json"
    assert write_spans(path, tracer) == 2
    document = json.loads(path.read_text())
    assert document["schema"] == SPANS_SCHEMA
    assert validate_spans(document) == []
    stamps = [(span["ts_us"], span["span_id"])
              for span in document["spans"]]
    assert stamps == sorted(stamps)
    # And the CLI agrees (kind auto-detected from the schema tag).
    assert validate_main([str(path)]) == 0
    assert "host spans" in capsys.readouterr().out


def test_validate_spans_rejects_malformed_documents():
    good = SpanTracer(clock=_FakeClock())
    good.end(good.begin("ok"))
    document = good.document()
    assert validate_spans(document) == []

    assert validate_spans([]) != []
    assert validate_spans({"schema": "repro.spans/9"}) != []

    duplicate = json.loads(json.dumps(document))
    duplicate["spans"] = duplicate["spans"] * 2
    assert any("duplicate span_id" in problem
               for problem in validate_spans(duplicate))

    orphan = json.loads(json.dumps(document))
    orphan["spans"][0]["parent_id"] = "dead.beef"
    assert any("does not resolve" in problem
               for problem in validate_spans(orphan))

    negative = json.loads(json.dumps(document))
    negative["spans"][0]["dur_us"] = -1
    assert any("dur_us" in problem
               for problem in validate_spans(negative))


# ---------------------------------------------------------------------- #
# One trace, two time bases: Perfetto export.
# ---------------------------------------------------------------------- #

def test_host_spans_render_as_dedicated_perfetto_process():
    bus = TelemetryBus()
    ring = bus.attach(RingBufferSink())
    clock = _FakeClock()
    tracer = SpanTracer(sink=bus, clock=clock)
    span = tracer.begin("simulate", TRACK_RUN)
    clock.now += 1.0
    tracer.end(span, cycles=5_000)
    tracer.instant("checkpoint-write", TRACK_RUN)
    records = chrome_trace(ring)
    assert validate_chrome_trace(records) == []
    host = [record for record in records
            if record.get("cat") == CAT_HOST]
    assert {record["pid"] for record in host} == {PID_HOST}
    named = [record for record in records
             if record.get("ph") == "M" and record["pid"] == PID_HOST
             and record.get("name") == "process_name"]
    assert named and named[0]["args"]["name"] == "host orchestration"
    slice_ = next(r for r in host if r["name"] == "simulate")
    assert slice_["dur"] == 1_000_000
    assert slice_["args"]["cycles"] == 5_000


def test_sim_and_host_events_share_one_trace():
    """An observed run with a span tracer on the same bus produces a
    single valid trace holding both simulated-cycle and host events."""
    from repro.system.cmp import CMPSystem
    from repro.system.simulator import run_simulation
    from repro.workloads.microbench import loads_trace, stores_trace

    bus = TelemetryBus()
    ring = bus.attach(RingBufferSink())
    tracer = SpanTracer(sink=bus)
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)],
                       telemetry=bus)
    with tracer.span("simulate", TRACK_RUN):
        run_simulation(system, warmup=200, measure=800)
    records = chrome_trace(ring)
    assert validate_chrome_trace(records) == []
    categories = {record.get("cat") for record in records}
    assert CAT_HOST in categories
    assert len(categories) > 2  # host + multiple simulated categories
    pids = {record["pid"] for record in records}
    assert PID_HOST in pids and len(pids) > 1


# ---------------------------------------------------------------------- #
# Orchestration integration (run_points).
# ---------------------------------------------------------------------- #

def test_run_points_emits_scheduling_spans_and_cache_instants():
    tracer = SpanTracer()
    parallel.configure(jobs=1, cache=True, spans=tracer)
    point = _point(cacheable=True)
    run_points([point])
    run_points([point])  # second batch hits the result cache
    names = [record["name"] for record in tracer.records]
    assert names.count("batch") == 2
    assert "point0" in names
    assert "cache-miss" in names and "cache-hit" in names
    batches = [record for record in tracer.records
               if record["name"] == "batch"]
    scheduled = next(record for record in tracer.records
                     if record["name"] == "point0")
    assert scheduled["parent_id"] == batches[0]["span_id"]
    assert scheduled["track"] == TRACK_SCHED
    assert validate_spans(tracer.document()) == []


def test_spans_do_not_perturb_results():
    plain = run_points([_point()])
    parallel.configure(jobs=1, cache=False, spans=SpanTracer())
    traced = run_points([_point()])
    assert [r.ipcs for r in traced] == [r.ipcs for r in plain]
    assert [r.cycles for r in traced] == [r.cycles for r in plain]


def test_worker_spans_flow_through_live_feed():
    """With a live feed and a span tracer configured, per-point worker
    spans come home over the feed and parent under the scheduling
    span."""
    tracer = SpanTracer()
    live = LiveRun()
    live.on_span = tracer.ingest  # the wiring both CLIs apply
    parallel.configure(jobs=1, cache=False, metrics=WINDOW,
                       live=live, spans=tracer)
    run_points([_point()])
    by_name = {record["name"]: record for record in tracer.records}
    assert "simulate.point0" in by_name
    worker = by_name["simulate.point0"]
    assert worker["track"] == TRACK_WORKER
    assert worker["parent_id"] == by_name["point0"]["span_id"]
    assert worker["args"]["cycles"] > 0
    assert validate_spans(tracer.document()) == []

"""Tests for the SMT core (shared-pipeline, shared-L1 hardware threads)."""

import pytest

from repro.common.config import CoreConfig, L1Config, VPCAllocation, baseline_config
from repro.cpu.isa import load, nonmem, store
from repro.cpu.smt import SMTCoreModel
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads import loads_trace, spec_trace, stores_trace


class Fabric:
    def __init__(self):
        self.requests = []

    def send(self, thread_id, request, now):
        self.requests.append(request)


def make_smt(traces, thread_ids=None, issue_width=4, mshrs=16):
    fabric = Fabric()
    thread_ids = thread_ids or list(range(len(traces)))
    core = SMTCoreModel(
        thread_ids=thread_ids,
        config=CoreConfig(issue_width=issue_width),
        l1_config=L1Config(mshrs=mshrs),
        traces=[iter(t) for t in traces],
        send_request=fabric.send,
    )
    return core, fabric


class TestConstruction:
    def test_needs_threads(self):
        with pytest.raises(ValueError):
            make_smt([], thread_ids=[])

    def test_trace_count_must_match(self):
        with pytest.raises(ValueError):
            make_smt([[nonmem(1)]], thread_ids=[0, 1])


class TestSharedIssueBandwidth:
    def test_two_threads_split_issue_width(self):
        core, _ = make_smt([[nonmem(10_000)], [nonmem(10_000)]], issue_width=4)
        for now in range(100):
            core.tick(now)
        a = core.dispatched_of(0)
        b = core.dispatched_of(1)
        assert a + b == 400            # full width consumed
        assert a == pytest.approx(b, rel=0.05)   # shared fairly

    def test_stalled_thread_donates_bandwidth(self):
        """A thread blocked on a miss leaves its slots to the other."""
        core, fabric = make_smt(
            [[load(0x1000, True), load(0x2000, True), nonmem(10)],
             [nonmem(10_000)]],
            issue_width=4,
        )
        for now in range(50):
            core.tick(now)
        # Thread 0 is stuck on its dependent-load chain; thread 1 runs
        # at nearly the whole width.
        assert core.dispatched_of(1) > 150

    def test_rotation_prevents_structural_bias(self):
        core, _ = make_smt([[nonmem(10_000)], [nonmem(10_000)]], issue_width=5)
        for now in range(200):
            core.tick(now)
        a, b = core.dispatched_of(0), core.dispatched_of(1)
        assert abs(a - b) <= 5  # odd width alternates the extra slot


class TestSharedL1AndMSHRs:
    def test_one_l1_for_all_threads(self):
        """Thread 1 hits on a line thread 0 loaded (constructive sharing)."""
        core, fabric = make_smt(
            [[load(0x4000), nonmem(5)], [nonmem(1), load(0x4000), nonmem(5)]],
        )
        core.tick(0)
        assert len(fabric.requests) == 1   # one L2 read
        core.on_response(fabric.requests[0], 20)
        for now in range(1, 10):
            core.tick(now)
        assert core.l1.load_hits >= 1      # the second thread hit

    def test_cross_thread_mshr_coalescing(self):
        core, fabric = make_smt(
            [[load(0x4000), nonmem(5)], [load(0x4004), nonmem(5)]],
        )
        core.tick(0)
        assert len(fabric.requests) == 1   # same line coalesced
        core.on_response(fabric.requests[0], 20)
        for now in range(1, 20):
            core.tick(now)
        assert core.done

    def test_requests_carry_global_thread_id(self):
        core, fabric = make_smt(
            [[store(0x100), nonmem(5)], [store(0x8100), nonmem(5)]],
            thread_ids=[2, 3],
        )
        core.tick(0)
        core.tick(1)   # rotation gives the second context its turn
        ids = sorted(r.thread_id for r in fabric.requests)
        assert ids == [2, 3]

    def test_store_ack_routed_to_owner(self):
        core, fabric = make_smt(
            [[store(0x100), nonmem(5)], [nonmem(5)]],
        )
        core.tick(0)
        write = next(r for r in fabric.requests if r.is_write)
        core.on_response(write, 5)
        assert core._contexts[0].outstanding_stores == 0


class TestSystemIntegration:
    def test_smt_degree_validation(self):
        config = baseline_config(n_threads=4)
        traces = [spec_trace("gcc", t) for t in range(4)]
        with pytest.raises(ValueError):
            CMPSystem(config, traces, smt_degree=3)
        with pytest.raises(ValueError):
            CMPSystem(config, traces, smt_degree=0)

    def test_two_smt_cores_four_threads(self):
        config = baseline_config(n_threads=4, arbiter="vpc",
                                 vpc=VPCAllocation.equal(4))
        traces = [loads_trace(0), stores_trace(1),
                  loads_trace(2), stores_trace(3)]
        system = CMPSystem(config, traces, smt_degree=2)
        assert len(system.cores) == 2
        result = run_simulation(system, warmup=25_000, measure=10_000)
        assert len(result.ipcs) == 4
        assert all(ipc >= 0 for ipc in result.ipcs)

    def test_vpc_protects_across_smt_contexts(self):
        """Two contexts on ONE core: the L2 VPC still divides bandwidth
        between them (they are distinct threads to the cache)."""
        vpc = VPCAllocation([0.75, 0.25], [0.5, 0.5])
        config = baseline_config(n_threads=2, arbiter="vpc", vpc=vpc)
        system = CMPSystem(
            config, [loads_trace(0), loads_trace(1)], smt_degree=2
        )
        result = run_simulation(system, warmup=30_000, measure=15_000)
        # Identical workloads, asymmetric shares: the allocation shows.
        assert result.ipcs[0] > result.ipcs[1] * 1.5

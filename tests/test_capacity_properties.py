"""Property-based tests for the VPC Capacity Manager.

Core invariant (the capacity QoS guarantee): under ANY interleaving of
inserts from competing threads, a thread that has inserted at least
``quota_i`` distinct lines into a set retains at least ``quota_i`` ways
of it — its private-cache-equivalent capacity can never be stolen.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache_array import CacheArray
from repro.core.capacity import VPCCapacityManager, ways_quota


@st.composite
def insert_sequences(draw):
    n_threads = draw(st.integers(min_value=2, max_value=4))
    ways = draw(st.sampled_from([4, 8, 16]))
    shares = [1.0 / n_threads] * n_threads
    n_inserts = draw(st.integers(min_value=ways, max_value=6 * ways))
    inserts = [
        (
            draw(st.integers(min_value=0, max_value=n_threads - 1)),
            draw(st.integers(min_value=0, max_value=8 * ways)),
        )
        for _ in range(n_inserts)
    ]
    return n_threads, ways, shares, inserts


def run_inserts(n_threads, ways, shares, inserts):
    policy = VPCCapacityManager(shares, ways)
    array = CacheArray(sets=1, ways=ways, policy=policy)
    distinct = [set() for _ in range(n_threads)]
    for thread_id, line in inserts:
        # Namespace lines per thread (threads never share lines, as in
        # the paper's private address spaces).
        namespaced = line * n_threads + thread_id
        array.insert(namespaced, thread_id)
        distinct[thread_id].add(namespaced)
    return policy, array, distinct


@settings(max_examples=80, deadline=None)
@given(insert_sequences())
def test_quota_floor_invariant(sequence):
    """A thread with >= quota distinct lines inserted keeps >= quota ways.

    (If it inserted fewer, it keeps min(inserted, quota) — you cannot hold
    ways you never filled.)
    """
    n_threads, ways, shares, inserts = sequence
    policy, array, distinct = run_inserts(n_threads, ways, shares, inserts)
    quotas = ways_quota(shares, ways)
    occupancy = array.occupancy_by_thread(n_threads)
    for tid in range(n_threads):
        lines_present_floor = min(len(distinct[tid]), quotas[tid])
        assert occupancy[tid] >= lines_present_floor, (
            occupancy, quotas, [len(d) for d in distinct]
        )


@settings(max_examples=80, deadline=None)
@given(insert_sequences())
def test_total_occupancy_never_exceeds_ways(sequence):
    n_threads, ways, shares, inserts = sequence
    _, array, _ = run_inserts(n_threads, ways, shares, inserts)
    assert sum(array.occupancy_by_thread(n_threads)) <= ways


@settings(max_examples=60, deadline=None)
@given(insert_sequences())
def test_most_recent_insert_always_present(sequence):
    """The line just inserted is resident (the policy never evicts the
    incoming line)."""
    n_threads, ways, shares, inserts = sequence
    policy = VPCCapacityManager(shares, ways)
    array = CacheArray(sets=1, ways=ways, policy=policy)
    for thread_id, line in inserts:
        namespaced = line * n_threads + thread_id
        array.insert(namespaced, thread_id)
        assert array.contains(namespaced)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.sampled_from([8, 16]),
    st.integers(min_value=1, max_value=200),
)
def test_lone_thread_gets_whole_set(n_threads, ways, n_lines):
    """Work conservation: with no competitors, a thread may fill every way."""
    shares = [1.0 / n_threads] * n_threads
    policy = VPCCapacityManager(shares, ways)
    array = CacheArray(sets=1, ways=ways, policy=policy)
    for line in range(n_lines):
        array.insert(line, 0)
    expected = min(n_lines, ways)
    assert array.occupancy_by_thread(n_threads)[0] == expected

"""QoS control plane: classifier hysteresis, register-only programming,
cross-kernel bit-identity with a controller attached, and the policy
acceptance inequalities (LFOC/dynamic beat FCFS on fairness without
giving up static VPC's throughput).
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.core.capacity import ways_quota
from repro.qos import (
    CONTROLLERS,
    FairnessController,
    LFOCController,
    QOS_DECISIONS_SCHEMA,
    EpochSignals,
    QoSController,
    ThreadClassifier,
    make_controller,
)
from repro.qos.classifier import (
    LABEL_HUNGRY,
    LABEL_LIGHT,
    LABEL_STREAMING,
    LABELS,
)
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.telemetry import RingBufferSink, TelemetryBus
from repro.telemetry.validate import validate_frontier, validate_qos_decisions
from repro.workloads.profiles import (
    PHASED_MIXES,
    phased_profile_trace,
    spec_trace,
)

KERNELS = ("cycle", "event", "batch")


def _signals(ipcs, loads, latency, cycles=5_000, cycle=5_000, ways=None):
    n = len(ipcs)
    return EpochSignals(
        cycle=cycle, cycles=cycles, ipcs=list(ipcs), loads=list(loads),
        load_latency=list(latency), ways=list(ways or [0] * n),
    )


class TestClassifier:
    def test_taxonomy_rules(self):
        clf = ThreadClassifier(3)
        # t0: intense + high latency (streaming); t1: intense + near-hit
        # latency (hungry); t2: barely touches the L2 (light).
        signals = _signals(
            ipcs=[0.5, 0.8, 1.5],
            loads=[100, 100, 5],
            latency=[100 * 230, 100 * 70, 5 * 60],
        )
        assert clf.classify(signals) == [
            LABEL_STREAMING, LABEL_HUNGRY, LABEL_LIGHT,
        ]

    def test_no_loads_is_light(self):
        clf = ThreadClassifier(1)
        assert clf.classify(_signals([0.0], [0], [0])) == [LABEL_LIGHT]

    def test_miss_rate_estimate_clamped(self):
        clf = ThreadClassifier(1)
        assert clf.miss_rate_estimate(
            _signals([1.0], [10], [10 * 1_000]), 0) == 1.0
        assert clf.miss_rate_estimate(
            _signals([1.0], [10], [10 * 5]), 0) == 0.0

    def test_hysteresis_damps_single_epoch_blips(self):
        clf = ThreadClassifier(1, hysteresis=2)
        hungry = _signals([1.0], [100], [100 * 70])
        streamy = _signals([1.0], [100], [100 * 230])
        assert clf.classify(hungry) == [LABEL_HUNGRY]
        # One off-label epoch must NOT flip the committed label...
        assert clf.classify(streamy) == [LABEL_HUNGRY]
        # ...returning to the committed label resets the streak...
        assert clf.classify(hungry) == [LABEL_HUNGRY]
        assert clf.classify(streamy) == [LABEL_HUNGRY]
        # ...and only `hysteresis` consecutive epochs commit the switch.
        assert clf.classify(streamy) == [LABEL_STREAMING]

    def test_alternating_signal_never_flaps(self):
        clf = ThreadClassifier(1, hysteresis=2)
        hungry = _signals([1.0], [100], [100 * 70])
        streamy = _signals([1.0], [100], [100 * 230])
        labels = [clf.classify(hungry)[0]]
        for _ in range(10):
            labels.append(clf.classify(streamy)[0])
            labels.append(clf.classify(hungry)[0])
        # A strictly alternating raw signal keeps the committed label.
        assert set(labels) == {LABEL_HUNGRY}

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadClassifier(0)
        with pytest.raises(ValueError):
            ThreadClassifier(1, hysteresis=0)
        with pytest.raises(ValueError):
            ThreadClassifier(1, hit_latency=100.0, miss_latency=50.0)


class TestRuntimeQuotas:
    def test_set_quotas_reprograms_without_rebuild(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        policy = system.banks[0].array.policy
        before = policy.quotas
        system.registers.write_capacity(0, 0.25)
        # The SAME policy object (no cache rebuild) now enforces the
        # new register-implied quotas on every bank.
        assert system.banks[0].array.policy is policy
        expected = ways_quota(system.registers.capacity, policy.ways)
        assert policy.quotas == expected != before
        for bank in system.banks:
            assert bank.array.policy.quotas == expected

    def test_set_quotas_validates_length(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        with pytest.raises(ValueError):
            system.banks[0].array.policy.set_quotas([0.5])

    def test_audit_catches_quota_drift(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        controller = system.attach_qos_controller(QoSController(2))
        controller.audit(system)  # consistent at attach time
        system.banks[0].array.policy.quotas = [1, 1]  # drift behind the
        with pytest.raises(RuntimeError):              # registers' back
            controller.audit(system)


class TestControllerHarness:
    def test_attach_requires_vpc_arbiter(self):
        config = baseline_config(n_threads=2, arbiter="fcfs")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)],
                           capacity_policy="lru")
        with pytest.raises(ValueError):
            system.attach_qos_controller(QoSController(2))

    def test_attach_requires_matching_width(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        with pytest.raises(ValueError):
            system.attach_qos_controller(QoSController(4))

    def test_lfoc_needs_one_way_per_thread(self):
        controller = LFOCController(4)
        controller.ways = 2
        config = baseline_config(n_threads=4, arbiter="vpc")
        system = CMPSystem(
            config, [spec_trace("art", tid) for tid in range(4)])
        assert system.config.l2.ways >= 4  # baseline qualifies
        # An undersized cache is rejected at attach time.
        from dataclasses import replace
        small = replace(
            config, l2=replace(config.l2, ways=2)
        ).validate()
        tiny = CMPSystem(
            small, [spec_trace("art", tid) for tid in range(4)])
        with pytest.raises(ValueError):
            tiny.attach_qos_controller(LFOCController(4))

    def test_make_controller_dispatch(self):
        assert set(CONTROLLERS) == {"lfoc", "fairness"}
        assert isinstance(make_controller("lfoc", 2), LFOCController)
        assert isinstance(make_controller("fairness", 2),
                          FairnessController)
        with pytest.raises(ValueError):
            make_controller("pid", 2)

    def test_epochs_fire_and_program_registers(self):
        config = baseline_config(n_threads=4, arbiter="vpc",
                                 vpc=VPCAllocation.equal(4))
        system = CMPSystem(
            config,
            [phased_profile_trace("art-sixtrack", 0), spec_trace("mcf", 1),
             phased_profile_trace("equake-art", 2), spec_trace("gzip", 3)])
        controller = system.attach_qos_controller(
            LFOCController(4, epoch_cycles=2_000))
        result = run_simulation(system, warmup=4_000, measure=10_000)
        assert controller.epochs == 5
        assert [d.cycle for d in controller.decisions] == [
            4_000 + 2_000 * (k + 1) for k in range(5)
        ]
        assert any(d.programmed for d in controller.decisions)
        # The programmed allocation is visible in the register file and
        # mirrored into every bank's quota vector.
        final = controller.decisions[-1]
        assert system.registers.bandwidth["data"] == final.phi
        assert system.registers.capacity == final.beta
        controller.audit(system)
        assert result.qos is not None
        assert result.qos["schema"] == QOS_DECISIONS_SCHEMA
        assert result.qos["epochs"] == 5

    def test_partial_final_epoch_fires(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        controller = system.attach_qos_controller(
            FairnessController(2, epoch_cycles=4_000))
        run_simulation(system, warmup=2_000, measure=6_000)
        # 6000 measured cycles = one full epoch + a 2000-cycle tail.
        assert controller.epochs == 2
        assert controller.decisions[-1].cycles == 2_000

    def test_labels_change_under_phased_workload(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(
            config,
            [phased_profile_trace("art-sixtrack", 0), spec_trace("mcf", 1)])
        controller = system.attach_qos_controller(
            LFOCController(2, epoch_cycles=2_000))
        run_simulation(system, warmup=2_000, measure=40_000)
        trail = [tuple(d.labels) for d in controller.decisions]
        assert len(set(trail)) > 1, "phased mix never re-labelled"
        assert all(label in LABELS for labels in trail for label in labels)

    def test_decisions_document_is_json_and_valid(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        controller = system.attach_qos_controller(
            FairnessController(2, epoch_cycles=2_000,
                               baseline_ipcs=[1.0, 0.8]))
        run_simulation(system, warmup=2_000, measure=8_000)
        doc = json.loads(json.dumps(controller.decisions_document()))
        assert validate_qos_decisions(doc) == []
        assert doc["policy"] == "fairness"
        assert doc["baseline_ipcs"] == [1.0, 0.8]
        assert doc["final"]["labels"] == doc["decisions"][-1]["labels"]

    def test_fairness_controller_narrows_slowdown_spread(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        controller = system.attach_qos_controller(
            FairnessController(2, epoch_cycles=2_000))
        run_simulation(system, warmup=4_000, measure=20_000)
        programmed = [d for d in controller.decisions if d.programmed]
        assert programmed, "controller never acted"
        # Shares moved off equal toward the slower thread, and every
        # programmed vector conserves the resource.
        final = controller.decisions[-1].phi
        assert final != [0.5, 0.5]
        for decision in controller.decisions:
            assert sum(decision.phi) <= 1.0 + 1e-9
            assert sum(decision.beta) <= 1.0 + 1e-9


class TestLFOCClustering:
    def test_capacity_pins_streaming_and_splits_hungry(self):
        controller = LFOCController(4)
        controller.ways = 8
        beta = controller.cluster_capacity(
            [LABEL_STREAMING, LABEL_HUNGRY, LABEL_HUNGRY, LABEL_LIGHT])
        # streaming/light pinned to 1 way; 6 remaining split 3+3.
        assert beta == [1 / 8, 3 / 8, 3 / 8, 1 / 8]

    def test_capacity_equal_without_hungry(self):
        controller = LFOCController(4)
        controller.ways = 8
        assert controller.cluster_capacity([LABEL_LIGHT] * 4) == [0.25] * 4

    def test_bandwidth_shaves_streaming_for_hungry(self):
        controller = LFOCController(4, streaming_phi_scale=0.8)
        phi = controller.cluster_bandwidth(
            [LABEL_STREAMING, LABEL_HUNGRY, LABEL_HUNGRY, LABEL_LIGHT])
        assert phi[0] == pytest.approx(0.25 * 0.8)
        assert phi[1] == phi[2] > 0.25
        assert phi[3] == 0.25
        assert sum(phi) == pytest.approx(1.0)

    def test_reprograms_only_on_label_change(self):
        controller = LFOCController(2)
        controller.ways = 8
        signals = _signals([1.0, 1.0], [10, 10], [700, 700])
        labels = [LABEL_HUNGRY, LABEL_STREAMING]
        assert controller.decide(signals, labels) is not None
        assert controller.decide(signals, labels) is None
        assert controller.decide(
            signals, [LABEL_HUNGRY, LABEL_HUNGRY]) is not None


class TestKernelBitIdentityWithController:
    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_all_kernels_agree_with_controller_attached(self, name):
        def run(kernel):
            config = baseline_config(n_threads=4, arbiter="vpc",
                                     vpc=VPCAllocation.equal(4))
            system = CMPSystem(
                config,
                [phased_profile_trace("art-sixtrack", 0),
                 spec_trace("mcf", 1),
                 phased_profile_trace("equake-art", 2),
                 spec_trace("gzip", 3)],
                kernel=kernel)
            system.attach_qos_controller(
                make_controller(name, 4, epoch_cycles=2_000))
            return run_simulation(system, warmup=4_000, measure=8_000)

        reference = run("cycle")
        assert reference.qos["epochs"] == 4
        for kernel in ("event", "batch"):
            assert asdict(run(kernel)) == asdict(reference), kernel


class TestTelemetry:
    def test_decisions_land_on_the_bus(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        bus = TelemetryBus()
        ring = bus.attach(RingBufferSink())
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)],
                           telemetry=bus)
        system.attach_qos_controller(LFOCController(2, epoch_cycles=2_000))
        run_simulation(system, warmup=2_000, measure=4_000)
        events = [e for e in ring if e.track.startswith("qos.")]
        instants = [e for e in events if e.name == "decision"]
        assert len(instants) == 2
        assert instants[0].args["policy"] == "lfoc"
        assert instants[0].args["labels"].count(",") == 1
        counters = {e.name for e in events} - {"decision"}
        assert {"phi", "beta", "jain"} <= counters

    def test_feedback_allocator_emits_decisions(self):
        from repro.policy.feedback import FeedbackAllocator
        config = baseline_config(n_threads=2, arbiter="vpc")
        bus = TelemetryBus()
        ring = bus.attach(RingBufferSink())
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)],
                           telemetry=bus)
        system.run(2_000)
        allocator = FeedbackAllocator(system, thread_id=1, target_ipc=0.9,
                                      epoch_cycles=1_000)
        allocator.run(3)
        instants = [e for e in ring
                    if e.track == "qos.controller" and e.name == "feedback"]
        assert len(instants) == 3
        assert instants[0].tid == 1
        assert instants[0].args["target_ipc"] == 0.9
        shares = [e for e in ring
                  if e.track == "qos.shares" and e.name == "phi"]
        assert [e.args["t1"] for e in shares] == [
            d.share_after for d in allocator.decisions
        ]


class TestValidators:
    def _doc(self):
        config = baseline_config(n_threads=2, arbiter="vpc")
        system = CMPSystem(config, [spec_trace("art", 0),
                                    spec_trace("mcf", 1)])
        system.attach_qos_controller(LFOCController(2, epoch_cycles=2_000))
        result = run_simulation(system, warmup=2_000, measure=6_000)
        return json.loads(json.dumps(result.qos))

    def test_valid_document_passes(self):
        assert validate_qos_decisions(self._doc()) == []

    def test_tampering_is_caught(self):
        doc = self._doc()
        doc["decisions"][0]["labels"][0] = "confused"
        assert any("taxonomy" in e for e in validate_qos_decisions(doc))
        doc = self._doc()
        doc["decisions"][-1]["phi"] = [0.9, 0.9]
        assert any("sum" in e for e in validate_qos_decisions(doc))
        doc = self._doc()
        doc["final"]["jain"] = 0.123
        assert any("final.jain" in e for e in validate_qos_decisions(doc))
        doc = self._doc()
        doc["epochs"] += 1
        assert validate_qos_decisions(doc)

    def test_frontier_validator_shapes(self):
        good = {
            "schema": "repro.policy-frontier/1",
            "policies": ["fcfs", "vpc"],
            "epoch_cycles": 5_000, "warmup": 1_000, "measure": 2_000,
            "mixes": [{
                "mix": "pmix1", "workloads": ["a", "b"],
                "targets": [1.0, 0.5],
                "points": {
                    "fcfs": {"jain": 0.9, "aggregate_ipc": 2.0,
                             "hmean": 1.0, "min": 0.8,
                             "normalized_ipcs": [1.0, 1.1], "epochs": 0},
                    "vpc": {"jain": 0.95, "aggregate_ipc": 2.1,
                            "hmean": 1.1, "min": 0.9,
                            "normalized_ipcs": [1.0, 1.2], "epochs": 0},
                },
            }],
            "aggregate": {"fcfs": {"jain": 0.9}, "vpc": {"jain": 0.95}},
        }
        assert validate_frontier(good) == []
        bad = json.loads(json.dumps(good))
        del bad["mixes"][0]["points"]["vpc"]
        assert any("points cover" in e for e in validate_frontier(bad))
        bad = json.loads(json.dumps(good))
        bad["mixes"][0]["points"]["fcfs"]["jain"] = 1.5
        assert any("jain" in e for e in validate_frontier(bad))
        assert validate_frontier({"schema": "nope"})


class TestPolicyRemap:
    def _point(self, n_threads=4):
        from repro.experiments.parallel import SimPoint
        return SimPoint(
            config=baseline_config(n_threads=n_threads, arbiter="vpc"),
            traces=tuple(("spec", "art") for _ in range(n_threads)),
            warmup=1_000, measure=1_000, capacity_policy="vpc",
        )

    def test_apply_policy_families(self):
        from repro.experiments import parallel
        try:
            parallel.configure(policy="fcfs")
            fcfs = parallel.apply_policy(self._point())
            assert fcfs.config.arbiter == "fcfs"
            assert fcfs.capacity_policy == "lru"
            assert fcfs.controller is None
            parallel.configure(policy="lfoc", epoch=2_000)
            lfoc = parallel.apply_policy(self._point())
            assert lfoc.config.arbiter == "vpc"
            assert lfoc.controller == "lfoc"
            assert lfoc.epoch_cycles == 2_000
            # Solo target points are never remapped.
            solo = parallel.apply_policy(self._point(n_threads=1))
            assert solo.controller is None
            assert solo.config.arbiter == "vpc"
        finally:
            parallel.configure(jobs=1, cache=True, lanes=1)

    def test_configure_validation(self):
        from repro.experiments import parallel
        try:
            with pytest.raises(ValueError):
                parallel.configure(policy="sjf")
            with pytest.raises(ValueError):
                parallel.configure(controller="pid")
            with pytest.raises(ValueError):
                parallel.configure(policy="fcfs", controller="lfoc")
            with pytest.raises(ValueError):
                parallel.configure(controller="lfoc", epoch=0)
            with pytest.raises(ValueError):
                parallel.configure(lanes=2, controller="lfoc")
        finally:
            parallel.configure(jobs=1, cache=True, lanes=1)

    def test_lockstep_lanes_reject_controller_points(self):
        from repro.experiments import parallel
        point = self._point()
        point = point.__class__(**{**asdict(point), "controller": "lfoc",
                                   "config": point.config,
                                   "traces": point.traces})
        try:
            parallel.configure(lanes=2)
            with pytest.raises(ValueError):
                parallel.run_points([point, self._point()])
        finally:
            parallel.configure(jobs=1, cache=True, lanes=1)


class TestAcceptance:
    """The PR's golden gate: under a phase-changing fig10-style mix,
    the LFOC policy and the dynamic fairness controller each achieve
    strictly higher Jain fairness than FCFS while keeping aggregate
    IPC within 5% of static VPC.  Everything is deterministic, so the
    inequalities are exact gates, not statistical ones."""

    @pytest.fixture(scope="class")
    def frontier(self):
        from repro.experiments import run_experiment
        return run_experiment("policy-frontier", fast=True)

    def test_figure_document_validates(self, frontier):
        doc = json.loads(json.dumps(frontier.figure))
        assert validate_frontier(doc) == []
        assert doc["policies"] == ["fcfs", "vpc", "lfoc", "dynamic"]

    def test_dynamic_policies_beat_fcfs_on_fairness(self, frontier):
        for mix in frontier.figure["mixes"]:
            points = mix["points"]
            assert points["lfoc"]["jain"] > points["fcfs"]["jain"], mix["mix"]
            assert points["dynamic"]["jain"] > points["fcfs"]["jain"], \
                mix["mix"]

    def test_throughput_within_five_percent_of_static_vpc(self, frontier):
        for mix in frontier.figure["mixes"]:
            points = mix["points"]
            floor = 0.95 * points["vpc"]["aggregate_ipc"]
            assert points["lfoc"]["aggregate_ipc"] >= floor, mix["mix"]
            assert points["dynamic"]["aggregate_ipc"] >= floor, mix["mix"]

    def test_controllers_actually_ran(self, frontier):
        for mix in frontier.figure["mixes"]:
            assert mix["points"]["lfoc"]["epochs"] > 0
            assert mix["points"]["dynamic"]["epochs"] > 0
            assert mix["points"]["fcfs"]["epochs"] == 0
            assert mix["points"]["vpc"]["epochs"] == 0

    def test_deterministic(self, frontier):
        from repro.experiments import run_experiment
        again = run_experiment("policy-frontier", fast=True)
        assert again.rows == frontier.rows
        assert json.dumps(again.figure, sort_keys=True) == \
            json.dumps(frontier.figure, sort_keys=True)


class TestCLI:
    def test_policy_lfoc_end_to_end(self, tmp_path, capsys):
        from repro.cli import main
        log = tmp_path / "qos.json"
        code = main(["art-sixtrack", "mcf", "--policy", "lfoc",
                     "--warmup", "2000", "--cycles", "6000",
                     "--epoch", "2000", "--qos-log", str(log)])
        assert code == 0
        out = capsys.readouterr().out
        assert "qos: lfoc controller, 3 epochs" in out
        doc = json.loads(log.read_text())
        assert validate_qos_decisions(doc) == []
        assert doc["epoch_cycles"] == 2_000

    def test_phased_mix_names_resolve(self):
        # Every workload named by the frontier's mixes is a valid CLI
        # positional (steady or phased).
        from repro.cli import resolve_workload
        for mix in PHASED_MIXES.values():
            for name in mix:
                next(iter(resolve_workload(name, 0)))

    def test_inline_phase_spec(self, capsys):
        from repro.cli import main
        assert main(["phase:art+sixtrack@4000", "gzip",
                     "--warmup", "1000", "--cycles", "2000"]) == 0
        assert "phase:art+sixtrack@4000" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [
        ["art", "mcf", "--policy", "fcfs", "--controller", "lfoc"],
        ["art", "mcf", "--arbiter", "fcfs", "--controller", "fairness"],
        ["art", "mcf", "--epoch", "1000"],
        ["art", "mcf", "--qos-log", "x.json"],
        ["art", "mcf", "--policy", "lfoc", "--epoch", "0"],
    ])
    def test_flag_combinations_rejected(self, argv):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2

    def test_resume_cannot_change_controller(self, tmp_path):
        from repro.cli import main
        ckpt = tmp_path / "c.pkl"
        assert main(["art", "mcf", "--policy", "lfoc",
                     "--warmup", "1000", "--cycles", "4000",
                     "--checkpoint", str(ckpt),
                     "--checkpoint-every", "2000"]) == 0
        with pytest.raises(SystemExit) as exc:
            main(["--resume-checkpoint", str(ckpt), "--policy", "vpc"])
        assert exc.value.code == 2

    def test_resume_preserves_controller_trail(self, tmp_path, capsys):
        from repro.cli import main
        ckpt = tmp_path / "c.pkl"
        log = tmp_path / "qos.json"
        assert main(["art", "mcf", "--policy", "lfoc",
                     "--warmup", "1000", "--cycles", "4000",
                     "--checkpoint", str(ckpt),
                     "--checkpoint-every", "2000"]) == 0
        capsys.readouterr()
        # The snapshot carries the controller; resuming re-finalizes the
        # same decision trail and can still export it.
        assert main(["--resume-checkpoint", str(ckpt),
                     "--qos-log", str(log)]) == 0
        assert "qos: lfoc controller" in capsys.readouterr().out
        assert validate_qos_decisions(json.loads(log.read_text())) == []

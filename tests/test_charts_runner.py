"""Tests for chart rendering and the experiments CLI runner."""

import math

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.charts import numeric_columns, render_bars, render_result
from repro.experiments.runner import main


class TestRenderBars:
    def test_scales_to_max(self):
        text = render_bars(["a", "b"], [1.0, 2.0], "t", width=10)
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_explicit_max(self):
        text = render_bars(["a"], [1.0], "t", width=10, max_value=4.0)
        assert text.splitlines()[1].count("#") == 2  # 1/4 of 10, rounded

    def test_nan_rendered_as_na(self):
        text = render_bars(["a"], [float("nan")], "t")
        assert "(n/a)" in text

    def test_negative_clamped_to_zero(self):
        text = render_bars(["a", "b"], [-1.0, 1.0], "t", width=10)
        assert text.splitlines()[1].count("#") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0], "t")
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0], "t", width=0)

    def test_all_zero_values(self):
        text = render_bars(["a"], [0.0], "t")
        assert "#" not in text


class TestRenderResult:
    def result(self):
        return ExperimentResult(
            "x", "demo", ["name", "ipc", "note"],
            [("alpha", 0.5, "hi"), ("beta", 1.0, "yo")],
        )

    def test_numeric_columns_detected(self):
        assert numeric_columns(self.result()) == ["ipc"]

    def test_charts_every_numeric_column(self):
        text = render_result(self.result())
        assert "[ipc]" in text
        assert "[note]" not in text
        assert "alpha" in text and "beta" in text

    def test_nan_only_column_skipped(self):
        result = ExperimentResult("x", "t", ["k", "v"],
                                  [("a", float("nan"))])
        assert numeric_columns(result) == []


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig4" in capsys.readouterr().out

    def test_run_one_experiment(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "critical_word_total" in out

    def test_chart_mode(self, capsys):
        assert main(["fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[tag]" in out and "#" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

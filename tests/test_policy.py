"""Tests for the feedback share allocator (software policy layer)."""

import pytest

from repro.common.config import VPCAllocation, baseline_config
from repro.policy import FeedbackAllocator
from repro.system.cmp import CMPSystem
from repro.workloads import loads_trace, stores_trace


def make_system(shares=(0.5, 0.5)):
    config = baseline_config(
        n_threads=2, arbiter="vpc",
        vpc=VPCAllocation(list(shares), [0.5, 0.5]),
    )
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    system.run(30_000)   # steady state before control starts
    return system


class TestValidation:
    def test_requires_vpc(self):
        config = baseline_config(n_threads=2, arbiter="fcfs")
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        with pytest.raises(ValueError):
            FeedbackAllocator(system, 0, target_ipc=0.1)

    def test_parameter_checks(self):
        system = make_system()
        with pytest.raises(ValueError):
            FeedbackAllocator(system, 5, target_ipc=0.1)
        with pytest.raises(ValueError):
            FeedbackAllocator(system, 0, target_ipc=0.0)
        with pytest.raises(ValueError):
            FeedbackAllocator(system, 0, 0.1, increase=0.9)
        with pytest.raises(ValueError):
            FeedbackAllocator(system, 0, 0.1, min_share=0.9, max_share=0.5)


class TestControlLoop:
    def test_grows_share_to_meet_target(self):
        """Loads starts at 25% (IPC ~0.078); a 0.2-IPC target needs ~65%."""
        system = make_system(shares=(0.25, 0.75))
        allocator = FeedbackAllocator(
            system, thread_id=0, target_ipc=0.20, epoch_cycles=4_000
        )
        allocator.run(epochs=14)
        assert allocator.converged()
        last = allocator.decisions[-1]
        assert last.observed_ipc >= 0.19
        assert last.share_after > 0.25

    def test_releases_excess_share(self):
        """Loads at 90% overshoots a 0.1-IPC target; the controller
        shrinks its share and the neighbour speeds up."""
        system = make_system(shares=(0.9, 0.1))
        stores_before = system.cores[1].dispatched
        allocator = FeedbackAllocator(
            system, thread_id=0, target_ipc=0.10, epoch_cycles=4_000
        )
        allocator.run(epochs=14)
        last = allocator.decisions[-1]
        assert last.share_after < 0.9
        assert last.observed_ipc >= 0.09   # still meets the target
        assert system.cores[1].dispatched > stores_before

    def test_infeasible_target_pins_at_max(self):
        system = make_system()
        allocator = FeedbackAllocator(
            system, thread_id=0, target_ipc=5.0, epoch_cycles=3_000,
            max_share=0.9,
        )
        allocator.run(epochs=10)
        assert allocator.current_share == pytest.approx(0.9)
        assert allocator.converged()   # pinned counts as converged

    def test_decisions_recorded(self):
        system = make_system()
        allocator = FeedbackAllocator(system, 0, target_ipc=0.1,
                                      epoch_cycles=2_000)
        decision = allocator.epoch()
        assert decision.cycle == system.cycle
        assert decision.share_before == pytest.approx(0.5)

    def test_shares_always_feasible(self):
        """Register writes never over-allocate mid-adjustment."""
        system = make_system(shares=(0.25, 0.75))
        allocator = FeedbackAllocator(system, 0, target_ipc=0.25,
                                      epoch_cycles=2_000)
        allocator.run(epochs=8)
        for resource in ("tag", "data", "bus"):
            assert sum(system.registers.bandwidth[resource]) <= 1.0 + 1e-9

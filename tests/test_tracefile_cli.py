"""Tests for trace-file I/O and the top-level simulation CLI."""

import itertools

import pytest

from repro.cli import main, parse_shares, resolve_workload
from repro.cpu.isa import load, nonmem, store
from repro.workloads.microbench import loads_trace
from repro.workloads.tracefile import (
    format_item,
    parse_line,
    read_trace,
    save_trace,
    trace_from_file,
)


class TestFormatParse:
    def test_roundtrip_each_kind(self):
        for item in (nonmem(7), load(0x1000), load(64, True), store(0x40)):
            assert parse_line(format_item(item)) == item

    def test_hex_and_decimal_addresses(self):
        assert parse_line("L 0x40") == load(64)
        assert parse_line("l 64") == load(64)

    def test_dependent_flag(self):
        assert parse_line("L 0x40 D") == load(64, True)
        with pytest.raises(ValueError):
            parse_line("L 0x40 X")

    def test_junk_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 9"):
            parse_line("Q 12", lineno=9)
        with pytest.raises(ValueError):
            parse_line("N", lineno=1)


class TestFileRoundtrip:
    def test_save_and_read(self, tmp_path):
        path = tmp_path / "trace.txt"
        items = [nonmem(3), load(0x1000), store(0x2000), load(0x3000, True)]
        assert save_trace(items, path) == 4
        assert read_trace(path) == items

    def test_save_infinite_with_limit(self, tmp_path):
        path = tmp_path / "loads.txt"
        written = save_trace(loads_trace(0), path, limit=100)
        assert written == 100
        assert len(read_trace(path)) == 100

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nN 5  # five ops\nL 0x40\n")
        assert read_trace(path) == [nonmem(5), load(64)]

    def test_loop_replay(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace([nonmem(1), load(64)], path)
        replayed = list(itertools.islice(trace_from_file(path, loop=True), 6))
        assert replayed == [nonmem(1), load(64)] * 3

    def test_single_pass_replay(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace([nonmem(1)], path)
        assert list(trace_from_file(path, loop=False)) == [nonmem(1)]

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            list(trace_from_file(path))

    def test_negative_limit_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace([], tmp_path / "x.txt", limit=-1)


class TestCLIHelpers:
    def test_resolve_microbench_and_spec(self):
        assert next(iter(resolve_workload("loads", 0)))
        assert next(iter(resolve_workload("art", 1)))

    def test_resolve_trace_file(self, tmp_path):
        path = tmp_path / "t.txt"
        save_trace([nonmem(1), load(64)], path)
        trace = resolve_workload(f"trace:{path}", 0)
        assert next(iter(trace)) == nonmem(1)

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_workload("doom", 0)

    def test_parse_shares(self):
        assert parse_shares(None, 2) == [0.5, 0.5]
        assert parse_shares("0.75,0.25", 2) == [0.75, 0.25]
        with pytest.raises(ValueError):
            parse_shares("0.5", 2)


class TestCLIEndToEnd:
    def test_two_thread_run(self, capsys):
        exit_code = main([
            "loads", "stores", "--arbiter", "vpc", "--shares", "0.75,0.25",
            "--warmup", "6000", "--cycles", "3000",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "t0 loads" in out and "t1 stores" in out
        assert "L2 utilization" in out

    def test_trace_file_workload(self, capsys, tmp_path):
        path = tmp_path / "t.txt"
        save_trace(loads_trace(0), path, limit=2000)
        exit_code = main([
            f"trace:{path}", "--arbiter", "row-fcfs",
            "--warmup", "2000", "--cycles", "2000",
        ])
        assert exit_code == 0
        assert "trace:" in capsys.readouterr().out

    def test_prefetch_flag(self, capsys):
        exit_code = main([
            "mcf", "--prefetch", "--warmup", "3000", "--cycles", "2000",
        ])
        assert exit_code == 0

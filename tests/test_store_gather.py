"""Unit tests for the store gathering buffer (paper Section 3.1)."""

import pytest

from repro.cache.store_gather import StoreGatherBuffer
from repro.common.records import AccessType, make_request


def store(line, thread=0):
    return make_request(thread, line * 64, AccessType.WRITE, 64)


def load(line, thread=0):
    return make_request(thread, line * 64, AccessType.READ, 64)


class TestGathering:
    def test_same_line_stores_merge(self):
        sgb = StoreGatherBuffer()
        assert sgb.try_add_store(store(1)) == "allocated"
        assert sgb.try_add_store(store(1)) == "merged"
        assert sgb.occupancy == 1
        assert sgb.gathering_rate() == pytest.approx(0.5)

    def test_distinct_lines_allocate(self):
        sgb = StoreGatherBuffer()
        for line in range(5):
            assert sgb.try_add_store(store(line)) == "allocated"
        assert sgb.occupancy == 5
        assert sgb.gathering_rate() == 0.0

    def test_full_buffer_backpressure(self):
        sgb = StoreGatherBuffer(entries=2, high_water=2)
        sgb.try_add_store(store(1))
        sgb.try_add_store(store(2))
        assert sgb.try_add_store(store(3)) == "full"
        assert sgb.try_add_store(store(1)) == "merged"  # merging still works

    def test_merge_count_recorded_on_request(self):
        sgb = StoreGatherBuffer()
        first = store(7)
        sgb.try_add_store(first)
        sgb.try_add_store(store(7))
        sgb.try_add_store(store(7))
        assert first.gathered_stores == 2

    def test_loads_rejected(self):
        with pytest.raises(ValueError):
            StoreGatherBuffer().try_add_store(load(1))


class TestRetireAtN:
    def test_no_retirement_below_high_water(self):
        sgb = StoreGatherBuffer(entries=8, high_water=6)
        for line in range(5):
            sgb.try_add_store(store(line))
        assert not sgb.wants_retire()

    def test_retirement_at_high_water(self):
        sgb = StoreGatherBuffer(entries=8, high_water=6)
        for line in range(6):
            sgb.try_add_store(store(line))
        assert sgb.wants_retire()
        assert sgb.peek_retire().line == 0   # oldest first
        assert sgb.pop_retire().line == 0
        assert not sgb.wants_retire()        # back below the mark

    def test_pop_empty_rejected(self):
        with pytest.raises(RuntimeError):
            StoreGatherBuffer().pop_retire()


class TestReadOverWrite:
    def test_load_bypasses_unrelated_stores(self):
        sgb = StoreGatherBuffer()
        sgb.try_add_store(store(1))
        assert sgb.load_may_bypass(2)

    def test_load_blocked_by_same_line_store(self):
        sgb = StoreGatherBuffer()
        sgb.try_add_store(store(1))
        assert not sgb.load_may_bypass(1)

    def test_row_inversion_at_high_water(self):
        sgb = StoreGatherBuffer(entries=8, high_water=3)
        for line in range(3):
            sgb.try_add_store(store(line))
        assert not sgb.load_may_bypass(99)   # occupancy >= high water
        sgb.pop_retire()
        assert sgb.load_may_bypass(99)


class TestPartialFlush:
    def test_flush_marks_conflicting_and_older(self):
        sgb = StoreGatherBuffer()
        for line in (1, 2, 3):
            sgb.try_add_store(store(line))
        assert sgb.request_flush(2)
        assert sgb.wants_retire()            # flush forces retirement
        assert sgb.pop_retire().line == 1    # older than the conflict
        assert sgb.pop_retire().line == 2    # the conflicting store
        assert not sgb.wants_retire()        # line 3 is younger: stays

    def test_flush_without_conflict(self):
        sgb = StoreGatherBuffer()
        sgb.try_add_store(store(1))
        assert not sgb.request_flush(9)
        assert not sgb.wants_retire()


class TestConstruction:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            StoreGatherBuffer(entries=0)
        with pytest.raises(ValueError):
            StoreGatherBuffer(entries=4, high_water=5)

"""Integration tests: the paper's headline behaviours on the full CMP.

These run the complete simulated machine (cores, L1s, crossbar, banked
L2, DRAM) and assert the qualitative results of Section 5 — starvation
under RoW-FCFS, the FCFS 67/33 split, precise VPC bandwidth division,
and QoS against private-machine targets.
"""

import pytest

import repro
from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.system import CMPSystem, run_simulation
from repro.workloads import loads_trace, spec_trace, stores_trace

WARMUP = 35_000
MEASURE = 25_000


def run_loads_stores(arbiter, stores_share=None, **kwargs):
    if stores_share is None:
        vpc = VPCAllocation.equal(2)
    else:
        vpc = VPCAllocation([1.0 - stores_share, stores_share], [0.5, 0.5])
    config = baseline_config(n_threads=2, arbiter=arbiter, vpc=vpc)
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)], **kwargs)
    return run_simulation(system, warmup=WARMUP, measure=MEASURE)


class TestBaselineArbiters:
    def test_row_fcfs_starves_stores(self):
        """Section 3.1/5.3: RoW-FCFS lets a load stream starve stores —
        'in a real system, this would be a critical design flaw'."""
        result = run_loads_stores("row-fcfs")
        assert result.ipcs[1] == pytest.approx(0.0, abs=0.005)
        assert result.ipcs[0] > 0.25

    def test_fcfs_gives_stores_double_bandwidth(self):
        """Uniform interleaving + writes costing 2x data-array time =>
        Stores gets ~67% of the data array, Loads ~33% (Section 5.3)."""
        result = run_loads_stores("fcfs")
        loads_ipc, stores_ipc = result.ipcs
        assert stores_ipc == pytest.approx(loads_ipc, rel=0.1)
        assert result.utilizations["data"] > 0.95

    def test_loads_alone_saturates_two_banks(self):
        """Figure 5: the Loads microbenchmark fully utilizes 2 banks."""
        config = baseline_config(n_threads=1, arbiter="row-fcfs",
                                 vpc=VPCAllocation([1.0], [1.0]))
        system = CMPSystem(config, [loads_trace(0)])
        result = run_simulation(system, warmup=WARMUP, measure=MEASURE)
        assert result.utilizations["data"] > 0.95
        # Balanced design: data bus utilization tracks the data array.
        assert result.utilizations["bus"] == pytest.approx(
            result.utilizations["data"], abs=0.05
        )


class TestVPCBandwidthDivision:
    def test_shares_divide_bandwidth_linearly(self):
        """Figure 8: every VPC point gives each thread its share."""
        full_loads = run_loads_stores("vpc", stores_share=0.0).ipcs[0]
        full_stores = run_loads_stores("vpc", stores_share=1.0).ipcs[1]
        for share in (0.25, 0.5, 0.75):
            result = run_loads_stores("vpc", stores_share=share)
            assert result.ipcs[0] == pytest.approx(
                full_loads * (1 - share), rel=0.08
            )
            assert result.ipcs[1] == pytest.approx(
                full_stores * share, rel=0.08
            )

    def test_vpc_meets_private_machine_target(self):
        """Loads at phi=.75 must match a private cache with 1/.75 latencies."""
        shared = run_loads_stores("vpc", stores_share=0.25)
        config = baseline_config(n_threads=2)
        private = private_equivalent(config, phi=0.75, beta=0.5)
        target = run_simulation(
            CMPSystem(private, [loads_trace(0)]), warmup=WARMUP, measure=MEASURE
        ).ipcs[0]
        assert shared.ipcs[0] >= target * 0.95

    def test_work_conservation_with_idle_partner(self):
        """A thread allocated 25% but running alone gets everything."""
        import itertools
        from repro.cpu.isa import nonmem
        idle = iter([nonmem(1)])   # finishes immediately
        vpc = VPCAllocation([0.75, 0.25], [0.5, 0.5])
        config = baseline_config(n_threads=2, arbiter="vpc", vpc=vpc)
        system = CMPSystem(config, [idle, stores_trace(1)])
        result = run_simulation(system, warmup=WARMUP, measure=MEASURE)
        solo = run_loads_stores("vpc", stores_share=1.0).ipcs[1]
        assert result.ipcs[1] == pytest.approx(solo, rel=0.05)


class TestRuntimeReconfiguration:
    def test_register_write_moves_bandwidth(self):
        vpc = VPCAllocation([0.75, 0.25], [0.5, 0.5])
        config = baseline_config(n_threads=2, arbiter="vpc", vpc=vpc)
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        system.run(WARMUP)
        before = [core.dispatched for core in system.cores]
        system.run(MEASURE)
        mid = [core.dispatched for core in system.cores]
        # Swap the allocation: stores now gets 75%.
        system.registers.write_bandwidth(0, 0.25)
        system.registers.write_bandwidth(1, 0.75)
        system.run(MEASURE)
        after = [core.dispatched for core in system.cores]
        loads_phase1 = mid[0] - before[0]
        loads_phase2 = after[0] - mid[0]
        stores_phase1 = mid[1] - before[1]
        stores_phase2 = after[1] - mid[1]
        assert loads_phase2 < loads_phase1 * 0.5
        assert stores_phase2 > stores_phase1 * 2.0


class TestCapacityIsolation:
    def test_l2_occupancy_respects_quotas(self):
        """After sustained pressure from an aggressive thread, a modest
        thread retains at least its quota of lines."""
        config = baseline_config(n_threads=2, arbiter="vpc",
                                 vpc=VPCAllocation.equal(2))
        system = CMPSystem(
            config, [spec_trace("gcc", 0), spec_trace("art", 1)]
        )
        system.run(60_000)
        ways = config.l2.ways
        for bank in system.banks:
            for cset in bank.array._sets:
                valid = sum(cset.valid)
                if valid < ways:
                    continue  # set not yet full: quotas not in play
                for tid in range(2):
                    # A full set may hold at most ways - quota_other lines
                    # of the other thread.
                    assert cset.occupancy(tid) <= ways - 0  # sanity
        # The real invariant is checked statistically: neither thread is
        # squeezed out of the cache entirely.
        occupancy = [0, 0]
        for bank in system.banks:
            counts = bank.array.occupancy_by_thread(2)
            occupancy[0] += counts[0]
            occupancy[1] += counts[1]
        assert min(occupancy) > 0


class TestSystemConstruction:
    def test_trace_count_must_match(self):
        config = baseline_config(n_threads=2)
        with pytest.raises(ValueError):
            CMPSystem(config, [loads_trace(0)])

    def test_unknown_capacity_policy(self):
        config = baseline_config(n_threads=2)
        with pytest.raises(ValueError):
            CMPSystem(config, [loads_trace(0), stores_trace(1)],
                      capacity_policy="belady")

    def test_bank_routing_by_line(self):
        config = baseline_config(n_threads=2)
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        assert system.bank_of(0) == 0
        assert system.bank_of(1) == 1
        assert system.bank_of(2) == 0

"""Benchmark: regenerate the headline heterogeneous-mix comparison."""

from _util import regenerate


def test_bench_fig10(benchmark):
    result = regenerate(benchmark, "fig10")
    average = result.row_by("mix", "average")
    assert average[result.headers.index("min_gain_%")] > 0

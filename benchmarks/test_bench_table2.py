"""Benchmark: regenerate Table 2 (microbenchmark characterization)."""

from _util import regenerate


def test_bench_table2(benchmark):
    result = regenerate(benchmark, "table2")
    assert {row[0] for row in result.rows} == {"loads", "stores"}

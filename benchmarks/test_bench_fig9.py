"""Benchmark: regenerate Figure 9 (subject vs Stores backgrounds)."""

from _util import regenerate


def test_bench_fig9(benchmark):
    result = regenerate(benchmark, "fig9")
    fcfs = result.headers.index("fcfs_norm")
    vpc = result.headers.index("vpc50_norm")
    crushed = [row for row in result.rows if row[fcfs] < 0.6]
    assert crushed and all(row[vpc] > row[fcfs] for row in crushed)

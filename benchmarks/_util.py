"""Shared helper for the per-artifact benchmarks."""

from repro.experiments import run_experiment


def regenerate(benchmark, exp_id: str):
    """Time one fast-mode regeneration of ``exp_id`` and print its table."""
    result = benchmark.pedantic(
        run_experiment, args=(exp_id,), kwargs={"fast": True},
        iterations=1, rounds=1,
    )
    print()
    print(result.format_table())
    return result

"""Benchmark: regenerate Figure 7 (L2 writes and store gathering)."""

from _util import regenerate


def test_bench_fig7(benchmark):
    result = regenerate(benchmark, "fig7")
    gather = result.column("gathering_rate")
    assert sum(gather) / len(gather) > 0.5

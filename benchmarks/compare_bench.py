"""Compare a pytest-benchmark JSON run against a stored baseline.

CI runs the engine benchmarks with ``--benchmark-json`` every push and
then calls this script to hold the line on throughput: any benchmark
whose median runtime regressed more than the threshold (default 20%)
against ``benchmarks/BENCH_engine.json`` fails the job.  Benchmarks
present on only one side are reported but never fail the run — adding
a benchmark must not require regenerating the baseline in the same PR.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 0.20] [--history benchmarks/BENCH_history.jsonl]

``--history`` appends one JSONL record of the current run's medians per
invocation — an append-only bench trajectory (a sibling of the
run-history ledger, ``repro history``) that lets a later session plot
throughput over time without trawling CI artifacts.  Missing or empty
benchmark files degrade gracefully: a run with nothing to compare
reports the fact and exits 0 instead of tripping CI.

The baseline is refreshed deliberately (run the suite with
``--benchmark-json=benchmarks/BENCH_engine.json`` and commit) whenever
a PR intentionally trades throughput, so the diff shows the new floor.

Besides the regression gate the report prints per-kernel speedups:
for each (cycle-kernel, other-kernel) bench pair that times the same
system, the ratio of medians from the *current* run.  These rows are
informational — the kernels are bit-identical, so a speedup shift is a
perf observation, not a correctness failure — but they make the batch
kernel's two operating points visible in every CI log: the dense
2-thread microbench (worst case, ~1.7x) and the single-thread
target-IPC point (representative case, ~3-4x).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_medians(path: str) -> Dict[str, float]:
    """Benchmark name -> median seconds from a pytest-benchmark JSON.

    An unreadable or non-JSON file (a crashed bench run leaves a torn
    artifact) yields an empty dict; callers treat "no data" uniformly.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    medians = {}
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        median = stats.get("median")
        if median:
            medians[bench["name"]] = float(median)
    return medians


# (baseline bench, contender bench, label) triples timing the same
# simulated system under different kernels.  Ratios are computed within
# one JSON so machine speed cancels out.
KERNEL_PAIRS = (
    ("test_bench_simulation_cycle_kernel",
     "test_bench_simulation_cycles_per_second",
     "event/cycle  dense 2t"),
    ("test_bench_simulation_cycle_kernel",
     "test_bench_simulation_batch_kernel",
     "batch/cycle  dense 2t (worst case)"),
    ("test_bench_uniprocessor_point_cycle_kernel",
     "test_bench_uniprocessor_point_batch_kernel",
     "batch/cycle  uniprocessor target-IPC point"),
)


def kernel_speedups(medians: Dict[str, float]) -> None:
    """Print cycle-kernel-relative speedups from one run's medians."""
    rows = [(label, medians[ref] / medians[new])
            for ref, new, label in KERNEL_PAIRS
            if ref in medians and new in medians]
    if not rows:
        return
    width = max(len(label) for label, _ in rows)
    print("kernel speedups (median cycle-kernel time / kernel time):")
    for label, speedup in rows:
        print(f"  {label:<{width}}  {speedup:5.2f}x")


def compare(baseline: Dict[str, float], current: Dict[str, float],
            threshold: float) -> int:
    """Print a per-benchmark verdict table; return the exit code."""
    failures = 0
    shared = sorted(set(baseline) & set(current))
    if not shared:
        # An empty intersection means there is no floor to hold — a
        # renamed suite, an empty current run, or a torn artifact.  CI
        # must not fail for a comparison that never happened, so report
        # loudly and pass.
        print("compare_bench: no benchmarks in common; nothing to hold "
              f"({len(baseline)} baseline, {len(current)} current)",
              file=sys.stderr)
        return 0
    width = max(len(name) for name in shared)
    for name in shared:
        old, new = baseline[name], current[name]
        ratio = new / old
        regressed = ratio > 1.0 + threshold
        verdict = "REGRESSED" if regressed else "ok"
        print(f"  {name:<{width}}  {old * 1e3:9.3f}ms -> {new * 1e3:9.3f}ms "
              f"({ratio:6.2f}x)  {verdict}")
        if regressed:
            failures += 1
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  (new benchmark, no baseline)")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:<{width}}  (baseline only, not run)")
    kernel_speedups(current)
    if failures:
        print(f"{failures} benchmark(s) regressed more than "
              f"{threshold:.0%} vs the stored baseline", file=sys.stderr)
        return 1
    print(f"all {len(shared)} shared benchmarks within {threshold:.0%} "
          "of baseline")
    return 0


def append_history(path: str, medians: Dict[str, float],
                   label: str = "") -> None:
    """Append this run's medians to the bench-trajectory JSONL ledger.

    One ``write()`` of one line per run, so a crash mid-append leaves
    every prior record whole (same contract as the run-history ledger).
    """
    record = {"schema": "repro.bench-history/1", "medians": medians}
    if label:
        record["label"] = label
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on >threshold median regressions vs a stored "
                    "pytest-benchmark baseline.")
    parser.add_argument("baseline", help="stored baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="append the current run's medians to this "
                             "JSONL bench trajectory")
    parser.add_argument("--label", default="", metavar="TEXT",
                        help="free-form tag recorded with --history "
                             "(e.g. a commit SHA)")
    args = parser.parse_args(argv)
    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    if args.history is not None and current:
        append_history(args.history, current, label=args.label)
        print(f"compare_bench: appended {len(current)} medians "
              f"to {args.history}")
    if not baseline:
        # A fresh clone (or a branch that intentionally dropped the
        # baseline) has no floor to hold; that is a skip, not a failure.
        print(f"compare_bench: no baseline at {args.baseline}, skipping "
              "comparison (commit one with --benchmark-json to enable)")
        return 0
    return compare(baseline, current, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())

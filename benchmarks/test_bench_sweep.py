"""Benchmark: regenerate the bank-count design-space sweep."""

from _util import regenerate


def test_bench_sweep_designspace(benchmark):
    result = regenerate(benchmark, "sweep-designspace")
    assert result.rows


def test_bench_sweep_smt(benchmark):
    result = regenerate(benchmark, "sweep-smt")
    assert len(result.rows) == 3

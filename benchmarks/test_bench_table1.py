"""Benchmark: regenerate Table 1 (system configuration)."""

from _util import regenerate


def test_bench_table1(benchmark):
    result = regenerate(benchmark, "table1")
    assert any("L2" in row[0] for row in result.rows)

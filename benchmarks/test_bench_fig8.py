"""Benchmark: regenerate Figure 8 (Loads+Stores arbiter sweep)."""

from _util import regenerate


def test_bench_fig8(benchmark):
    result = regenerate(benchmark, "fig8")
    row_fcfs = result.row_by("policy", "ROW-FCFS")
    assert row_fcfs[result.headers.index("stores_ipc")] < 0.08

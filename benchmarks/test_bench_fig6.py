"""Benchmark: regenerate Figure 6 (SPEC L2 utilizations)."""

from _util import regenerate


def test_bench_fig6(benchmark):
    result = regenerate(benchmark, "fig6")
    data = result.column("data_array")
    assert max(data) > 3 * min(data)

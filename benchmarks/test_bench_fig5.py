"""Benchmark: regenerate Figure 5 (microbenchmark utilization vs banks)."""

from _util import regenerate


def test_bench_fig5(benchmark):
    result = regenerate(benchmark, "fig5")
    row = result.row_by("config", "loads 2B")
    assert row[result.headers.index("data_array")] > 0.9

"""Benchmark: regenerate Figure 4 (cache timing diagram)."""

from _util import regenerate


def test_bench_fig4(benchmark):
    result = regenerate(benchmark, "fig4")
    critical = result.headers.index("critical_word_total")
    assert all(row[critical] == 16 for row in result.rows)

"""Benchmarks: the three ablation studies from DESIGN.md."""

from _util import regenerate


def test_bench_ablation_reorder(benchmark):
    result = regenerate(benchmark, "ablation-reorder")
    loads = result.column("loads_ipc")
    assert abs(loads[0] - loads[1]) / max(loads) < 0.15


def test_bench_ablation_capacity(benchmark):
    result = regenerate(benchmark, "ablation-capacity")
    hit = result.headers.index("read_hit_rate")
    assert result.row_by("capacity_policy", "vpc")[hit] > \
        result.row_by("capacity_policy", "lru")[hit]


def test_bench_ablation_preempt(benchmark):
    result = regenerate(benchmark, "ablation-preempt")
    assert all(row[result.headers.index("normalized")] > 0.8
               for row in result.rows)


def test_bench_ablation_memory(benchmark):
    result = regenerate(benchmark, "ablation-memory")
    ipc = result.headers.index("subject_ipc")
    fq = result.row_by("channels", "shared-fq")[ipc]
    fcfs = result.row_by("channels", "shared-fcfs")[ipc]
    assert fq > fcfs


def test_bench_ablation_fairness(benchmark):
    result = regenerate(benchmark, "ablation-fairness")
    ipcs = result.column("mcf_ipc")
    assert min(ipcs) > 0   # both policies keep the subject alive

"""Benchmarks: raw simulator and arbiter throughput (not a paper artifact,
but the number that governs every experiment's wall-clock)."""

from repro.common.config import VPCAllocation, baseline_config
from repro.core.arbiter import ArbiterEntry
from repro.core.vpc_arbiter import VPCArbiter
from repro.system.cmp import CMPSystem
from repro.workloads import loads_trace, stores_trace


def test_bench_simulation_cycles_per_second(benchmark):
    """Full 2-thread CMP: processor cycles simulated per wall second
    (default skip-ahead event kernel)."""
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    system.run(5_000)  # warm the structures out of the timing loop
    cycles = 10_000
    benchmark.pedantic(system.run, args=(cycles,), iterations=1, rounds=3)


def test_bench_simulation_cycle_kernel(benchmark):
    """The same system under the reference cycle-by-cycle kernel — the
    baseline the event kernel's speedup is measured against."""
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)],
                       kernel="cycle")
    system.run(5_000)
    cycles = 10_000
    benchmark.pedantic(system.run, args=(cycles,), iterations=1, rounds=3)


def test_bench_experiment_point_pipeline(benchmark):
    """End-to-end experiment wall-clock through the point runner: one
    fast-mode fig8 regeneration (shared runs + private targets), result
    cache pinned off so the timing is pure simulation + dispatch."""
    from repro.experiments import parallel, run_experiment

    parallel.configure(jobs=1, cache=False)
    try:
        benchmark.pedantic(
            run_experiment, args=("fig8",), kwargs={"fast": True},
            iterations=1, rounds=1,
        )
    finally:
        parallel.configure(jobs=1, cache=True)


def test_bench_vpc_arbiter_decision_rate(benchmark):
    """Enqueue+select throughput of the VPC arbiter alone."""
    arbiter = VPCArbiter(4, [0.25] * 4, 8)

    def churn():
        for i in range(1_000):
            arbiter.enqueue(
                ArbiterEntry(thread_id=i % 4, payload=None,
                             is_write=bool(i & 1),
                             service_quanta=2 if i & 1 else 1),
                i,
            )
            arbiter.select(i)

    benchmark.pedantic(churn, iterations=1, rounds=5)

"""Benchmarks: raw simulator and arbiter throughput (not a paper artifact,
but the number that governs every experiment's wall-clock)."""

import time

from repro.common.config import VPCAllocation, baseline_config
from repro.core.arbiter import ArbiterEntry
from repro.core.vpc_arbiter import VPCArbiter
from repro.system.cmp import CMPSystem
from repro.workloads import loads_trace, stores_trace


def test_bench_simulation_cycles_per_second(benchmark):
    """Full 2-thread CMP: processor cycles simulated per wall second
    (default skip-ahead event kernel)."""
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    system.run(5_000)  # warm the structures out of the timing loop
    cycles = 10_000
    benchmark.pedantic(system.run, args=(cycles,), iterations=1, rounds=3)


def test_bench_simulation_cycle_kernel(benchmark):
    """The same system under the reference cycle-by-cycle kernel — the
    baseline the event kernel's speedup is measured against."""
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)],
                       kernel="cycle")
    system.run(5_000)
    cycles = 10_000
    benchmark.pedantic(system.run, args=(cycles,), iterations=1, rounds=3)


def test_bench_simulation_batch_kernel(benchmark):
    """The same dense system under the batched SoA kernel.  This is the
    batch kernel's *worst case* — both threads stay runnable, so almost
    no whole-cycle jumps fire and the win comes only from selective
    component activation (~1.7x over the cycle kernel here)."""
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)],
                       kernel="batch")
    system.run(5_000)
    cycles = 10_000
    benchmark.pedantic(system.run, args=(cycles,), iterations=1, rounds=3)


def _uniprocessor_point(kernel):
    """The single-thread private-equivalent machine every QoS experiment
    runs once per thread to obtain target IPCs (Sec. 5 methodology) —
    the *representative* batch-kernel case: long DRAM stalls with one
    core make whole-cycle jumps dominate."""
    from repro.common.config import private_equivalent
    from repro.workloads.profiles import spec_trace

    config = private_equivalent(baseline_config(n_threads=4), 0.25, 0.25)
    system = CMPSystem(config, [spec_trace("mcf", 0)], kernel=kernel)
    system.run(5_000)
    return system


def test_bench_uniprocessor_point_cycle_kernel(benchmark):
    """Target-IPC point under the reference cycle kernel."""
    system = _uniprocessor_point("cycle")
    benchmark.pedantic(system.run, args=(10_000,), iterations=1, rounds=3)


def test_bench_uniprocessor_point_batch_kernel(benchmark):
    """Target-IPC point under the batch kernel (3-4x over cycle: mcf's
    low MLP leaves the lone core stalled most cycles, all skippable)."""
    system = _uniprocessor_point("batch")
    benchmark.pedantic(system.run, args=(10_000,), iterations=1, rounds=3)


def test_bench_experiment_point_pipeline(benchmark):
    """End-to-end experiment wall-clock through the point runner: one
    fast-mode fig8 regeneration (shared runs + private targets), result
    cache pinned off so the timing is pure simulation + dispatch."""
    from repro.experiments import parallel, run_experiment

    parallel.configure(jobs=1, cache=False)
    try:
        benchmark.pedantic(
            run_experiment, args=("fig8",), kwargs={"fast": True},
            iterations=1, rounds=1,
        )
    finally:
        parallel.configure(jobs=1, cache=True)


def _fresh_system(warm=5_000):
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    system.run(warm)
    return system


def _force_untraced(system):
    """Strip every telemetry hook, mirroring ``attach_telemetry`` — the
    reference 'engine baseline' even if tracing ever became default-on."""
    system.telemetry = None
    for arbiters in system._vpc_arbiters.values():
        for arbiter in arbiters:
            arbiter._trace = None
    for bank in system.banks:
        bank._trace = None
        bank.array.policy._trace = None
    system.crossbar._trace = None
    for channel in system.memory.channels:
        channel._trace = None
    for core in system.cores:
        mshrs = getattr(core, "mshrs", None)
        if mshrs is not None:
            mshrs._trace = None
    if system.l3 is not None:
        system.l3.array.policy._trace = None
    return system


def test_trace_disabled_overhead_under_two_percent():
    """The zero-overhead-when-disabled contract (docs/ARCHITECTURE.md
    "Observability"): a default-constructed system — tracing disabled —
    must run within 2% of the forcibly-untraced engine baseline.
    Interleaved min-of-rounds cancels clock drift and warmup effects;
    this trips if default construction ever attaches a bus or the
    disabled path grows beyond its one ``is not None`` guard."""
    def timed(system, cycles=2_000):
        start = time.perf_counter()
        system.run(cycles)
        return time.perf_counter() - start

    # One steady-state system per side (loads/stores are homogeneous
    # infinite streams, so every chunk simulates statistically identical
    # work).  Each round interleaves many short chunks in alternating
    # order so CPU-frequency and scheduler drift hit both sides equally,
    # and the verdict is the *best* round ratio: one clean round proves
    # the disabled path is not systematically slower.
    baseline_system = _force_untraced(_fresh_system())
    disabled_system = _fresh_system()
    ratios = []
    for _ in range(6):
        baseline_total = disabled_total = 0.0
        for chunk_index in range(10):
            if chunk_index % 2 == 0:
                baseline_total += timed(baseline_system)
                disabled_total += timed(disabled_system)
            else:
                disabled_total += timed(disabled_system)
                baseline_total += timed(baseline_system)
        ratios.append(disabled_total / baseline_total)
    assert min(ratios) <= 1.02, (
        f"tracing-disabled engine is >2% slower than the untraced "
        f"baseline in every round: ratios {[f'{r:.3f}' for r in ratios]}"
    )


def _force_unaccounted(system):
    """Strip every cycle-accounting hook, mirroring
    ``attach_cycle_accounting`` — the reference engine baseline even if
    accounting ever became default-on."""
    system.cycle_accounting = None
    for arbiters in system._vpc_arbiters.values():
        for arbiter in arbiters:
            arbiter._acct = None
    for bank in system.banks:
        bank._acct = None
    for core in system.cores:
        core._acct = None
        core.mshrs._acct = None
    for channel in system.memory.channels:
        channel._acct = None
    return system


def test_accounting_disabled_overhead_under_two_percent():
    """The CPI-stack analog of the tracing guard above (ISSUE 7,
    docs/ARCHITECTURE.md "Cycle accounting"): a default-constructed
    system — accounting disabled — must run within 2% of the forcibly
    unaccounted engine baseline.  Same interleaved min-of-rounds
    harness; this trips if default construction ever attaches a
    CycleAccounting or a hook grows beyond its one ``is not None``
    guard."""
    def timed(system, cycles=2_000):
        start = time.perf_counter()
        system.run(cycles)
        return time.perf_counter() - start

    baseline_system = _force_unaccounted(_fresh_system())
    disabled_system = _fresh_system()
    ratios = []
    for _ in range(6):
        baseline_total = disabled_total = 0.0
        for chunk_index in range(10):
            if chunk_index % 2 == 0:
                baseline_total += timed(baseline_system)
                disabled_total += timed(disabled_system)
            else:
                disabled_total += timed(disabled_system)
                baseline_total += timed(baseline_system)
        ratios.append(disabled_total / baseline_total)
    assert min(ratios) <= 1.02, (
        f"accounting-disabled engine is >2% slower than the unaccounted "
        f"baseline in every round: ratios {[f'{r:.3f}' for r in ratios]}"
    )


def _force_untraced_requests(system):
    """Strip every request-tracing hook, mirroring
    ``attach_request_tracing`` — the reference engine baseline even if
    tracing ever became default-on."""
    system.request_tracer = None
    for arbiters in system._vpc_arbiters.values():
        for arbiter in arbiters:
            arbiter._rtrace = None
    for bank in system.banks:
        bank._rtrace = None
    for core in system.cores:
        core._rtrace = None
    for channel in system.memory.channels:
        channel._rtrace = None
    return system


def test_requests_disabled_overhead_under_two_percent():
    """The request-tracing analog of the guards above (ISSUE 9,
    docs/ARCHITECTURE.md "Request tracing"): a default-constructed
    system — tracing disabled — must run within 2% of the forcibly
    untraced engine baseline.  Same interleaved min-of-rounds harness;
    this trips if default construction ever attaches a RequestTracer
    or a journey hook grows beyond its one ``is not None`` guard."""
    def timed(system, cycles=2_000):
        start = time.perf_counter()
        system.run(cycles)
        return time.perf_counter() - start

    baseline_system = _force_untraced_requests(_fresh_system())
    disabled_system = _fresh_system()
    ratios = []
    for _ in range(6):
        baseline_total = disabled_total = 0.0
        for chunk_index in range(10):
            if chunk_index % 2 == 0:
                baseline_total += timed(baseline_system)
                disabled_total += timed(disabled_system)
            else:
                disabled_total += timed(disabled_system)
                baseline_total += timed(baseline_system)
        ratios.append(disabled_total / baseline_total)
    assert min(ratios) <= 1.02, (
        f"request-tracing-disabled engine is >2% slower than the "
        f"untraced baseline in every round: ratios "
        f"{[f'{r:.3f}' for r in ratios]}"
    )


def _serve_disabled_step(system, cycles, feed=None, on_window=None):
    """The exact control flow the live plane (``--serve``) adds to the
    hot drivers when it is *off*: None-guards around an unchanged
    ``run()`` (see run_simulation / run_point).  Anything heavier than
    these two tests would break the disabled-path contract."""
    if feed is not None and on_window is None:
        raise ValueError("a live feed requires a window callback")
    if on_window is not None:
        raise ValueError("benchmark covers the disabled path only")
    system.run(cycles)


def test_serve_disabled_overhead_under_two_percent():
    """The --serve analog of the tracing guard above: with no telemetry
    server configured, the engine must run within 2% of a bare ``run()``
    loop.  Same interleaved min-of-rounds harness; this trips if the
    streaming hooks ever grow eager work (snapshotting, queue probes)
    on the disabled path instead of staying behind ``is not None``."""
    def timed_bare(system, cycles=2_000):
        start = time.perf_counter()
        system.run(cycles)
        return time.perf_counter() - start

    def timed_disabled(system, cycles=2_000):
        start = time.perf_counter()
        _serve_disabled_step(system, cycles)
        return time.perf_counter() - start

    baseline_system = _fresh_system()
    disabled_system = _fresh_system()
    ratios = []
    for _ in range(6):
        baseline_total = disabled_total = 0.0
        for chunk_index in range(10):
            if chunk_index % 2 == 0:
                baseline_total += timed_bare(baseline_system)
                disabled_total += timed_disabled(disabled_system)
            else:
                disabled_total += timed_disabled(disabled_system)
                baseline_total += timed_bare(baseline_system)
        ratios.append(disabled_total / baseline_total)
    assert min(ratios) <= 1.02, (
        f"serve-disabled engine is >2% slower than the bare run loop "
        f"in every round: ratios {[f'{r:.3f}' for r in ratios]}"
    )


def _resilience_disabled_step(system, cycles, metrics=None, checkpoint=None):
    """The exact control flow ``continue_measurement`` adds to the hot
    path when neither metrics nor a checkpointer is configured: one
    combined None-test in front of an unchanged ``run()``.  Anything
    heavier than this would break the disabled-path contract."""
    if metrics is None and checkpoint is None:
        system.run(cycles)
    else:
        raise ValueError("benchmark covers the disabled path only")


def test_resilience_disabled_overhead_under_two_percent():
    """The checkpointing analog of the guards above (docs/ARCHITECTURE.md
    "Resilience"): with no ``--checkpoint-every`` / run-dir configured,
    the measurement loop must run within 2% of a bare ``run()`` loop.
    Same interleaved min-of-rounds harness; this trips if checkpointing
    ever grows eager work (snapshot probes, journal writes, chunked
    stepping) on the disabled path instead of staying behind the single
    fast-path test in ``continue_measurement``."""
    def timed_bare(system, cycles=2_000):
        start = time.perf_counter()
        system.run(cycles)
        return time.perf_counter() - start

    def timed_disabled(system, cycles=2_000):
        start = time.perf_counter()
        _resilience_disabled_step(system, cycles)
        return time.perf_counter() - start

    baseline_system = _fresh_system()
    disabled_system = _fresh_system()
    ratios = []
    for _ in range(6):
        baseline_total = disabled_total = 0.0
        for chunk_index in range(10):
            if chunk_index % 2 == 0:
                baseline_total += timed_bare(baseline_system)
                disabled_total += timed_disabled(disabled_system)
            else:
                disabled_total += timed_disabled(disabled_system)
                baseline_total += timed_bare(baseline_system)
        ratios.append(disabled_total / baseline_total)
    assert min(ratios) <= 1.02, (
        f"resilience-disabled measurement loop is >2% slower than the "
        f"bare run loop in every round: ratios {[f'{r:.3f}' for r in ratios]}"
    )


def _controller_disabled_step(system, cycles, metrics=None, checkpoint=None):
    """The exact control flow the QoS control plane adds to the hot
    measurement loop when no controller is attached: reading the (None)
    ``system.qos_controller`` attribute into the combined fast-path test
    of ``continue_measurement``, in front of an unchanged ``run()``.
    Anything heavier than this — epoch arithmetic, chunk clamping —
    would break the disabled-path contract."""
    controller = system.qos_controller
    if metrics is None and checkpoint is None and controller is None:
        system.run(cycles)
    else:
        raise ValueError("benchmark covers the disabled path only")


def test_controller_disabled_overhead_under_two_percent():
    """The QoS-control-plane analog of the guards above (ISSUE 10,
    docs/ARCHITECTURE.md "QoS control plane"): with no controller
    attached, the measurement loop must run within 2% of a bare
    ``run()`` loop.  Same interleaved min-of-rounds harness; this trips
    if the epoch hook ever grows eager work (epoch modulo math, chunked
    stepping, collector probes) on the disabled path instead of staying
    behind the single fast-path ``is None`` test."""
    def timed_bare(system, cycles=2_000):
        start = time.perf_counter()
        system.run(cycles)
        return time.perf_counter() - start

    def timed_disabled(system, cycles=2_000):
        start = time.perf_counter()
        _controller_disabled_step(system, cycles)
        return time.perf_counter() - start

    baseline_system = _fresh_system()
    disabled_system = _fresh_system()
    ratios = []
    for _ in range(6):
        baseline_total = disabled_total = 0.0
        for chunk_index in range(10):
            if chunk_index % 2 == 0:
                baseline_total += timed_bare(baseline_system)
                disabled_total += timed_disabled(disabled_system)
            else:
                disabled_total += timed_disabled(disabled_system)
                baseline_total += timed_bare(baseline_system)
        ratios.append(disabled_total / baseline_total)
    assert min(ratios) <= 1.02, (
        f"controller-disabled measurement loop is >2% slower than the "
        f"bare run loop in every round: ratios {[f'{r:.3f}' for r in ratios]}"
    )


def _spans_alerts_disabled_step(system, cycles, span_ctx=None, engine=None):
    """The exact control flow the host-span tracer and alert engine add
    to the hot drivers when both are *off*: None-guards around an
    unchanged ``run()`` (see run_point's worker-span wrap and
    LiveRun._publish's engine tap).  Spans wrap whole points and alerts
    evaluate per published event, so the per-cycle path is untouched —
    anything heavier than these tests would break the disabled-path
    contract."""
    worker_tracer = None
    if span_ctx is not None:
        raise ValueError("benchmark covers the disabled path only")
    if engine is not None:
        raise ValueError("benchmark covers the disabled path only")
    system.run(cycles)
    if worker_tracer is not None:
        raise ValueError("unreachable on the disabled path")


def test_spans_alerts_disabled_overhead_under_two_percent():
    """The host-span/alert analog of the guards above (ISSUE 8,
    docs/ARCHITECTURE.md "Fleet observability"): with no ``--spans``
    tracer and no ``--alerts`` engine configured, the engine must run
    within 2% of a bare ``run()`` loop.  Same interleaved
    min-of-rounds harness; this trips if span creation or alert
    evaluation ever grows eager work (id allocation, rule scans, clock
    reads) on the disabled path instead of staying behind its
    ``is not None`` guards."""
    def timed_bare(system, cycles=2_000):
        start = time.perf_counter()
        system.run(cycles)
        return time.perf_counter() - start

    def timed_disabled(system, cycles=2_000):
        start = time.perf_counter()
        _spans_alerts_disabled_step(system, cycles)
        return time.perf_counter() - start

    baseline_system = _fresh_system()
    disabled_system = _fresh_system()
    ratios = []
    for _ in range(6):
        baseline_total = disabled_total = 0.0
        for chunk_index in range(10):
            if chunk_index % 2 == 0:
                baseline_total += timed_bare(baseline_system)
                disabled_total += timed_disabled(disabled_system)
            else:
                disabled_total += timed_disabled(disabled_system)
                baseline_total += timed_bare(baseline_system)
        ratios.append(disabled_total / baseline_total)
    assert min(ratios) <= 1.02, (
        f"spans/alerts-disabled engine is >2% slower than the bare run "
        f"loop in every round: ratios {[f'{r:.3f}' for r in ratios]}"
    )


def test_bench_traced_simulation(benchmark):
    """The same 2-thread CMP with full tracing enabled into a ring
    buffer — the cost of turning observability *on* (not bounded; the
    contract only covers the disabled path)."""
    from repro.telemetry import RingBufferSink, TelemetryBus

    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    bus = TelemetryBus()
    bus.attach(RingBufferSink())
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)],
                       telemetry=bus)
    system.run(5_000)
    benchmark.pedantic(system.run, args=(10_000,), iterations=1, rounds=3)


def test_bench_metrics_enabled_simulation(benchmark):
    """The same 2-thread CMP with the metrics/attribution sinks attached
    — the cost of turning the observability *aggregation* layer on
    (windowed MetricsCollector + InterferenceAttributor, no ring
    buffer).  Compare against test_bench_simulation_cycles_per_second
    for the metrics-enabled overhead; the <2% contract only covers the
    disabled path, which test_trace_disabled_overhead_under_two_percent
    guards."""
    from repro.telemetry import (
        InterferenceAttributor,
        MetricsCollector,
        TelemetryBus,
    )

    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    bus = TelemetryBus()
    bus.attach(MetricsCollector(2, window=2_000))
    bus.attach(InterferenceAttributor(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)],
                       telemetry=bus)
    system.run(5_000)
    benchmark.pedantic(system.run, args=(10_000,), iterations=1, rounds=3)


def test_bench_vpc_arbiter_decision_rate(benchmark):
    """Enqueue+select throughput of the VPC arbiter alone."""
    arbiter = VPCArbiter(4, [0.25] * 4, 8)

    def churn():
        for i in range(1_000):
            arbiter.enqueue(
                ArbiterEntry(thread_id=i % 4, payload=None,
                             is_write=bool(i & 1),
                             service_quanta=2 if i & 1 else 1),
                i,
            )
            arbiter.select(i)

    benchmark.pedantic(churn, iterations=1, rounds=5)

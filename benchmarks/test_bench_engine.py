"""Benchmarks: raw simulator and arbiter throughput (not a paper artifact,
but the number that governs every experiment's wall-clock)."""

from repro.common.config import VPCAllocation, baseline_config
from repro.core.arbiter import ArbiterEntry
from repro.core.vpc_arbiter import VPCArbiter
from repro.system.cmp import CMPSystem
from repro.workloads import loads_trace, stores_trace


def test_bench_simulation_cycles_per_second(benchmark):
    """Full 2-thread CMP: processor cycles simulated per wall second."""
    config = baseline_config(n_threads=2, arbiter="vpc",
                             vpc=VPCAllocation.equal(2))
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    system.run(5_000)  # warm the structures out of the timing loop
    cycles = 10_000
    benchmark.pedantic(system.run, args=(cycles,), iterations=1, rounds=3)


def test_bench_vpc_arbiter_decision_rate(benchmark):
    """Enqueue+select throughput of the VPC arbiter alone."""
    arbiter = VPCArbiter(4, [0.25] * 4, 8)

    def churn():
        for i in range(1_000):
            arbiter.enqueue(
                ArbiterEntry(thread_id=i % 4, payload=None,
                             is_write=bool(i & 1),
                             service_quanta=2 if i & 1 else 1),
                i,
            )
            arbiter.select(i)

    benchmark.pedantic(churn, iterations=1, rounds=5)

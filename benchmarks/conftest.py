"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (fast-fidelity variant)
under pytest-benchmark timing and prints the regenerated rows, so
``pytest benchmarks/ --benchmark-only -s`` doubles as a results report.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep benchmark timings honest: no cross-run result-cache hits, and
    no pollution of the user's ``~/.cache/repro-vpc``."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))

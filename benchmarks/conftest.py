"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (fast-fidelity variant)
under pytest-benchmark timing and prints the regenerated rows, so
``pytest benchmarks/ --benchmark-only -s`` doubles as a results report.
"""

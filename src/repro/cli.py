"""Top-level simulation CLI: ``python -m repro <workload>... [options]``.

Runs an N-thread CMP where each positional argument names one thread's
workload: a SPEC stand-in profile (``art``, ``mcf``, ...), a Table-2
microbenchmark (``loads``/``stores``), a phase-changing schedule (a
``PHASED_PROFILES`` name like ``art-sixtrack``, or inline
``phase:bench+bench[@instructions]``), or ``trace:<path>`` for a
segment-trace file.  Prints per-thread IPC, utilization, and the
Figure-7 store statistics.

``--policy {fcfs,vpc,lfoc}`` selects a whole policy family at once;
``--controller {lfoc,fairness}`` attaches a dynamic QoS controller
that re-tunes the VPC share registers every ``--epoch`` cycles (see
docs/ARCHITECTURE.md "QoS control plane").

Examples::

    python -m repro loads stores --arbiter vpc --shares 0.75,0.25
    python -m repro art mcf gzip sixtrack --arbiter fcfs
    python -m repro trace:mytrace.txt stores --cycles 80000
    python -m repro art-sixtrack mcf equake-art gzip --policy lfoc \\
        --qos-log qos.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterator, List, Optional

from repro.common.config import VPCAllocation, baseline_config
from repro.cpu.isa import TraceItem
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads.microbench import MICROBENCHMARKS
from repro.workloads.phased import parse_phased, phased_trace
from repro.workloads.profiles import (
    PHASED_PROFILES,
    SPEC_PROFILES,
    phased_profile_trace,
    spec_trace,
)
from repro.workloads.tracefile import trace_from_file


def resolve_workload(name: str, thread_id: int) -> Iterator[TraceItem]:
    """Map a CLI workload spec to a trace iterator."""
    if name.startswith("trace:"):
        return trace_from_file(name.split(":", 1)[1])
    if name.startswith("phase:"):
        return phased_trace(parse_phased(name.split(":", 1)[1]), thread_id)
    if name in MICROBENCHMARKS:
        return MICROBENCHMARKS[name](thread_id)
    if name in SPEC_PROFILES:
        return spec_trace(name, thread_id)
    if name in PHASED_PROFILES:
        return phased_profile_trace(name, thread_id)
    known = (sorted(MICROBENCHMARKS) + sorted(SPEC_PROFILES)
             + sorted(PHASED_PROFILES))
    raise ValueError(f"unknown workload {name!r}; choose from {known}, "
                     "phase:<bench+bench[@instructions]>, or trace:<path>")


def _workload_spec(name: str):
    """The declarative ``build_trace`` spec for a CLI workload name
    (what a checkpoint stores so it can replay the trace cursor)."""
    if name.startswith("trace:"):
        return ("tracefile", name.split(":", 1)[1])
    if name.startswith("phase:"):
        return ("phased-inline", name.split(":", 1)[1])
    if name in MICROBENCHMARKS:
        return ("micro", name)
    if name in SPEC_PROFILES:
        return ("spec", name)
    if name in PHASED_PROFILES:
        return ("phased", name)
    resolve_workload(name, 0)  # raises with the helpful message


def parse_shares(text: Optional[str], n_threads: int) -> List[float]:
    if text is None:
        return [1.0 / n_threads] * n_threads
    shares = [float(tok) for tok in text.split(",")]
    if len(shares) != n_threads:
        raise ValueError(
            f"--shares needs {n_threads} comma-separated values, got {text!r}"
        )
    return shares


def build_parser() -> argparse.ArgumentParser:
    from repro.telemetry.options import telemetry_options
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Simulate workloads on the VPC-enabled CMP.",
        parents=[telemetry_options()],
    )
    parser.add_argument("workloads", nargs="*",
                        help="one workload per thread (see module "
                             "docstring); optional with "
                             "--resume-checkpoint, which restores them "
                             "from the snapshot")
    parser.add_argument("--arbiter", default="vpc",
                        choices=("vpc", "fcfs", "row-fcfs"))
    parser.add_argument("--shares", default=None,
                        help="comma-separated bandwidth shares (default equal)")
    parser.add_argument("--capacity-shares", default=None,
                        help="comma-separated way shares (default equal)")
    parser.add_argument("--banks", type=int, default=2)
    parser.add_argument("--warmup", type=int, default=30_000)
    parser.add_argument("--cycles", type=int, default=30_000,
                        help="measurement cycles after warmup")
    parser.add_argument("--capacity", default="vpc", choices=("vpc", "lru"))
    parser.add_argument("--selection", default="finish",
                        choices=("finish", "start"),
                        help="VPC arbiter fairness policy (WFQ or SFQ)")
    parser.add_argument("--prefetch", action="store_true",
                        help="enable the next-line prefetcher")
    parser.add_argument("--policy", default=None,
                        choices=("fcfs", "vpc", "lfoc"),
                        help="policy family shorthand, overriding "
                             "--arbiter/--capacity: fcfs (conventional "
                             "cache: FCFS arbiters + shared LRU), vpc "
                             "(static VPC shares), lfoc (VPC + the LFOC "
                             "clustering controller)")
    parser.add_argument("--controller", default=None,
                        choices=("lfoc", "fairness"),
                        help="attach a QoS controller that reprograms the "
                             "VPC control registers every --epoch cycles "
                             "(requires the vpc arbiter; with --report, "
                             "the fairness controller steers against the "
                             "measured solo targets)")
    parser.add_argument("--epoch", type=int, default=None, metavar="CYCLES",
                        help="QoS controller epoch length in cycles "
                             "(default 5000)")
    parser.add_argument("--qos-log", default=None, metavar="PATH",
                        help="write the controller's repro.qos-decisions/1 "
                             "document (per-epoch labels, programmed "
                             "shares, Jain trajectory) to PATH")
    parser.add_argument("--histograms", action="store_true",
                        help="print per-thread/per-stage latency histograms "
                             "(implied tracing, no file needed)")
    parser.add_argument("--manifest", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="write a run manifest (config hash, git SHA, "
                             "kernel, wall time) to PATH, or print it when "
                             "no PATH is given")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="collect window time-series metrics and write "
                             "the JSON snapshot to PATH")
    parser.add_argument("--prometheus", default=None, metavar="PATH",
                        help="also export final metrics as Prometheus text "
                             "exposition to PATH (implies metrics)")
    parser.add_argument("--report", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="print a QoS report card (per-thread targets, "
                             "conformance, interference attribution); write "
                             "its JSON to PATH when given.  Target IPCs add "
                             "one private-machine run per thread")
    parser.add_argument("--cpi-stacks", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="attach per-thread cycle accounting (every "
                             "measured cycle lands in exactly one CPI-stack "
                             "bucket); print the stacks, or write the "
                             "repro.cpi-stack/1 JSON to PATH when given")
    parser.add_argument("--requests", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="attach request-scope tracing (per-request "
                             "stage waterfalls, exact streaming "
                             "p50/p95/p99/p999, worst-k exemplars); print "
                             "the summary, or write the repro.requests/1 "
                             "JSON to PATH when given")
    parser.add_argument("--slo", default=None, metavar="SPEC",
                        help="latency SLO targets for --requests: an "
                             "integer (99%% of every thread's loads under "
                             "N cycles) or a JSON/TOML rule file with an "
                             "'slos' list")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="write a resumable checkpoint of the full "
                             "simulation to PATH every --checkpoint-every "
                             "cycles during the measurement")
    parser.add_argument("--checkpoint-every", type=int, default=10_000,
                        metavar="CYCLES",
                        help="checkpoint cadence in simulated cycles "
                             "(default 10000)")
    parser.add_argument("--resume-checkpoint", default=None, metavar="PATH",
                        help="continue the measurement from a checkpoint "
                             "written by --checkpoint (pass the same "
                             "workloads, or none to restore them from the "
                             "snapshot; the result is bit-identical to "
                             "the uninterrupted run)")
    return parser


def _resumed_labels(system) -> List[str]:
    """Workload labels recovered from a restored system's trace cursors
    (``ResumableTrace`` keeps its declarative spec)."""
    labels = []
    for tid in range(system.config.n_threads):
        core = system._core_of_thread[tid]
        spec = getattr(getattr(core, "_trace", None), "spec", None)
        if isinstance(spec, tuple) and spec:
            # Invert _workload_spec so labels match what was typed.
            if len(spec) == 1:
                labels.append(spec[0])
            elif spec[0] in ("micro", "spec", "phased"):
                labels.append(spec[1])
            elif spec[0] == "phased-inline":
                labels.append(f"phase:{spec[1]}")
            elif spec[0] == "tracefile":
                labels.append(f"trace:{spec[1]}")
            else:
                labels.append(f"{spec[0]}:{spec[1]}")
        else:
            labels.append(f"thread{tid}")
    return labels


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume_checkpoint and (
            args.report is not None or args.serve is not None
            or args.trace or args.histograms
            or args.cpi_stacks is not None
            or args.requests is not None
            or args.spans is not None or args.alerts):
        parser.error("--resume-checkpoint continues the original run's "
                     "observability; --report/--serve/--trace/--histograms/"
                     "--cpi-stacks/--requests/--spans/--alerts cannot be "
                     "added mid-run (a checkpointed accounting attachment "
                     "resumes automatically)")
    if args.resume_checkpoint and (args.policy is not None
                                   or args.controller is not None
                                   or args.epoch is not None):
        parser.error("--resume-checkpoint restores the original run's QoS "
                     "controller from the snapshot; --policy/--controller/"
                     "--epoch cannot change it mid-run")
    controller_name = args.controller
    if args.policy is not None:
        if args.policy == "fcfs":
            if controller_name is not None:
                parser.error("a QoS controller programs the VPC share "
                             "registers; --policy fcfs has none")
            args.arbiter, args.capacity = "fcfs", "lru"
        else:
            args.arbiter, args.capacity = "vpc", "vpc"
            if args.policy == "lfoc" and controller_name is None:
                controller_name = "lfoc"
    if controller_name is not None and args.arbiter != "vpc":
        parser.error(f"--controller needs the vpc arbiter, not "
                     f"{args.arbiter!r} (or use --policy lfoc)")
    if args.epoch is not None:
        if controller_name is None:
            parser.error("--epoch only applies when a QoS controller "
                         "runs; add --controller or --policy lfoc")
        if args.epoch < 1:
            parser.error("--epoch must be >= 1 cycle")
    if args.qos_log is not None and controller_name is None \
            and not args.resume_checkpoint:
        parser.error("--qos-log needs a QoS controller; add --controller "
                     "or --policy lfoc")
    if args.alerts_out and not args.alerts:
        parser.error("--alerts-out requires --alerts")
    if args.slo is not None and args.requests is None:
        parser.error("--slo requires --requests")
    slo_rules = ()
    if args.slo is not None:
        from repro.telemetry.requests import load_slo
        try:
            slo_rules = tuple(load_slo(args.slo))
        except (OSError, ValueError) as error:
            parser.error(f"--slo: {error}")
    resumed = None
    if args.resume_checkpoint:
        from repro.resilience import open_checkpoint
        resumed = open_checkpoint(args.resume_checkpoint)
        held = resumed.system.config.n_threads
        if args.workloads and len(args.workloads) != held:
            parser.error(f"checkpoint holds {held} threads but "
                         f"{len(args.workloads)} workloads were given")
        if not args.workloads:
            args.workloads = _resumed_labels(resumed.system)
    elif not args.workloads:
        parser.error("workloads are required "
                     "(unless --resume-checkpoint restores them)")

    n_threads = len(args.workloads)
    if resumed is not None:
        # The snapshot is authoritative on resume: topology flags on the
        # command line cannot change a simulation already in flight.
        config = resumed.system.config
        allocation = config.vpc
    else:
        allocation = VPCAllocation(
            parse_shares(args.shares, n_threads),
            parse_shares(args.capacity_shares, n_threads),
        )
        config = baseline_config(
            n_threads=n_threads, banks=args.banks,
            arbiter=args.arbiter, vpc=allocation,
        )
        if args.prefetch:
            from dataclasses import replace

            from repro.common.config import CoreConfig
            config = replace(
                config, core=CoreConfig(prefetch_enabled=True)
            ).validate()

    checkpointer = None
    if args.checkpoint:
        if args.trace and args.trace.endswith(".jsonl"):
            parser.error("--checkpoint cannot ride with a streaming .jsonl "
                         "trace: the sink's open file handle cannot be "
                         "pickled into a checkpoint")
        from repro.resilience import Checkpointer
        checkpointer = Checkpointer(args.checkpoint,
                                    every=args.checkpoint_every)

    if resumed is not None:
        traces = []
    elif args.checkpoint:
        # Checkpointable runs need picklable trace cursors.
        from repro.resilience import ResumableTrace
        traces = [
            ResumableTrace(_workload_spec(name), tid)
            for tid, name in enumerate(args.workloads)
        ]
    else:
        traces = [
            resolve_workload(name, tid)
            for tid, name in enumerate(args.workloads)
        ]

    observe = bool(args.metrics or args.prometheus
                   or args.report is not None or args.serve is not None
                   or args.alerts)

    telemetry = None
    ring = jsonl = histograms = None
    collector = attributor = None
    if resumed is None and (args.trace or args.histograms or observe):
        from repro.telemetry import (
            JsonlSink,
            LatencyHistogramSink,
            RingBufferSink,
            TelemetryBus,
        )
        telemetry = TelemetryBus()
        if args.trace:
            if args.trace.endswith(".jsonl"):
                jsonl = telemetry.attach(JsonlSink(args.trace))
            else:
                ring = telemetry.attach(RingBufferSink())
        if args.histograms:
            histograms = telemetry.attach(LatencyHistogramSink())

    tracer = None
    if args.spans is not None:
        # The tracer shares the --trace bus (when one exists) so host
        # spans land in the same Perfetto export as simulated cycles.
        from repro.telemetry.spans import TRACK_RUN, TRACK_SCHED, SpanTracer
        tracer = SpanTracer(sink=telemetry)

    # Target IPCs (one private-equivalent run per thread) come first so
    # the metrics collector can track slowdown-vs-solo live.
    targets = None
    if args.report is not None:
        from repro.system.metrics import target_ipc

        def one_target(tid: int, name: str) -> float:
            return target_ipc(
                config,
                resolve_workload(name, 0),
                phi=allocation.bandwidth_shares[tid],
                beta=allocation.capacity_shares[tid],
                warmup=args.warmup,
                measure=args.cycles,
            )

        if tracer is not None:
            targets = []
            for tid, name in enumerate(args.workloads):
                with tracer.span(f"target-ipc.t{tid}", TRACK_SCHED,
                                 workload=name):
                    targets.append(one_target(tid, name))
        else:
            targets = [one_target(tid, name)
                       for tid, name in enumerate(args.workloads)]

    if resumed is None and observe:
        from repro.telemetry import InterferenceAttributor, MetricsCollector
        collector = telemetry.attach(MetricsCollector(
            n_threads, window=args.metrics_window,
            baseline_ipcs=targets,
        ))
        attributor = telemetry.attach(InterferenceAttributor(n_threads))

    if resumed is not None:
        system = resumed.system
        collector = resumed.metrics
        attributor = resumed.attributor
        if args.kernel is not None:
            # Kernels are bit-identical, so switching mid-run cannot
            # change the simulation — only how fast it finishes.
            system.kernel = args.kernel
    else:
        system = CMPSystem(
            config, traces,
            capacity_policy=args.capacity,
            vpc_selection=args.selection,
            telemetry=telemetry,
            kernel=args.kernel or "event",
        )
    if resumed is None and args.cpi_stacks is not None:
        system.attach_cycle_accounting()
    if resumed is None and args.requests is not None:
        system.attach_request_tracing(slo_rules=slo_rules)
    if resumed is None and controller_name is not None:
        from repro.qos import make_controller
        system.attach_qos_controller(make_controller(
            controller_name, n_threads,
            epoch_cycles=args.epoch or 5_000,
            baseline_ipcs=targets,
        ))
    monitor = None
    if resumed is None and observe and args.arbiter == "vpc":
        from repro.core.monitor import QoSMonitor
        monitor = QoSMonitor(system, window=args.metrics_window)

    engine = None
    if args.alerts:
        from repro.telemetry.alerts import AlertEngine, load_rules
        engine = AlertEngine(load_rules(args.alerts))

    live = server = None
    on_window = None
    if args.serve is not None or engine is not None:
        import os

        from repro.telemetry import LiveRun, TelemetryServer
        live = LiveRun(stale_after=args.stale_after)
        live.alert_engine = engine
        if tracer is not None:
            live.on_span = tracer.ingest
        if args.serve is not None:
            server = TelemetryServer(live, port=args.serve)
            server.start()
            # Printed (and flushed) before the run so scrapers can find
            # the auto-assigned port while the simulation is still in
            # flight.
            print(f"serving telemetry on {server.url} "
                  "(/metrics /healthz /snapshot /events)", flush=True)
        live.begin_run(" ".join(args.workloads), kernel=system.kernel)
        live.begin_batch(1)
        worker = os.getpid()
        live.put(("start", 0, worker))
        violations_sent = 0

        def on_window(cycle: int) -> None:
            nonlocal violations_sent
            snapshot = collector.snapshot()
            if attributor is not None:
                snapshot["attribution"] = attributor.snapshot()
                snapshot["arbiter"] = args.arbiter
            if system.request_tracer is not None:
                snapshot["requests"] = system.request_tracer.document(cycle)
            live.put(("window", 0, worker, cycle, snapshot))
            if monitor is not None:
                monitor.finish(cycle)
                from dataclasses import asdict
                for violation in monitor.violations[violations_sent:]:
                    live.put(("violation", 0, worker, asdict(violation)))
                violations_sent = len(monitor.violations)

    if tracer is not None and checkpointer is not None:
        from repro.telemetry.spans import TRACK_CKPT

        def _on_saved(cycle: int) -> None:
            tracer.instant("checkpoint-write", TRACK_CKPT,
                           cycle=cycle, path=args.checkpoint)

        checkpointer.on_saved = _on_saved

    profiler = None
    if args.profile:
        from repro.common.profiling import start_profile
        profiler = start_profile()
    started = time.monotonic()
    simulate_span = None
    if tracer is not None:
        simulate_span = tracer.begin(
            "simulate", TRACK_RUN,
            workloads=" ".join(args.workloads), kernel=system.kernel,
            warmup=args.warmup, measure=args.cycles)
    if resumed is not None:
        result = resumed.run(checkpointer=checkpointer)
    else:
        result = run_simulation(system, warmup=args.warmup,
                                measure=args.cycles, metrics=collector,
                                on_window=on_window, checkpoint=checkpointer)
    if tracer is not None:
        tracer.end(simulate_span, cycles=result.cycles)
    wall_time = time.monotonic() - started
    if profiler is not None:
        from repro.common.profiling import finish_profile
        finish_profile(profiler, args.profile)
    if attributor is not None:
        attributor.finish(system.cycle)
        result.metrics["attribution"] = attributor.snapshot()
        result.metrics["arbiter"] = config.arbiter
    if result.metrics is not None and result.cpi_stacks is not None:
        result.metrics["cpi_stacks"] = result.cpi_stacks
    if result.metrics is not None and result.requests is not None:
        result.metrics["requests"] = result.requests
    if monitor is not None:
        monitor.finish(system.cycle)
    if live is not None:
        live.point_done(0, result.metrics)
        live.finish_run()

    print(f"{n_threads}-thread CMP, {config.l2.banks} banks, "
          f"arbiter={config.arbiter}"
          f" ({result.cycles} measured cycles after "
          f"{result.warmup_cycles} warmup)")
    for tid, name in enumerate(args.workloads):
        share = allocation.bandwidth_shares[tid]
        print(f"  t{tid} {name:<18} phi={share:<5.2f} "
              f"IPC {result.ipcs[tid]:.3f}")
    utils = result.utilizations
    print(f"  L2 utilization: tag {utils['tag']:.0%}  "
          f"data {utils['data']:.0%}  bus {utils['bus']:.0%}")
    print(f"  L2 requests: {result.l2_reads} reads, {result.l2_writes} writes "
          f"({result.write_fraction:.0%} writes), "
          f"gathering rate {result.gathering_rate:.0%}, "
          f"miss rate {result.l2_miss_rate:.0%}")

    if result.qos is not None:
        doc = result.qos
        final = doc.get("final") or {}
        labels = ",".join(final.get("labels", [])) or "-"
        print(f"  qos: {doc['policy']} controller, {doc['epochs']} epochs "
              f"of {doc['epoch_cycles']} cycles, final jain "
              f"{final.get('jain', 0.0):.3f}, labels [{labels}]")
        if final.get("phi"):
            shares = " ".join(f"{value:.2f}" for value in final["phi"])
            quotas = " ".join(f"{value:.2f}" for value in final["beta"])
            print(f"  qos shares: phi [{shares}]  beta [{quotas}]")
        if args.qos_log is not None:
            import json
            with open(args.qos_log, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2)
                handle.write("\n")
            print(f"  qos decisions -> {args.qos_log}")
    elif args.qos_log is not None:
        print("  qos: none logged (the resumed checkpoint was written "
              "without a controller)")

    if args.cpi_stacks is not None and result.cpi_stacks is not None:
        stacks = result.cpi_stacks
        buckets = stacks["buckets"]
        print(f"  cycle accounting ({stacks['measured_cycles']} cycles "
              "per thread, buckets sum exactly):")
        for tid, row in enumerate(stacks["threads"]):
            parts = [f"{name} {value}"
                     for name, value in sorted(zip(buckets, row),
                                               key=lambda kv: -kv[1])
                     if value]
            print(f"    t{tid}: " + (", ".join(parts) or "(idle)"))
        if args.cpi_stacks != "-":
            import json
            with open(args.cpi_stacks, "w", encoding="utf-8") as handle:
                json.dump(stacks, handle, indent=2)
                handle.write("\n")
            print(f"  cpi stacks -> {args.cpi_stacks}")

    if args.requests is not None and result.requests is not None:
        from repro.telemetry.requests import render_requests, write_requests
        for line in render_requests(result.requests):
            print(f"  {line}")
        if args.requests != "-":
            write_requests(args.requests, result.requests)
            print(f"  requests -> {args.requests}")

    if args.metrics and result.metrics is None:
        print("  metrics: none collected (the resumed checkpoint was "
              "written without a metrics collector)")
    elif args.metrics:
        import json
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(result.metrics, handle, indent=2)
            handle.write("\n")
        print(f"  metrics: {result.metrics['events_seen']} events "
              f"aggregated -> {args.metrics}")
    if args.prometheus:
        from repro.telemetry import to_prometheus
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(result.metrics))
        print(f"  metrics: Prometheus exposition -> {args.prometheus}")
    if args.report is not None:
        from repro.telemetry import (
            build_report_card,
            render_report_card,
            write_report,
        )
        card = build_report_card(
            n_threads=n_threads,
            arbiter=args.arbiter,
            metrics=result.metrics,
            attribution=result.metrics.get("attribution"),
            conformance=monitor.conformance() if monitor is not None else None,
            targets=targets,
            run_label=" ".join(args.workloads),
        )
        print()
        print(render_report_card(card))
        if args.report != "-":
            write_report(card, args.report)
            print(f"  report -> {args.report}")
    if histograms is not None:
        print("latency histograms (cycles):")
        print(histograms.format_report())
    if ring is not None:
        from repro.telemetry import write_chrome_trace
        events = list(ring)
        if system.request_tracer is not None:
            # Worst-k exemplar waterfalls ride in the same trace file,
            # flow-linked to the request spans on the thread timelines.
            events.extend(system.request_tracer.exemplar_trace_events())
        count = write_chrome_trace(args.trace, events)
        print(f"  trace: {count} events -> {args.trace} "
              "(open in ui.perfetto.dev)")
    if jsonl is not None:
        jsonl.close()
        print(f"  trace: events streamed -> {args.trace}")
    if args.manifest is not None:
        from repro.telemetry import RunManifest
        lineage = {}
        if args.resume_checkpoint:
            lineage["resumed_from"] = args.resume_checkpoint
        if args.checkpoint:
            lineage["checkpoint"] = args.checkpoint
        if args.requests is not None:
            lineage["request_tracing"] = {
                "artifact": args.requests,
                "slo": args.slo,
                "exemplar_k": (system.request_tracer.exemplar_k
                               if system.request_tracer is not None else None),
            }
        if server is not None:
            # Record the (possibly auto-assigned via --serve 0) address
            # so artifacts point back at the endpoint that served them.
            lineage["serve_url"] = server.url
        manifest = RunManifest.collect(
            config=config, kernel=system.kernel,
            wall_time_s=round(wall_time, 3),
            workloads=list(args.workloads),
            warmup=result.warmup_cycles, cycles=result.cycles,
            skipped_cycles=system.skipped_cycles,
            skips_taken=system.skips_taken,
            **lineage,
        )
        if args.manifest == "-":
            import json
            print(json.dumps(manifest.to_dict(), indent=2, default=repr))
        else:
            manifest.write(args.manifest)
            print(f"  manifest -> {args.manifest}")
    if tracer is not None:
        from repro.telemetry.spans import write_spans
        count = write_spans(args.spans, tracer)
        print(f"  spans: {count} host spans -> {args.spans}")
    exit_code = 0
    if engine is not None:
        print(f"  alerts: {engine.summary_line()}")
        if args.alerts_out:
            from repro.telemetry.alerts import write_alerts
            write_alerts(args.alerts_out, engine)
            print(f"  alerts -> {args.alerts_out}")
        if engine.page_fired:
            from repro.telemetry.alerts import PAGE_EXIT_CODE
            print("repro: a severity=page alert fired during the run",
                  file=sys.stderr)
            exit_code = PAGE_EXIT_CODE
    if server is not None:
        if args.serve_linger > 0:
            print(f"  telemetry server lingering {args.serve_linger:.0f}s "
                  f"at {server.url}", flush=True)
            time.sleep(args.serve_linger)
        server.stop()
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())

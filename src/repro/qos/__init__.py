"""Dynamic QoS control plane over the VPC register file.

Online thread classification (:mod:`repro.qos.classifier`), the epoch
harness + fairness retuner (:mod:`repro.qos.controller`), and the
LFOC-style clustering policy (:mod:`repro.qos.lfoc`).  Everything here
programs the cache exclusively through
:class:`~repro.core.registers.VPCControlRegisters` — the control plane
is software running *on* the paper's architected interface, not a
backdoor into the simulator.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.qos.classifier import (
    LABEL_HUNGRY,
    LABEL_LIGHT,
    LABEL_STREAMING,
    LABELS,
    EpochSignals,
    ThreadClassifier,
)
from repro.qos.controller import (
    QOS_DECISIONS_SCHEMA,
    FairnessController,
    QoSController,
    QoSDecision,
)
from repro.qos.lfoc import LFOCController

#: Controller names accepted by the CLIs and the experiment runner.
CONTROLLERS = ("lfoc", "fairness")


def make_controller(
    name: str,
    n_threads: int,
    epoch_cycles: int = 5_000,
    baseline_ipcs: Optional[Sequence[float]] = None,
) -> QoSController:
    """Build a controller by CLI name (not yet attached to a system)."""
    if name == "lfoc":
        return LFOCController(n_threads, epoch_cycles, baseline_ipcs)
    if name == "fairness":
        return FairnessController(n_threads, epoch_cycles, baseline_ipcs)
    raise ValueError(
        f"unknown QoS controller {name!r}; choose from {CONTROLLERS}"
    )


__all__ = [
    "CONTROLLERS",
    "EpochSignals",
    "FairnessController",
    "LABELS",
    "LABEL_HUNGRY",
    "LABEL_LIGHT",
    "LABEL_STREAMING",
    "LFOCController",
    "QOS_DECISIONS_SCHEMA",
    "QoSController",
    "QoSDecision",
    "ThreadClassifier",
    "make_controller",
]

"""Online thread classification from windowed L2-level signals.

The LFOC policy family (PAPERS.md) starts from a coarse taxonomy of how
a thread uses the shared cache:

* **streaming** — miss-dominated traffic: the thread touches the L2
  hard but its lines see no reuse, so cache capacity is wasted on it;
* **cache-hungry** — L2-resident reuse: the thread's working set fits a
  cache share and its performance tracks how many ways it holds;
* **light** — the thread barely touches the L2 at all (its working set
  lives in the L1 or it is compute-bound).

Signals come from the epoch deltas of windowed
:class:`~repro.telemetry.metrics.MetricsCollector` series plus the
driver's gauge pulls: L2 load intensity (loads per kilocycle), a miss-
rate estimate derived from mean L2 load latency (an L2 hit costs tens
of cycles, a DRAM miss well over a hundred — the same signal a
hit/miss-counter register would give, available without new hardware
counters), per-thread way occupancy, IPC, and — when solo baselines
are known — slowdown.

Labels feed allocation decisions, so they must not flap when a thread
sits on a threshold: a *raw* label must persist for ``hysteresis``
consecutive epochs before the committed label switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

LABEL_STREAMING = "streaming"
LABEL_HUNGRY = "cache-hungry"
LABEL_LIGHT = "light"
LABELS = (LABEL_STREAMING, LABEL_HUNGRY, LABEL_LIGHT)


@dataclass
class EpochSignals:
    """Per-thread observations over one controller epoch."""

    cycle: int                       # epoch-end cycle
    cycles: int                      # epoch length actually observed
    ipcs: List[float]
    loads: List[int]                 # L2 loads retired this epoch
    load_latency: List[int]          # their summed latencies (cycles)
    ways: List[int]                  # L2 way occupancy at epoch end
    slowdowns: Optional[List[float]] = None   # solo/observed, if known

    def intensity(self, tid: int) -> float:
        """L2 loads per kilocycle."""
        if self.cycles <= 0:
            return 0.0
        return 1000.0 * self.loads[tid] / self.cycles

    def mean_latency(self, tid: int) -> float:
        if not self.loads[tid]:
            return 0.0
        return self.load_latency[tid] / self.loads[tid]


@dataclass
class ThreadClassifier:
    """Hysteresis-damped streaming / cache-hungry / light labelling.

    ``light_intensity`` is the L2-loads-per-kilocycle floor below which
    a thread is light regardless of latency; ``hit_latency`` /
    ``miss_latency`` anchor the latency-to-miss-rate estimate; a thread
    whose estimated miss rate reaches ``streaming_miss_rate`` is
    streaming; everything else is cache-hungry.  A raw label only
    becomes the committed label after ``hysteresis`` consecutive epochs.
    """

    # Defaults are calibrated on the baseline 4-thread configuration
    # (see tests/test_qos_control.py): under contention even an L2 hit
    # costs tens of cycles of queueing, so the anchors sit well above
    # the raw array latencies — they discriminate *relative* latency
    # (reuse captured by the L2 vs. DRAM-bound traffic), which is what
    # the taxonomy needs.
    n_threads: int
    light_intensity: float = 8.0
    streaming_miss_rate: float = 0.5
    hit_latency: float = 60.0
    miss_latency: float = 220.0
    hysteresis: int = 2
    labels: List[Optional[str]] = field(init=False)
    _pending: List[Optional[str]] = field(init=False, repr=False)
    _streak: List[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("need at least one thread")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1 epoch")
        if not self.hit_latency < self.miss_latency:
            raise ValueError("hit latency must undercut miss latency")
        self.labels = [None] * self.n_threads
        self._pending = [None] * self.n_threads
        self._streak = [0] * self.n_threads

    def miss_rate_estimate(self, signals: EpochSignals, tid: int) -> float:
        """Fraction of this thread's L2 loads estimated to miss,
        interpolated from its mean load latency."""
        if not signals.loads[tid]:
            return 0.0
        span = self.miss_latency - self.hit_latency
        estimate = (signals.mean_latency(tid) - self.hit_latency) / span
        return min(1.0, max(0.0, estimate))

    def raw_label(self, signals: EpochSignals, tid: int) -> str:
        """The taxonomy rule, before hysteresis."""
        if signals.intensity(tid) < self.light_intensity:
            return LABEL_LIGHT
        if self.miss_rate_estimate(signals, tid) >= self.streaming_miss_rate:
            return LABEL_STREAMING
        return LABEL_HUNGRY

    def classify(self, signals: EpochSignals) -> List[str]:
        """Update and return the committed per-thread labels."""
        for tid in range(self.n_threads):
            raw = self.raw_label(signals, tid)
            if self.labels[tid] is None:
                # First observation commits immediately; there is no
                # prior label to protect.
                self.labels[tid] = raw
                continue
            if raw == self.labels[tid]:
                self._pending[tid] = None
                self._streak[tid] = 0
            elif raw == self._pending[tid]:
                self._streak[tid] += 1
                if self._streak[tid] >= self.hysteresis:
                    self.labels[tid] = raw
                    self._pending[tid] = None
                    self._streak[tid] = 0
            else:
                self._pending[tid] = raw
                self._streak[tid] = 1
        return list(self.labels)

"""The QoS control plane: epoch-driven share retuning over the
architected register file.

The paper ends where system software begins: VPC gives software a set
of control registers (phi_i bandwidth shares, beta_i capacity shares)
and deliberately leaves the allocation *policy* to the OS (Section 4,
"the mechanisms are policy-free").  This module is that missing policy
layer — a controller invoked at fixed epoch boundaries by the
simulation driver, observing each thread through telemetry-derived
signals and reprogramming the shares **only** through
:class:`~repro.core.registers.VPCControlRegisters`.  The control plane
never touches an arbiter or a capacity manager directly; if a decision
cannot be expressed as register writes, it cannot be made.

:class:`QoSController` is the harness: it owns a private
:class:`~repro.telemetry.metrics.MetricsCollector` on the system's
telemetry bus (windowed at the epoch length), diffs its cumulative
per-thread series at each epoch boundary into
:class:`~repro.qos.classifier.EpochSignals`, runs the
:class:`~repro.qos.classifier.ThreadClassifier`, and delegates the
actual allocation to a subclass ``decide`` hook.  Programming is
transactional (``load_allocation``), every epoch is audited for quota
conservation, and every decision is recorded both in memory (the
``repro.qos-decisions/1`` document) and on the telemetry bus as
instants plus ``qos.*`` counter tracks.

Subclasses shipped with the repo:

* :class:`FairnessController` (here) — multi-thread generalization of
  :class:`~repro.policy.feedback.FeedbackAllocator`: retunes all phi_i
  toward equalized slowdowns (maximizing the Jain index);
* :class:`~repro.qos.lfoc.LFOCController` — LFOC-style clustering on
  the classifier's taxonomy.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.stats import jain_index
from repro.core.capacity import ways_quota
from repro.qos.classifier import EpochSignals, ThreadClassifier
from repro.telemetry.events import (
    CAT_QOS,
    PH_COUNTER,
    PH_INSTANT,
    TraceEvent,
)
from repro.telemetry.metrics import MetricsCollector

#: Schema tag on exported decision logs (repro.telemetry.validate).
QOS_DECISIONS_SCHEMA = "repro.qos-decisions/1"


@dataclass
class QoSDecision:
    """One epoch's observation + allocation, as logged."""

    epoch: int
    cycle: int
    cycles: int                      # epoch length actually observed
    ipcs: List[float]
    loads: List[int]
    labels: List[str]
    phi: List[float]                 # bandwidth shares now in force
    beta: List[float]                # capacity shares now in force
    jain: float                      # of (normalized) epoch throughput
    programmed: bool                 # False = deadband/no-op epoch
    slowdowns: Optional[List[float]] = None


class QoSController:
    """Base epoch harness; subclasses implement :meth:`decide`."""

    #: Policy name recorded in decision documents; subclasses override.
    name = "static"

    def __init__(
        self,
        n_threads: int,
        epoch_cycles: int = 5_000,
        baseline_ipcs: Optional[Sequence[float]] = None,
        classifier: Optional[ThreadClassifier] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("controller needs at least one thread")
        if epoch_cycles < 1:
            raise ValueError("epoch must be >= 1 cycle")
        self.n_threads = n_threads
        self.epoch_cycles = epoch_cycles
        self.baseline_ipcs = (
            list(baseline_ipcs) if baseline_ipcs is not None else None
        )
        if self.baseline_ipcs is not None and len(
                self.baseline_ipcs) != n_threads:
            raise ValueError("baseline IPC count mismatch")
        self.classifier = classifier or ThreadClassifier(n_threads)
        self.decisions: List[QoSDecision] = []
        self.epochs = 0
        self.system = None
        self.collector: Optional[MetricsCollector] = None
        # Epoch-diff cursors (absolute counts at the last boundary).
        self._last_cycle = 0
        self._last_dispatched = [0] * n_threads
        self._last_loads = [0] * n_threads
        self._last_latency = [0] * n_threads

    # ------------------------------------------------------------------ #
    # Lifecycle (driven by repro.system.simulator).
    # ------------------------------------------------------------------ #

    def attach(self, system) -> "QoSController":
        """Bind to a live system (called by
        ``CMPSystem.attach_qos_controller``; the bus already exists)."""
        if system.config.n_threads != self.n_threads:
            raise ValueError(
                f"controller sized for {self.n_threads} threads, system "
                f"has {system.config.n_threads}"
            )
        self.system = system
        self.collector = system.telemetry.attach(
            MetricsCollector(
                self.n_threads,
                window=self.epoch_cycles,
                baseline_ipcs=self.baseline_ipcs,
            )
        )
        self.rebase(system)
        return self

    def rebase(self, system) -> None:
        """Zero the epoch cursors at the current cycle (end of warmup):
        the first measured epoch must not see warmup-phase traffic."""
        self._last_cycle = system.cycle
        self._last_dispatched = [
            system.thread_dispatched(tid) for tid in range(self.n_threads)
        ]
        totals = self.collector.thread_totals()
        self._last_loads = list(totals["loads"])
        self._last_latency = list(totals["load_latency"])

    # ------------------------------------------------------------------ #
    # The epoch tick.
    # ------------------------------------------------------------------ #

    def observe(self, system) -> EpochSignals:
        """Diff the cumulative series into this epoch's signals and
        advance the cursors."""
        cycle = system.cycle
        cycles = cycle - self._last_cycle
        dispatched = [
            system.thread_dispatched(tid) for tid in range(self.n_threads)
        ]
        totals = self.collector.thread_totals()
        ipcs = [
            (dispatched[tid] - self._last_dispatched[tid]) / cycles
            if cycles else 0.0
            for tid in range(self.n_threads)
        ]
        loads = [
            totals["loads"][tid] - self._last_loads[tid]
            for tid in range(self.n_threads)
        ]
        latency = [
            totals["load_latency"][tid] - self._last_latency[tid]
            for tid in range(self.n_threads)
        ]
        slowdowns = None
        if self.baseline_ipcs is not None:
            # Capped so idle epochs stay JSON-finite.
            slowdowns = [
                min(1e6, base / ipc) if ipc > 0 else 1e6
                for base, ipc in zip(self.baseline_ipcs, ipcs)
            ]
        self._last_cycle = cycle
        self._last_dispatched = dispatched
        self._last_loads = list(totals["loads"])
        self._last_latency = list(totals["load_latency"])
        return EpochSignals(
            cycle=cycle,
            cycles=cycles,
            ipcs=ipcs,
            loads=loads,
            load_latency=latency,
            ways=list(system.l2.occupancy_by_thread(self.n_threads)),
            slowdowns=slowdowns,
        )

    def decide(
        self, signals: EpochSignals, labels: List[str]
    ) -> Optional[Tuple[List[float], List[float]]]:
        """Return ``(phi, beta)`` share vectors to program, or ``None``
        to leave the current allocation in force this epoch."""
        return None

    def on_epoch(self, system) -> QoSDecision:
        """One control-loop iteration: observe, classify, decide,
        program through the registers, audit, and log."""
        signals = self.observe(system)
        labels = self.classifier.classify(signals)
        allocation = self.decide(signals, labels)
        programmed = allocation is not None
        if programmed:
            phi, beta = allocation
            # Transactional whole-vector programming: the register file
            # validates the sums before any share changes, so a bad
            # decision cannot leave a half-written allocation.
            system.registers.load_allocation(phi, beta)
        self.audit(system)
        throughput = list(signals.ipcs)
        if self.baseline_ipcs is not None:
            throughput = [
                ipc / base if base > 0 else 0.0
                for ipc, base in zip(throughput, self.baseline_ipcs)
            ]
        decision = QoSDecision(
            epoch=self.epochs,
            cycle=signals.cycle,
            cycles=signals.cycles,
            ipcs=signals.ipcs,
            loads=signals.loads,
            labels=labels,
            phi=list(system.registers.bandwidth["data"]),
            beta=list(system.registers.capacity),
            jain=jain_index(throughput),
            programmed=programmed,
            slowdowns=signals.slowdowns,
        )
        self.decisions.append(decision)
        self.epochs += 1
        self._emit(system, decision)
        return decision

    def audit(self, system) -> None:
        """Quota-conservation invariant, checked every epoch: every
        bank's live quotas are exactly what the architected capacity
        registers imply, and never over-allocate the ways."""
        shares = system.registers.capacity
        if sum(shares) > 1.0 + 1e-9:
            raise RuntimeError(
                f"capacity registers over-allocate: {shares}"
            )
        for index, bank in enumerate(system.banks):
            policy = bank.array.policy
            quotas = getattr(policy, "quotas", None)
            if quotas is None:
                continue
            expected = ways_quota(shares, policy.ways)
            if quotas != expected:
                raise RuntimeError(
                    f"bank{index} quotas {quotas} drifted from registers "
                    f"(expected {expected})"
                )
            if sum(quotas) > policy.ways:
                raise RuntimeError(
                    f"bank{index} quotas {quotas} over-allocate "
                    f"{policy.ways} ways"
                )

    def _emit(self, system, decision: QoSDecision) -> None:
        bus = system.telemetry
        if bus is None:
            return
        bus.emit(TraceEvent(
            ts=decision.cycle, phase=PH_INSTANT, category=CAT_QOS,
            name="decision", track="qos.controller",
            args={
                "epoch": decision.epoch,
                "policy": self.name,
                "programmed": int(decision.programmed),
                "jain": decision.jain,
                "labels": ",".join(decision.labels),
            },
        ))
        bus.emit(TraceEvent(
            ts=decision.cycle, phase=PH_COUNTER, category=CAT_QOS,
            name="phi", track="qos.shares",
            args={f"t{tid}": decision.phi[tid]
                  for tid in range(self.n_threads)},
        ))
        bus.emit(TraceEvent(
            ts=decision.cycle, phase=PH_COUNTER, category=CAT_QOS,
            name="beta", track="qos.capacity",
            args={f"t{tid}": decision.beta[tid]
                  for tid in range(self.n_threads)},
        ))
        bus.emit(TraceEvent(
            ts=decision.cycle, phase=PH_COUNTER, category=CAT_QOS,
            name="jain", track="qos.fairness",
            args={"jain": decision.jain},
        ))

    # ------------------------------------------------------------------ #
    # Export.
    # ------------------------------------------------------------------ #

    def decisions_document(self) -> Dict:
        """The JSON-able ``repro.qos-decisions/1`` log."""
        out: Dict = {
            "schema": QOS_DECISIONS_SCHEMA,
            "policy": self.name,
            "epoch_cycles": self.epoch_cycles,
            "n_threads": self.n_threads,
            "epochs": self.epochs,
            "decisions": [asdict(decision) for decision in self.decisions],
        }
        if self.baseline_ipcs is not None:
            out["baseline_ipcs"] = list(self.baseline_ipcs)
        if self.decisions:
            last = self.decisions[-1]
            out["final"] = {
                "phi": last.phi,
                "beta": last.beta,
                "labels": last.labels,
                "jain": last.jain,
            }
        return out


class FairnessController(QoSController):
    """Epoch-retuned bandwidth shares toward equalized slowdowns.

    The multi-thread generalization of
    :class:`~repro.policy.feedback.FeedbackAllocator`: instead of
    steering one thread's phi against a fixed IPC target, every epoch
    scales each thread's share by how far its slowdown sits from the
    pack's mean (``(slowdown_i / mean)**gamma``), clamps to
    ``[phi_min, phi_max]``, renormalizes, and programs the whole vector
    transactionally.  With solo baselines the slowdown is the paper's
    definition; without them raw inverse IPC is used, which equalizes
    IPCs instead.  Capacity shares are left as configured.
    """

    name = "fairness"

    def __init__(
        self,
        n_threads: int,
        epoch_cycles: int = 5_000,
        baseline_ipcs: Optional[Sequence[float]] = None,
        gamma: float = 0.5,
        phi_min: float = 0.05,
        phi_max: float = 0.60,
        deadband: float = 1.05,
        classifier: Optional[ThreadClassifier] = None,
    ) -> None:
        super().__init__(n_threads, epoch_cycles, baseline_ipcs, classifier)
        if not 0.0 < gamma <= 2.0:
            raise ValueError("gamma must be in (0, 2]")
        if not 0.0 < phi_min < phi_max <= 1.0:
            raise ValueError("need 0 < phi_min < phi_max <= 1")
        if deadband < 1.0:
            raise ValueError("deadband is a max/min slowdown ratio >= 1")
        self.gamma = gamma
        self.phi_min = phi_min
        self.phi_max = phi_max
        self.deadband = deadband

    def decide(
        self, signals: EpochSignals, labels: List[str]
    ) -> Optional[Tuple[List[float], List[float]]]:
        if signals.slowdowns is not None:
            slowdowns = list(signals.slowdowns)
        else:
            # No baselines: equalize raw IPCs (slowdown proxy 1/ipc).
            slowdowns = [
                min(1e6, 1.0 / ipc) if ipc > 0 else 1e6
                for ipc in signals.ipcs
            ]
        positive = [s for s in slowdowns if s > 0]
        if not positive:
            return None
        if max(positive) / min(positive) < self.deadband:
            return None  # already even; avoid churn
        mean = sum(slowdowns) / len(slowdowns)
        if mean <= 0:
            return None
        current = self.system.registers.bandwidth["data"]
        scaled = [
            min(self.phi_max, max(
                self.phi_min,
                current[tid] * (slowdowns[tid] / mean) ** self.gamma,
            ))
            for tid in range(self.n_threads)
        ]
        total = sum(scaled)
        phi = [share / total for share in scaled]
        beta = list(self.system.registers.capacity)
        return phi, beta

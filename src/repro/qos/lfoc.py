"""LFOC-style clustering allocation over the classifier taxonomy.

LFOC ("Lightweight Fair Optimal Clustering", PAPERS.md) observes that
near-optimal shared-cache partitions need only a coarse grouping of
threads: *streaming* threads gain nothing from capacity, *light*
threads need almost none, and the remaining *cache-hungry* threads are
the only ones worth dividing the cache between.  This controller maps
that insight onto the VPC register file each epoch:

* **capacity (beta)** — streaming and light threads are each pinned to
  a single way (the minimum that keeps their guarantee non-zero and
  their lines from thrashing everyone else's); the ways left over are
  split evenly among the cache-hungry cluster.  With no hungry threads
  the split is simply even.
* **bandwidth (phi)** — the fair-queuing arbiters are work-conserving,
  so phi mostly sets *insulation* rather than throughput; the policy
  keeps shares near-equal but shaves ``streaming_phi_scale`` off each
  streaming thread (they are bandwidth-elastic: their progress is
  DRAM-bound, not L2-slot-bound) and redistributes the shavings to the
  cache-hungry cluster, whose loads are latency-critical.

Decisions are only reprogrammed when the committed labels change, so
the hysteresis in :class:`~repro.qos.classifier.ThreadClassifier`
directly bounds the register-write rate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.qos.classifier import (
    LABEL_HUNGRY,
    LABEL_LIGHT,
    LABEL_STREAMING,
    EpochSignals,
    ThreadClassifier,
)
from repro.qos.controller import QoSController


class LFOCController(QoSController):
    """Cluster threads by label; program per-cluster quotas + shares."""

    name = "lfoc"

    def __init__(
        self,
        n_threads: int,
        epoch_cycles: int = 5_000,
        baseline_ipcs: Optional[Sequence[float]] = None,
        streaming_phi_scale: float = 0.85,
        classifier: Optional[ThreadClassifier] = None,
    ) -> None:
        super().__init__(n_threads, epoch_cycles, baseline_ipcs, classifier)
        if not 0.0 < streaming_phi_scale <= 1.0:
            raise ValueError("streaming phi scale must be in (0, 1]")
        self.streaming_phi_scale = streaming_phi_scale
        self.ways = 0  # bound at attach time
        self._programmed_labels: Optional[List[str]] = None

    def attach(self, system) -> "LFOCController":
        super().attach(system)
        self.ways = system.config.l2.ways
        if self.ways < self.n_threads:
            raise ValueError(
                f"LFOC clustering needs >= 1 way per thread "
                f"({self.n_threads} threads, {self.ways} ways)"
            )
        return self

    # ------------------------------------------------------------------ #
    # Cluster allocation.
    # ------------------------------------------------------------------ #

    def cluster_capacity(self, labels: List[str]) -> List[float]:
        """Per-thread beta as exact way multiples (``k / ways``)."""
        hungry = [t for t, label in enumerate(labels)
                  if label == LABEL_HUNGRY]
        if not hungry:
            return [1.0 / self.n_threads] * self.n_threads
        way_counts = [1] * self.n_threads  # streaming/light floor
        remaining = self.ways - (self.n_threads - len(hungry))
        per_hungry = remaining // len(hungry)
        for tid in hungry:
            way_counts[tid] = per_hungry
        # Leftover ways (remainder of the even split) stay unallocated —
        # the capacity manager treats them as excess, same as the
        # paper's fractional-quota remainders.
        return [count / self.ways for count in way_counts]

    def cluster_bandwidth(self, labels: List[str]) -> List[float]:
        equal = 1.0 / self.n_threads
        phi = [equal] * self.n_threads
        streaming = [t for t, label in enumerate(labels)
                     if label == LABEL_STREAMING]
        hungry = [t for t, label in enumerate(labels)
                  if label == LABEL_HUNGRY]
        if streaming and hungry:
            shaved = equal * (1.0 - self.streaming_phi_scale)
            bonus = shaved * len(streaming) / len(hungry)
            for tid in streaming:
                phi[tid] = equal - shaved
            for tid in hungry:
                phi[tid] = equal + bonus
        return phi

    def decide(
        self, signals: EpochSignals, labels: List[str]
    ) -> Optional[Tuple[List[float], List[float]]]:
        if labels == self._programmed_labels:
            return None  # clusters unchanged; keep the allocation
        self._programmed_labels = list(labels)
        return self.cluster_bandwidth(labels), self.cluster_capacity(labels)


# Re-exported label names so policy users need not import the classifier.
__all__ = [
    "LFOCController",
    "LABEL_HUNGRY",
    "LABEL_LIGHT",
    "LABEL_STREAMING",
]

"""The paper's primary contribution: VPC arbiters and capacity manager."""

from repro.core.arbiter import (
    Arbiter,
    ArbiterEntry,
    FCFSArbiter,
    RoWFCFSArbiter,
    round_robin_order,
)
from repro.core.capacity import VPCCapacityManager, ways_quota
from repro.core.monitor import QoSMonitor, ServiceViolation, run_monitored
from repro.core.qos import QoSOutcome, monotonicity_violations, summarize
from repro.core.registers import BANDWIDTH_RESOURCES, VPCControlRegisters
from repro.core.vpc_arbiter import VPCArbiter

__all__ = [
    "Arbiter",
    "ArbiterEntry",
    "BANDWIDTH_RESOURCES",
    "FCFSArbiter",
    "QoSMonitor",
    "QoSOutcome",
    "RoWFCFSArbiter",
    "ServiceViolation",
    "VPCArbiter",
    "VPCCapacityManager",
    "VPCControlRegisters",
    "monotonicity_violations",
    "round_robin_order",
    "run_monitored",
    "summarize",
    "ways_quota",
]

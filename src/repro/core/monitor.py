"""Online QoS monitoring: audit the bandwidth guarantee while running.

System software that programs the VPC control registers wants to *know*
when a guarantee was not delivered (a hardware bug, an over-allocation,
or an unaccounted preemption effect).  :class:`QoSMonitor` is a
telemetry-bus subscriber (see docs/ARCHITECTURE.md "Observability"): it
watches the ``arbiter`` event stream of a live system — every enqueue
and every grant, with pending counts and granted service riding on the
events — and, per monitoring window, checks the fair-queuing service
bound for each thread that stayed backlogged through the window:

    service >= phi * window - allowance

where the allowance covers non-preemptibility and window-edge effects
(three maximum service times: a grant straddling each window edge plus
one EDF scheduling lag).  Windows where the bound fails are recorded as
:class:`ServiceViolation`s.

Because the audit is event-driven it works under the skip-ahead event
kernel (no per-cycle polling); windows close lazily as event timestamps
cross their boundaries, and :meth:`QoSMonitor.finish` flushes the
windows a run's tail spans.  Use :func:`run_monitored` to drive a
system with a monitor attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.vpc_arbiter import VPCArbiter
from repro.system.cmp import CMPSystem
from repro.telemetry import TelemetryBus
from repro.telemetry.events import CAT_ARBITER, TraceEvent


@dataclass(frozen=True)
class ServiceViolation:
    """One failed window on one resource for one thread."""

    window_start: int
    window_end: int
    bank_resource: str
    thread_id: int
    granted: int
    guaranteed: float


class QoSMonitor:
    """Watches the VPC arbiters of a :class:`CMPSystem` over its bus."""

    def __init__(self, system: CMPSystem, window: int = 2_000) -> None:
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        if system.config.arbiter != "vpc":
            raise ValueError("QoSMonitor requires a VPC-arbitrated system")
        self.system = system
        self.window = window
        self.violations: List[ServiceViolation] = []
        self.windows_checked = 0
        self._arbiters: List[Tuple[str, VPCArbiter]] = []
        for arbiters in system._vpc_arbiters.values():
            for arbiter in arbiters:
                self._arbiters.append((arbiter.trace_name, arbiter))
        # Guarantee-conformance ledger: per (resource, thread), windows
        # where the thread was eligible (backlogged with a nonzero
        # share) and windows where the service bound was met.
        n = system.config.n_threads
        self._eligible: Dict[str, List[int]] = {
            name: [0] * n for name, _ in self._arbiters
        }
        self._met: Dict[str, List[int]] = {
            name: [0] * n for name, _ in self._arbiters
        }
        # Subscribe on the system's bus (creating one turns the
        # instrumentation on; until then the arbiters emit nothing).
        if system.telemetry is None:
            system.attach_telemetry(TelemetryBus())
        system.telemetry.attach(self)

        n = system.config.n_threads
        self._window_start = system.cycle
        # Live pending counts, updated from event args; seeded from the
        # arbiters since requests may already be in flight at attach.
        self._pending: Dict[str, List[int]] = {
            name: [arbiter.pending_for(tid) for tid in range(n)]
            for name, arbiter in self._arbiters
        }
        self._granted: Dict[str, List[int]] = {}
        self._backlogged: Dict[str, List[bool]] = {}
        self._open_window()

    def _open_window(self) -> None:
        self._granted = {name: [0] * self.system.config.n_threads
                         for name, _ in self._arbiters}
        # A thread idle when the window opens is exempt from the bound,
        # exactly like the per-cycle poller's first observation was.
        self._backlogged = {
            name: [count > 0 for count in counts]
            for name, counts in self._pending.items()
        }

    # ------------------------------------------------------------------ #
    # TraceSink protocol.
    # ------------------------------------------------------------------ #

    def emit(self, event: TraceEvent) -> None:
        if event.category != CAT_ARBITER:
            return
        boundary = self._window_start + self.window
        while event.ts >= boundary:
            self._close_window(boundary)
            boundary = self._window_start + self.window
        track = event.track
        pending = self._pending.get(track)
        if pending is None:
            return  # an arbiter this monitor was not built for
        tid = event.tid
        pending[tid] = event.args["pending"]
        if event.name == "grant":
            self._granted[track][tid] += event.dur
            if pending[tid] == 0:
                self._backlogged[track][tid] = False

    def finish(self, end: int) -> None:
        """Flush every window that closed at or before ``end``."""
        while self._window_start + self.window <= end:
            self._close_window(self._window_start + self.window)

    # ------------------------------------------------------------------ #
    # Window audit.
    # ------------------------------------------------------------------ #

    def _close_window(self, end: int) -> None:
        span = end - self._window_start
        self.windows_checked += 1
        for name, arbiter in self._arbiters:
            max_service = 2 * arbiter.service_latency
            backlogged = self._backlogged[name]
            granted_row = self._granted[name]
            for thread_id, share in enumerate(arbiter.shares):
                if share <= 0 or not backlogged[thread_id]:
                    continue
                granted = granted_row[thread_id]
                # 3x max service: a grant straddling each window edge
                # plus one EDF/non-preemption lag inside the window.
                guaranteed = share * span - 3 * max_service
                self._eligible[name][thread_id] += 1
                if granted >= guaranteed:
                    self._met[name][thread_id] += 1
                if granted < guaranteed:
                    self.violations.append(
                        ServiceViolation(
                            window_start=self._window_start,
                            window_end=end,
                            bank_resource=name,
                            thread_id=thread_id,
                            granted=granted,
                            guaranteed=guaranteed,
                        )
                    )
        self._window_start = end
        self._open_window()

    @property
    def clean(self) -> bool:
        return not self.violations

    def conformance(self) -> Dict:
        """Guarantee-conformance summary for the QoS report card.

        A thread's conformance is the fraction of its *eligible* windows
        (backlogged with a nonzero share, on any resource) where the
        fair-queuing service bound held.  Threads never eligible report
        100%: no guarantee was ever at stake.
        """
        n = self.system.config.n_threads
        per_thread = []
        for tid in range(n):
            eligible = sum(rows[tid] for rows in self._eligible.values())
            met = sum(rows[tid] for rows in self._met.values())
            per_thread.append({
                "thread": tid,
                "eligible_windows": eligible,
                "met_windows": met,
                "conformance_pct":
                    100.0 * met / eligible if eligible else 100.0,
            })
        return {
            "window": self.window,
            "windows_checked": self.windows_checked,
            "violations": len(self.violations),
            "clean": self.clean,
            "per_thread": per_thread,
            "per_resource": {
                name: {"eligible": list(self._eligible[name]),
                       "met": list(self._met[name])}
                for name, _ in self._arbiters
            },
        }


def run_monitored(
    system: CMPSystem, cycles: int, monitor: QoSMonitor
) -> QoSMonitor:
    """Advance ``system`` by ``cycles`` with the monitor attached."""
    system.run(cycles)
    monitor.finish(system.cycle)
    return monitor

"""Online QoS monitoring: audit the bandwidth guarantee while running.

System software that programs the VPC control registers wants to *know*
when a guarantee was not delivered (a hardware bug, an over-allocation,
or an unaccounted preemption effect).  :class:`QoSMonitor` watches every
VPC arbiter in a live system and, per monitoring window, checks the
fair-queuing service bound for each thread that stayed backlogged
through the window:

    service >= phi * window - allowance

where the allowance covers non-preemptibility and window-edge effects
(three maximum service times: a grant straddling each window edge plus
one EDF scheduling lag).  Windows where the bound fails are recorded as
:class:`ServiceViolation`s.

Use :func:`run_monitored` to drive a system with a monitor attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.vpc_arbiter import VPCArbiter
from repro.system.cmp import CMPSystem


@dataclass(frozen=True)
class ServiceViolation:
    """One failed window on one resource for one thread."""

    window_start: int
    window_end: int
    bank_resource: str
    thread_id: int
    granted: int
    guaranteed: float


class QoSMonitor:
    """Watches the VPC arbiters of a :class:`CMPSystem`."""

    def __init__(self, system: CMPSystem, window: int = 2_000) -> None:
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        if system.config.arbiter != "vpc":
            raise ValueError("QoSMonitor requires a VPC-arbitrated system")
        self.system = system
        self.window = window
        self.violations: List[ServiceViolation] = []
        self.windows_checked = 0
        self._arbiters = []
        for resource, arbiters in system._vpc_arbiters.items():
            for index, arbiter in enumerate(arbiters):
                self._arbiters.append((f"bank{index}.{resource}", arbiter))
        self._window_start = system.cycle
        self._service_snapshot = [
            list(arbiter.service_granted) for _, arbiter in self._arbiters
        ]
        self._always_backlogged = [
            [True] * system.config.n_threads for _ in self._arbiters
        ]

    def tick(self, now: int) -> None:
        """Call once per simulated cycle (after ``system.step()``)."""
        for index, (_, arbiter) in enumerate(self._arbiters):
            flags = self._always_backlogged[index]
            for thread_id in range(self.system.config.n_threads):
                if flags[thread_id] and arbiter.pending_for(thread_id) == 0:
                    flags[thread_id] = False
        if now - self._window_start + 1 >= self.window:
            self._close_window(now + 1)

    def _close_window(self, end: int) -> None:
        span = end - self._window_start
        self.windows_checked += 1
        for index, (name, arbiter) in enumerate(self._arbiters):
            max_service = 2 * arbiter.service_latency
            for thread_id, share in enumerate(arbiter.shares):
                if share <= 0 or not self._always_backlogged[index][thread_id]:
                    continue
                granted = (
                    arbiter.service_granted[thread_id]
                    - self._service_snapshot[index][thread_id]
                )
                # 3x max service: a grant straddling each window edge
                # plus one EDF/non-preemption lag inside the window.
                guaranteed = share * span - 3 * max_service
                if granted < guaranteed:
                    self.violations.append(
                        ServiceViolation(
                            window_start=self._window_start,
                            window_end=end,
                            bank_resource=name,
                            thread_id=thread_id,
                            granted=granted,
                            guaranteed=guaranteed,
                        )
                    )
        self._window_start = end
        self._service_snapshot = [
            list(arbiter.service_granted) for _, arbiter in self._arbiters
        ]
        self._always_backlogged = [
            [True] * self.system.config.n_threads for _ in self._arbiters
        ]

    @property
    def clean(self) -> bool:
        return not self.violations


def run_monitored(
    system: CMPSystem, cycles: int, monitor: QoSMonitor
) -> QoSMonitor:
    """Advance ``system`` by ``cycles`` with the monitor attached."""
    for _ in range(cycles):
        now = system.cycle
        system.step()
        monitor.tick(now)
    return monitor

"""The VPC Arbiter (paper Section 4.1).

A fair-queuing arbiter for one shared cache resource.  Hardware state,
exactly as the paper describes (Figure 3):

* ``R.clk`` — a real-time cycle counter (we use the ``now`` argument);
* ``R.L[i]`` — thread *i*'s virtual service time ``L / phi_i``, where
  ``L`` is the resource latency.  Recomputed only when the share changes;
* ``R.S[i]`` — the virtual time thread *i*'s virtual private resource
  next becomes available.

Per-request equations (Section 4.1.1):

* Eq. 3': ``S_i^k = R.S[i]`` — the optimized start-time, valid because of
  the Eq. 6 maintenance rule;
* Eq. 4:  ``F_i^k = S_i^k + R.L[i]`` (``+ 2 R.L[i]`` for a data-array
  write, generalized here via ``service_quanta``);
* Eq. 5:  on grant, ``R.S[i] <- F_i^k``;
* Eq. 6:  on enqueue into an *empty* thread buffer, if ``R.S[i] <=
  R.clk`` then ``R.S[i] <- R.clk``.

The arbiter grants the thread with the earliest virtual finish time
(EDF).  Because ``R.S[i]`` depends only on how much service the thread
has received — not on *which* request is served — requests inside a
thread's buffer may be reordered freely; we implement the paper's
Read-over-Write intra-thread optimization (Section 4.1.1, last
paragraph), controllable via ``intra_thread_row`` for the ablation study.

Zero-share threads ("VPC 0 %" in Figure 8) have an infinite virtual
service time: they are served only when every finite-share buffer is
empty (the fairness policy's work-conserving excess distribution), FCFS
among themselves.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.core.arbiter import Arbiter, ArbiterEntry
from repro.telemetry.events import CAT_ARBITER, PH_INSTANT, TraceEvent


class VPCArbiter(Arbiter):
    """Fair-queuing arbiter for a single shared resource."""

    __slots__ = ("selection", "intra_thread_row", "_shares", "_r_l",
                 "_r_s", "_buffers", "_size", "service_granted")

    def __init__(
        self,
        n_threads: int,
        shares: Sequence[float],
        service_latency: int,
        intra_thread_row: bool = True,
        selection: str = "finish",
    ) -> None:
        super().__init__(n_threads, service_latency)
        if len(shares) != n_threads:
            raise ValueError(
                f"{len(shares)} shares supplied for {n_threads} threads"
            )
        if selection not in ("finish", "start"):
            raise ValueError(
                f"selection must be 'finish' (EDF/WFQ) or 'start' (SFQ), "
                f"got {selection!r}"
            )
        # "finish" = earliest-virtual-finish-first, the paper's policy.
        # "start" = earliest-virtual-start-first (start-time fair
        # queuing), an alternative fairness policy for the comparison the
        # paper defers to future work (Section 4.1.3): SFQ is gentler on
        # threads with large service quanta (writes) when distributing
        # excess bandwidth.
        self.selection = selection
        if sum(shares) > 1.0 + 1e-9:
            raise ValueError(f"shares over-allocate the resource: {list(shares)}")
        if any(s < 0 for s in shares):
            raise ValueError(f"negative share in {list(shares)}")

        self.intra_thread_row = intra_thread_row
        self._shares: List[float] = list(shares)
        # R.L[i] = L / phi_i  (infinite for zero-share threads).
        self._r_l: List[float] = [self._virtual_service(s) for s in shares]
        # R.S[i]: virtual availability time of thread i's virtual resource.
        self._r_s: List[float] = [0.0] * n_threads
        self._buffers: List[Deque[ArbiterEntry]] = [deque() for _ in range(n_threads)]
        self._size = 0  # incremental total; len() sits on the bank hot path
        # Instrumentation: real service cycles granted per thread.
        # (_trace / trace_name / service_latency live on the base class.)
        self.service_granted: List[int] = [0] * n_threads

    # ------------------------------------------------------------------ #
    # Control-register interface (software-visible, Section 4 intro).
    # ------------------------------------------------------------------ #

    def _virtual_service(self, share: float) -> float:
        if share == 0.0:
            return math.inf
        return self.service_latency / share

    @property
    def shares(self) -> List[float]:
        return list(self._shares)

    def set_share(self, thread_id: int, share: float) -> None:
        """Change a thread's bandwidth allocation at run time.

        The paper notes R.L only needs recomputation on share changes;
        R.S is left alone so in-progress virtual time stays consistent.
        """
        if not 0.0 <= share <= 1.0:
            raise ValueError(f"share must be in [0, 1], got {share}")
        others = sum(s for t, s in enumerate(self._shares) if t != thread_id)
        if others + share > 1.0 + 1e-9:
            raise ValueError("share change would over-allocate the resource")
        self._shares[thread_id] = share
        self._r_l[thread_id] = self._virtual_service(share)

    def set_shares(self, shares: Sequence[float]) -> None:
        """Vector form of :meth:`set_share`: mirror a whole register
        vector in one step.  Needed for transactional reprogramming
        (``VPCControlRegisters.load_allocation``): applying an
        already-validated vector thread by thread could transiently
        over-allocate mid-update, so the whole vector is validated and
        assigned together.
        """
        if len(shares) != self.n_threads:
            raise ValueError(
                f"{len(shares)} shares supplied for {self.n_threads} threads"
            )
        if any(not 0.0 <= share <= 1.0 for share in shares):
            raise ValueError(f"share out of [0, 1] in {list(shares)}")
        if sum(shares) > 1.0 + 1e-9:
            raise ValueError(f"shares over-allocate the resource: {list(shares)}")
        for thread_id, share in enumerate(shares):
            if share != self._shares[thread_id]:
                self._shares[thread_id] = share
                self._r_l[thread_id] = self._virtual_service(share)

    # ------------------------------------------------------------------ #
    # Arbitration.
    # ------------------------------------------------------------------ #

    def enqueue(self, entry: ArbiterEntry, now: int) -> None:
        self._check_thread(entry)
        entry.arrival = now
        tid = entry.thread_id
        buffer = self._buffers[tid]
        if not buffer and self._r_s[tid] <= now:
            self._r_s[tid] = float(now)  # Eq. 6
        buffer.append(entry)
        self._size += 1
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=now, phase=PH_INSTANT, category=CAT_ARBITER,
                name="enqueue", track=self.trace_name, tid=tid,
                args={"pending": len(self._buffers[tid]),
                      "vstart": self._r_s[tid]},
            ))
        if self._acct is not None:
            self._acct.arbiter_queued(self.acct_stage, entry, now)
        if self._rtrace is not None:
            self._rtrace.arbiter_queued(self.acct_stage, entry, now)

    def select(self, now: int) -> Optional[ArbiterEntry]:
        # Hot path: this runs on every grant of every shared resource.
        # The comparison below is the unrolled lexicographic order of the
        # tuple key (rank, arrival, order) — int/float comparisons are
        # exact here (cycle counts and order stamps stay far below 2**53).
        buffers = self._buffers
        r_s = self._r_s
        r_l = self._r_l
        inf = math.inf
        sfq = self.selection == "start"
        row = self.intra_thread_row
        best_tid = -1
        best_rank = inf
        best_arrival = inf
        best_order = inf
        best_finish = math.inf
        best_entry: Optional[ArbiterEntry] = None
        for tid, buffer in enumerate(buffers):
            if not buffer:
                continue
            # Inlined _pick_within_thread fast path: the head already is
            # the oldest demand read (or intra-thread RoW is off).
            entry = buffer[0]
            if row and (entry.is_write or entry.is_prefetch):
                entry = self._pick_within_thread(buffer)
            finish = r_s[tid] + entry.service_quanta * r_l[tid]
            if sfq:
                # SFQ: order by virtual start; infinite-R.L threads still
                # sort last via the finish value.
                rank = r_s[tid] if finish != inf else inf
            else:
                rank = finish
            if rank < best_rank or (
                rank == best_rank
                and (
                    entry.arrival < best_arrival
                    or (entry.arrival == best_arrival
                        and entry.order < best_order)
                )
            ):
                best_rank = rank
                best_arrival = entry.arrival
                best_order = entry.order
                best_tid = tid
                best_entry = entry
                best_finish = finish
        if best_entry is None:
            return None

        buffer = buffers[best_tid]
        if buffer[0] is best_entry:
            buffer.popleft()
        else:
            buffer.remove(best_entry)
        self._size -= 1
        if best_finish != math.inf:
            self._r_s[best_tid] = best_finish  # Eq. 5
        self.service_granted[best_tid] += (
            best_entry.service_quanta * self.service_latency
        )
        self.grants += 1
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=now, phase=PH_INSTANT, category=CAT_ARBITER,
                name="grant", track=self.trace_name, tid=best_tid,
                dur=best_entry.service_quanta * self.service_latency,
                args={"pending": len(self._buffers[best_tid]),
                      "vfinish": best_finish},
            ))
        if self._acct is not None:
            self._acct.arbiter_granted(self.acct_stage, best_entry, now)
        if self._rtrace is not None:
            self._rtrace.arbiter_granted(self.acct_stage, best_entry, now)
        return best_entry

    def _pick_within_thread(self, buffer: Deque[ArbiterEntry]) -> ArbiterEntry:
        """Intra-thread candidate: oldest demand read, else oldest
        prefetch read, else oldest entry (Read-over-Write plus the
        demand-over-prefetch ordering Section 4.1.1 mentions).

        Legal per Section 4.1.1: any request in the thread's buffer may be
        served without changing the thread's bandwidth accounting.
        """
        first = buffer[0]
        if not self.intra_thread_row:
            return first
        if not first.is_write and not first.is_prefetch:
            return first  # head is already the oldest demand read
        prefetch_read = None
        for entry in buffer:
            if entry.is_write:
                continue
            if not entry.is_prefetch:
                return entry
            if prefetch_read is None:
                prefetch_read = entry
        return prefetch_read if prefetch_read is not None else buffer[0]

    def __len__(self) -> int:
        return self._size

    def pending_for(self, thread_id: int) -> int:
        return len(self._buffers[thread_id])

    def virtual_finish_preview(self, thread_id: int) -> float:
        """The virtual finish time the thread's next grant would get.

        Exposed for tests and for the fairness-policy analysis: the paper
        observes this value doubles as an indicator of excess service
        received (Section 4.1.3).
        """
        buffer = self._buffers[thread_id]
        if not buffer:
            return math.inf
        entry = self._pick_within_thread(buffer)
        return self._r_s[thread_id] + entry.service_quanta * self._r_l[thread_id]

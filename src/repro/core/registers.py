"""Software-visible VPC control registers (paper Section 4, intro).

"The VPC controller ... has a set of control registers visible to system
software that specify a VPC configuration for each hardware thread
sharing the cache.  For each active thread, the control registers
specify a share of cache capacity (beta_i), and a share of tag array,
data array, and data bus bandwidths (phi_i)."

The mechanisms allow the three bandwidth resources to be allocated
independently; the paper (and our experiments) restrict to a single phi
per thread, but this register file keeps the general form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

BANDWIDTH_RESOURCES = ("tag", "data", "bus")


@dataclass
class VPCControlRegisters:
    """Per-thread (phi, beta) register file with change notification."""

    n_threads: int
    bandwidth: Dict[str, List[float]] = field(init=False)
    capacity: List[float] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("need at least one thread")
        equal = [1.0 / self.n_threads] * self.n_threads
        self.bandwidth = {res: list(equal) for res in BANDWIDTH_RESOURCES}
        self.capacity = list(equal)
        self._listeners = []

    def subscribe(self, callback) -> None:
        """``callback(resource_name, thread_id, share)`` on every write."""
        self._listeners.append(callback)

    def write_bandwidth(
        self, thread_id: int, share: float, resource: str = "all"
    ) -> None:
        """Set phi for one thread on one (or all) bandwidth resources."""
        self._check(thread_id, share)
        resources = BANDWIDTH_RESOURCES if resource == "all" else (resource,)
        for res in resources:
            if res not in self.bandwidth:
                raise ValueError(f"unknown bandwidth resource {res!r}")
            shares = self.bandwidth[res]
            others = sum(s for t, s in enumerate(shares) if t != thread_id)
            if others + share > 1.0 + 1e-9:
                raise ValueError(
                    f"{res}: share {share} for thread {thread_id} over-allocates"
                )
            shares[thread_id] = share
            for listener in self._listeners:
                listener(res, thread_id, share)

    def write_capacity(self, thread_id: int, share: float) -> None:
        self._check(thread_id, share)
        others = sum(s for t, s in enumerate(self.capacity) if t != thread_id)
        if others + share > 1.0 + 1e-9:
            raise ValueError("capacity share over-allocates the cache")
        self.capacity[thread_id] = share
        for listener in self._listeners:
            listener("capacity", thread_id, share)

    def load_allocation(
        self, bandwidth_shares: Sequence[float], capacity_shares: Sequence[float]
    ) -> None:
        """Bulk-program the register file (boot-time configuration)."""
        if len(bandwidth_shares) != self.n_threads:
            raise ValueError("bandwidth share count mismatch")
        if len(capacity_shares) != self.n_threads:
            raise ValueError("capacity share count mismatch")
        if sum(bandwidth_shares) > 1.0 + 1e-9:
            raise ValueError("bandwidth shares over-allocate")
        if sum(capacity_shares) > 1.0 + 1e-9:
            raise ValueError("capacity shares over-allocate")
        for res in BANDWIDTH_RESOURCES:
            self.bandwidth[res] = list(bandwidth_shares)
        self.capacity = list(capacity_shares)
        for thread_id in range(self.n_threads):
            for res in BANDWIDTH_RESOURCES:
                for listener in self._listeners:
                    listener(res, thread_id, bandwidth_shares[thread_id])
            for listener in self._listeners:
                listener("capacity", thread_id, capacity_shares[thread_id])

    def _check(self, thread_id: int, share: float) -> None:
        if not 0 <= thread_id < self.n_threads:
            raise ValueError(f"thread {thread_id} out of range")
        if not 0.0 <= share <= 1.0:
            raise ValueError(f"share must be in [0, 1], got {share}")

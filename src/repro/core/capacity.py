"""The VPC Capacity Manager (paper Section 4.2).

A thread-aware replacement policy that guarantees each thread at least
``beta_i * ways`` ways in every set (same set count as the shared
cache), preserving performance monotonicity (Section 4.3).  Victim
selection:

* **Condition 1** — evict the LRU line owned by *another* thread ``j``
  that currently occupies more than its quota of ways in the set.
  Taking that line cannot push ``j`` below its guarantee, and the line
  would not have been resident in ``j``'s equivalent private cache.
* **Condition 2** — otherwise every thread holds exactly its quota, so
  evict the requesting thread's own LRU line (the same line its private
  cache would have replaced).

**Fairness refinement** (the paper leaves this open; see DESIGN.md):
when several threads exceed their quotas we victimize the *most*
over-quota thread, breaking ties by global recency (least recent first).
Excess capacity therefore drains from whoever holds the most of it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.replacement import ReplacementPolicy, SetView
from repro.telemetry.events import (
    CAT_CACHE,
    PH_COUNTER,
    PH_INSTANT,
    TraceEvent,
)


def ways_quota(capacity_shares: Sequence[float], ways: int) -> List[int]:
    """Per-thread guaranteed way counts: ``floor(beta_i * ways)``.

    The guarantee is "at least beta_i * ways"; flooring leaves any
    fractional remainder as unallocated (excess) capacity, matching the
    paper's treatment of left-over resources.
    """
    if any(share < 0 for share in capacity_shares):
        raise ValueError(f"negative capacity share in {list(capacity_shares)}")
    if sum(capacity_shares) > 1.0 + 1e-9:
        raise ValueError(f"capacity shares over-allocate: {list(capacity_shares)}")
    quotas = [int(share * ways + 1e-9) for share in capacity_shares]
    if sum(quotas) > ways:
        raise ValueError(
            f"quotas {quotas} exceed {ways} ways (shares {list(capacity_shares)})"
        )
    return quotas


class VPCCapacityManager(ReplacementPolicy):
    """Way-quota thread-aware replacement (Section 4.2)."""

    def __init__(self, capacity_shares: Sequence[float], ways: int) -> None:
        self.quotas = ways_quota(capacity_shares, ways)
        self.n_threads = len(self.quotas)
        self.ways = ways
        # Instrumentation for the fairness analysis.
        self.condition1_evictions = 0
        self.condition2_evictions = 0

    def set_quotas(self, capacity_shares: Sequence[float]) -> List[int]:
        """Reprogram the per-thread way quotas in place (no cache rebuild).

        The runtime path behind ``VPCControlRegisters.write_capacity``:
        resident lines are untouched, only the victim-selection quotas
        change, so the next insert in each set starts draining whoever
        the new allocation leaves over quota.  Raises (leaving the old
        quotas in force) if the shares over-allocate or change thread
        count.  Returns the new quota vector.
        """
        if len(capacity_shares) != self.n_threads:
            raise ValueError(
                f"expected {self.n_threads} capacity shares, "
                f"got {len(capacity_shares)}"
            )
        self.quotas = ways_quota(capacity_shares, self.ways)
        return self.quotas

    def choose_victim(self, set_view: SetView, requester: int) -> int:
        if not 0 <= requester < self.n_threads:
            raise ValueError(f"unknown requester thread {requester}")
        occupancy = [set_view.occupancy(t) for t in range(self.n_threads)]
        lru_ways = set_view.valid_lru_ways()
        if not lru_ways:
            raise RuntimeError("choose_victim called on a set with no valid lines")

        # Condition 1: LRU line of an over-quota *other* thread; among
        # several over-quota threads prefer the most over-quota one.
        best_way = -1
        best_excess = 0
        for way in lru_ways:  # LRU-first: the first hit per thread is its LRU line
            owner = set_view.owners[way]
            if owner == requester or not 0 <= owner < self.n_threads:
                continue
            excess = occupancy[owner] - self.quotas[owner]
            if excess > best_excess:
                best_excess = excess
                best_way = way
        if best_way >= 0:
            self.condition1_evictions += 1
            if self._trace is not None:
                self._emit(set_view, requester, "cond1", best_way,
                           occupancy, excess=best_excess)
            return best_way

        # Condition 2: the requester's own LRU line.
        for way in lru_ways:
            if set_view.owners[way] == requester:
                self.condition2_evictions += 1
                if self._trace is not None:
                    self._emit(set_view, requester, "cond2", way, occupancy)
                return way

        # The requester owns nothing in the set and nobody else is over
        # quota.  This can only happen when some capacity is unallocated
        # or owned by retired threads; fall back to global LRU so the
        # insert can proceed (the guarantee of every quota-holding thread
        # is still respected because none of them is over quota by <= 0).
        self.condition2_evictions += 1
        if self._trace is not None:
            self._emit(set_view, requester, "cond2", lru_ways[0], occupancy)
        return lru_ways[0]

    def _emit(
        self,
        set_view: SetView,
        requester: int,
        condition: str,
        way: int,
        occupancy: List[int],
        excess: int = 0,
    ) -> None:
        """One victimization: a condition instant plus the set's per-
        thread way-occupancy as a counter sample (a Perfetto counter
        track per set).  Occupancy is pre-eviction — the state the
        decision was made against."""
        now = self.clock() if self.clock is not None else 0
        self._trace.emit(TraceEvent(
            ts=now, phase=PH_INSTANT, category=CAT_CACHE,
            name=condition, track=self.trace_name, tid=requester,
            args={"set": set_view.index, "way": way,
                  "victim": set_view.owners[way], "excess": excess},
        ))
        self._trace.emit(TraceEvent(
            ts=now, phase=PH_COUNTER, category=CAT_CACHE,
            name="ways", track=f"{self.trace_name}.set{set_view.index}",
            args={f"t{tid}": occupancy[tid]
                  for tid in range(self.n_threads)},
        ))

    def guarantees_respected(self, set_view: SetView) -> bool:
        """Audit helper: no thread below quota while another is above.

        A thread can be *below* its quota only because it has not yet
        inserted enough lines — the policy never evicts a thread below
        quota to benefit another.  This checks the invariant the tests
        rely on: a thread at-or-over quota never loses a line to an
        under-quota requester via Condition 1.
        """
        for thread_id in range(self.n_threads):
            occupancy = set_view.occupancy(thread_id)
            if occupancy > self.ways:
                return False
        return True

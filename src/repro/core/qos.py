"""QoS accounting: targets, normalized IPC, and monotonicity audits.

Section 5.3 methodology: a thread's *target IPC* is its IPC on a private
machine provisioned like its VPC (``repro.common.config.private_equivalent``).
A VPC "meets QoS" when the thread's shared-cache IPC is at least its
target; excess bandwidth may push it above target, and preemption
latency may shave a small margin off (Section 4.1.2), so comparisons
accept a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.stats import harmonic_mean


@dataclass(frozen=True)
class QoSOutcome:
    """One thread's shared-run performance versus its private target."""

    thread_id: int
    ipc: float
    target_ipc: float

    @property
    def normalized(self) -> float:
        """IPC normalized to target; >= 1 means the QoS objective is met."""
        if self.target_ipc <= 0:
            raise ValueError("target IPC must be positive to normalize")
        return self.ipc / self.target_ipc

    def meets_target(self, tolerance: float = 0.05) -> bool:
        """True when within ``tolerance`` of (or above) the target.

        The tolerance absorbs preemption-latency artifacts, which the
        paper acknowledges can shave average performance for
        latency-sensitive threads at high allocations (Section 4.1.3).
        """
        return self.normalized >= 1.0 - tolerance


def summarize(outcomes: Sequence[QoSOutcome]) -> Tuple[float, float]:
    """(harmonic mean, minimum) of normalized IPCs — the headline metrics."""
    normalized = [o.normalized for o in outcomes]
    return harmonic_mean(normalized), min(normalized)


def monotonicity_violations(
    points: Sequence[Tuple[float, float]], tolerance: float = 0.02
) -> List[Tuple[float, float, float, float]]:
    """Audit performance monotonicity (Section 4.3).

    ``points`` is a list of (resource_amount, performance) pairs.  Returns
    the adjacent pairs (sorted by resource) where performance *drops* by
    more than ``tolerance`` relative — each is a monotonicity violation.
    The paper conjectures the VPC design satisfies monotonicity but does
    not guarantee it; this audit makes the conjecture checkable.
    """
    ordered = sorted(points)
    violations = []
    for (res_a, perf_a), (res_b, perf_b) in zip(ordered, ordered[1:]):
        if perf_a <= 0:
            continue
        if perf_b < perf_a * (1.0 - tolerance):
            violations.append((res_a, perf_a, res_b, perf_b))
    return violations

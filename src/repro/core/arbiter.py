"""Shared-resource arbiters: the interface plus the paper's baselines.

Every shared L2 resource (tag array, data array, per-bank data bus) has
an arbiter.  The bank pushes waiting work in as :class:`ArbiterEntry`
objects and, whenever the resource is free, asks ``select(now)`` for the
next entry to service.

Baselines from Section 3.1 / 5.1:

* :class:`FCFSArbiter` — first-come first-serve by arrival order.  The
  paper's *multiprocessor* baseline for shared resources.
* :class:`RoWFCFSArbiter` — Read-over-Write, FCFS within each class.
  Optimal for private caches, but in a shared cache a load-heavy thread
  starves other threads' stores (demonstrated by Figure 8).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional

from repro.telemetry.events import CAT_ARBITER, PH_INSTANT, TraceEvent


_entry_order = itertools.count()


@dataclass(slots=True)
class ArbiterEntry:
    """One unit of work waiting for a shared resource.

    ``service_quanta`` is how many base service times the access consumes
    (2 for a write on the data array — the ECC read-merge-write pair,
    Eq. 4's ``2 * R.L_i`` case); the VPC arbiter uses it for virtual-time
    accounting, and the bank uses it to size the busy window.

    Slotted: entries are created on every resource enqueue, squarely on
    the engine hot path.  ``order`` must keep resolving ``_entry_order``
    through the module global at call time — the checkpoint restore path
    rebinds it (repro.resilience.snapshot).
    """

    thread_id: int
    payload: Any
    is_write: bool = False
    is_prefetch: bool = False
    service_quanta: int = 1
    arrival: int = 0
    order: int = field(default_factory=lambda: next(_entry_order))


class Arbiter(ABC):
    """Selects which pending entry accesses the shared resource next.

    Every arbiter — baseline or VPC — emits ``enqueue``/``grant``
    telemetry when a bus is attached (``_trace`` is ``None`` otherwise:
    the zero-overhead-when-disabled contract).  The interference
    attributor and QoS metrics consume these events, so the baselines
    the paper indicts are observable with the same instruments as the
    VPC design that fixes them.  ``service_latency`` sizes the real
    busy window a grant implies (``service_quanta`` base latencies).

    The hierarchy is slotted (``abc.ABC`` contributes empty slots):
    enqueue/select attribute reads sit on the engine hot path.
    """

    __slots__ = ("n_threads", "service_latency", "grants", "_trace",
                 "trace_name", "_acct", "acct_stage", "_rtrace")

    def __init__(self, n_threads: int, service_latency: int = 1) -> None:
        if n_threads < 1:
            raise ValueError("arbiter needs at least one thread")
        if service_latency <= 0:
            raise ValueError(
                f"service latency must be positive: {service_latency}"
            )
        self.n_threads = n_threads
        self.service_latency = service_latency
        self.grants = 0
        self._trace = None
        self.trace_name = "arbiter"
        # Cycle-accounting sink + resource kind ("tag"/"data"/"bus");
        # None when disabled, like _trace.
        self._acct = None
        self.acct_stage = ""
        # Request-scope tracer (repro.telemetry.requests): same contract.
        self._rtrace = None

    @abstractmethod
    def enqueue(self, entry: ArbiterEntry, now: int) -> None:
        """Admit ``entry`` into arbitration at cycle ``now``."""

    @abstractmethod
    def select(self, now: int) -> Optional[ArbiterEntry]:
        """Pop and return the next entry to service, or None if idle."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of entries currently waiting."""

    def _check_thread(self, entry: ArbiterEntry) -> None:
        if not 0 <= entry.thread_id < self.n_threads:
            raise ValueError(
                f"thread {entry.thread_id} out of range [0, {self.n_threads})"
            )

    def _emit_enqueue(self, entry: ArbiterEntry, now: int, pending: int) -> None:
        self._trace.emit(TraceEvent(
            ts=now, phase=PH_INSTANT, category=CAT_ARBITER,
            name="enqueue", track=self.trace_name, tid=entry.thread_id,
            args={"pending": pending},
        ))

    def _emit_grant(self, entry: ArbiterEntry, now: int, pending: int) -> None:
        self._trace.emit(TraceEvent(
            ts=now, phase=PH_INSTANT, category=CAT_ARBITER,
            name="grant", track=self.trace_name, tid=entry.thread_id,
            dur=entry.service_quanta * self.service_latency,
            args={"pending": pending},
        ))


class FCFSArbiter(Arbiter):
    """Strict arrival-order service across all threads."""

    __slots__ = ("_queue", "_pending")

    def __init__(self, n_threads: int, service_latency: int = 1) -> None:
        super().__init__(n_threads, service_latency)
        self._queue: Deque[ArbiterEntry] = deque()
        self._pending: List[int] = [0] * n_threads

    def enqueue(self, entry: ArbiterEntry, now: int) -> None:
        self._check_thread(entry)
        entry.arrival = now
        self._queue.append(entry)
        self._pending[entry.thread_id] += 1
        if self._trace is not None:
            self._emit_enqueue(entry, now, self._pending[entry.thread_id])
        if self._acct is not None:
            self._acct.arbiter_queued(self.acct_stage, entry, now)
        if self._rtrace is not None:
            self._rtrace.arbiter_queued(self.acct_stage, entry, now)

    def select(self, now: int) -> Optional[ArbiterEntry]:
        if not self._queue:
            return None
        self.grants += 1
        entry = self._queue.popleft()
        self._pending[entry.thread_id] -= 1
        if self._trace is not None:
            self._emit_grant(entry, now, self._pending[entry.thread_id])
        if self._acct is not None:
            self._acct.arbiter_granted(self.acct_stage, entry, now)
        if self._rtrace is not None:
            self._rtrace.arbiter_granted(self.acct_stage, entry, now)
        return entry

    def __len__(self) -> int:
        return len(self._queue)

    def pending_for(self, thread_id: int) -> int:
        return self._pending[thread_id]


class RoWFCFSArbiter(Arbiter):
    """Reads strictly before writes; FCFS inside each class.

    This is the private-cache-optimal policy that, on a *shared* resource,
    lets an aggressive load stream starve other threads' stores
    indefinitely (Section 3.1, demonstrated in Section 5.3).
    """

    __slots__ = ("_reads", "_writes", "_pending")

    def __init__(self, n_threads: int, service_latency: int = 1) -> None:
        super().__init__(n_threads, service_latency)
        self._reads: Deque[ArbiterEntry] = deque()
        self._writes: Deque[ArbiterEntry] = deque()
        self._pending: List[int] = [0] * n_threads

    def enqueue(self, entry: ArbiterEntry, now: int) -> None:
        self._check_thread(entry)
        entry.arrival = now
        if entry.is_write:
            self._writes.append(entry)
        else:
            self._reads.append(entry)
        self._pending[entry.thread_id] += 1
        if self._trace is not None:
            self._emit_enqueue(entry, now, self._pending[entry.thread_id])
        if self._acct is not None:
            self._acct.arbiter_queued(self.acct_stage, entry, now)
        if self._rtrace is not None:
            self._rtrace.arbiter_queued(self.acct_stage, entry, now)

    def select(self, now: int) -> Optional[ArbiterEntry]:
        if self._reads:
            entry = self._reads.popleft()
        elif self._writes:
            entry = self._writes.popleft()
        else:
            return None
        self.grants += 1
        self._pending[entry.thread_id] -= 1
        if self._trace is not None:
            self._emit_grant(entry, now, self._pending[entry.thread_id])
        if self._acct is not None:
            self._acct.arbiter_granted(self.acct_stage, entry, now)
        if self._rtrace is not None:
            self._rtrace.arbiter_granted(self.acct_stage, entry, now)
        return entry

    def __len__(self) -> int:
        return len(self._reads) + len(self._writes)

    def pending_for(self, thread_id: int) -> int:
        return self._pending[thread_id]


def round_robin_order(start: int, n: int):
    """Thread visit order for round-robin scans beginning after ``start``."""
    for offset in range(1, n + 1):
        yield (start + offset) % n

"""repro — a reproduction of "Virtual Private Caches" (ISCA 2007).

Public API tour
---------------

* :mod:`repro.common` — system configuration (paper Table 1), request
  records, statistics primitives.
* :mod:`repro.fairqueue` — standalone network fair-queuing library
  (virtual-time algebra, reference WFQ scheduler, QoS bound audits).
* :mod:`repro.core` — the paper's contribution: VPC arbiters, the VPC
  Capacity Manager, control registers, and QoS accounting.
* :mod:`repro.cache`, :mod:`repro.interconnect`, :mod:`repro.memory`,
  :mod:`repro.cpu` — the CMP substrate (banked shared L2 with store
  gathering buffers, crossbar, DDR2 memory, window/MLP core model).
* :mod:`repro.workloads` — the Table-2 microbenchmarks and synthetic
  SPEC stand-in profiles.
* :mod:`repro.system` — whole-chip assembly and the simulation driver.
* :mod:`repro.experiments` — one module per paper table/figure;
  ``python -m repro.experiments <id>`` regenerates it.

Quick start::

    from repro import baseline_config, CMPSystem, run_simulation
    from repro.workloads import loads_trace, stores_trace

    config = baseline_config(n_threads=2, arbiter="vpc")
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    result = run_simulation(system)
    print(result.ipcs, result.utilizations)
"""

from repro.common import (
    AccessType,
    MemoryRequest,
    SystemConfig,
    VPCAllocation,
    baseline_config,
    harmonic_mean,
    private_equivalent,
)
from repro.core import (
    FCFSArbiter,
    QoSOutcome,
    RoWFCFSArbiter,
    VPCArbiter,
    VPCCapacityManager,
    VPCControlRegisters,
)
from repro.system import (
    CMPSystem,
    SimulationResult,
    qos_outcomes,
    run_simulation,
    target_ipc,
    workload_summary,
)

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "CMPSystem",
    "FCFSArbiter",
    "MemoryRequest",
    "QoSOutcome",
    "RoWFCFSArbiter",
    "SimulationResult",
    "SystemConfig",
    "VPCAllocation",
    "VPCArbiter",
    "VPCCapacityManager",
    "VPCControlRegisters",
    "__version__",
    "baseline_config",
    "harmonic_mean",
    "private_equivalent",
    "qos_outcomes",
    "run_simulation",
    "target_ipc",
    "workload_summary",
]

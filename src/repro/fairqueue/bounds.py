"""Analytic QoS bounds and schedule auditing (Sections 3.2 and 4.1.2).

These functions check a produced schedule against the guarantees the
paper relies on:

* **Deadline bound** — with EDF over virtual finish times and a
  non-preemptible server, every packet completes by
  ``virtual_finish + max_preemption_latency``.
* **Bandwidth guarantee** — over any interval in which a flow stays
  backlogged, it receives at least ``phi * interval - max_packet`` of
  service.
* **Work conservation** — the link never idles while any packet is
  queued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.fairqueue.scheduler import (
    Arrival,
    ServiceRecord,
    backlogged_intervals,
)
from repro.fairqueue.virtual_time import deadline_bound, min_service_in_interval


@dataclass(frozen=True)
class Violation:
    """A single audited-guarantee failure, with enough context to debug."""

    kind: str
    flow_id: int
    detail: str


def audit_deadlines(
    records: Sequence[ServiceRecord], max_preemption_latency: float
) -> List[Violation]:
    """Check every finite-tag service against the EDF deadline bound."""
    violations = []
    for rec in records:
        if rec.virtual_finish == float("inf"):
            continue  # zero-share flows have no deadline
        latest = deadline_bound(rec.virtual_finish, max_preemption_latency)
        if rec.finish > latest + 1e-9:
            violations.append(
                Violation(
                    kind="deadline",
                    flow_id=rec.flow_id,
                    detail=(
                        f"finished {rec.finish:.3f} > bound {latest:.3f} "
                        f"(tag {rec.virtual_finish:.3f})"
                    ),
                )
            )
    return violations


def audit_bandwidth(
    arrivals: Sequence[Arrival],
    records: Sequence[ServiceRecord],
    shares: Sequence[float],
    max_packet: float,
) -> List[Violation]:
    """Check the per-backlogged-interval minimum-service guarantee."""
    violations = []
    for flow_id, share in enumerate(shares):
        if share <= 0:
            continue
        for start, end in backlogged_intervals(list(arrivals), list(records), flow_id):
            got = sum(
                r.length
                for r in records
                if r.flow_id == flow_id and start <= r.finish <= end
            )
            owed = min_service_in_interval(share, end - start, max_packet)
            if got + 1e-9 < owed:
                violations.append(
                    Violation(
                        kind="bandwidth",
                        flow_id=flow_id,
                        detail=(
                            f"interval [{start:.3f},{end:.3f}]: got {got:.3f} "
                            f"< guaranteed {owed:.3f}"
                        ),
                    )
                )
    return violations


def audit_work_conservation(
    arrivals: Sequence[Arrival], records: Sequence[ServiceRecord]
) -> List[Violation]:
    """The server must not idle while work is pending.

    Detect by walking services in start order: any gap between consecutive
    services must be explained by an empty system (all queued packets
    already served and none arrived during the gap).
    """
    violations: List[Violation] = []
    ordered = sorted(records, key=lambda r: r.start)
    served_ids = 0
    now = 0.0
    arr_sorted = sorted(arrivals, key=lambda a: a.time)
    for rec in ordered:
        if rec.start > now + 1e-9:
            # Gap (now, rec.start): was anything waiting at time `now`?
            arrived = sum(1 for a in arr_sorted if a.time <= now + 1e-9)
            if arrived > served_ids:
                violations.append(
                    Violation(
                        kind="work-conservation",
                        flow_id=rec.flow_id,
                        detail=(
                            f"idle in ({now:.3f},{rec.start:.3f}) with "
                            f"{arrived - served_ids} packets queued"
                        ),
                    )
                )
        now = max(now, rec.finish)
        served_ids += 1
    return violations


def audit_all(
    arrivals: Sequence[Arrival],
    records: Sequence[ServiceRecord],
    shares: Sequence[float],
) -> Dict[str, List[Violation]]:
    """Run every audit; keys are audit names, values are violations."""
    max_packet = max((a.length for a in arrivals), default=0.0)
    return {
        "deadline": audit_deadlines(records, max_packet),
        "bandwidth": audit_bandwidth(arrivals, records, shares, max_packet),
        "work_conservation": audit_work_conservation(arrivals, records),
    }

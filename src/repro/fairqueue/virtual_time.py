"""Virtual-time algebra for fair queuing (paper Section 3.2, Eqs. 1-2).

A flow ``i`` with share ``0 < phi_i <= 1`` of a link sees each packet of
length ``L`` as a *virtual service time* ``L / phi_i``.  Packet ``k``'s
virtual start-time is the later of its arrival and the previous packet's
virtual finish-time (Eq. 1); its virtual finish-time adds the virtual
service time (Eq. 2).  Serving earliest-virtual-finish-first yields EDF
scheduling with the minimum-bandwidth guarantee discussed in the paper.

This module is deliberately independent of the cache simulator: it is the
reference algebra the VPC arbiter (``repro.core.vpc_arbiter``) is derived
from, and the property tests cross-check the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional


INFINITE_SHARE_TIME = math.inf


def virtual_service_time(length: float, share: float) -> float:
    """``L / phi`` — Eq. 2's increment.  A zero share yields infinity.

    The paper's "VPC 0 %" configurations allocate a thread no bandwidth;
    such flows are represented with an infinite virtual service time and
    are only served when the link would otherwise idle.
    """
    if length < 0:
        raise ValueError(f"negative packet length: {length}")
    if share < 0 or share > 1:
        raise ValueError(f"share must be in [0, 1], got {share}")
    if share == 0:
        return INFINITE_SHARE_TIME
    return length / share


def virtual_start(arrival: float, prev_finish: float) -> float:
    """Eq. 1: ``S_i^k = max(a_i^k, F_i^{k-1})``."""
    return max(arrival, prev_finish)


def virtual_finish(start: float, length: float, share: float) -> float:
    """Eq. 2: ``F_i^k = S_i^k + L_i^k / phi_i``."""
    return start + virtual_service_time(length, share)


@dataclass
class FlowState:
    """Per-flow virtual-time bookkeeping (one network flow / one thread)."""

    flow_id: int
    share: float
    last_finish: float = 0.0
    packets_served: int = 0
    service_received: float = 0.0
    _starts: List[float] = field(default_factory=list)

    def tag(self, arrival: float, length: float) -> "PacketTags":
        """Stamp a packet with its virtual start/finish times."""
        start = virtual_start(arrival, self.last_finish)
        finish = virtual_finish(start, length, self.share)
        self.last_finish = finish
        self._starts.append(start)
        return PacketTags(self.flow_id, arrival, length, start, finish)

    def record_service(self, length: float) -> None:
        self.packets_served += 1
        self.service_received += length


@dataclass(frozen=True)
class PacketTags:
    """A packet's identity plus its virtual start/finish stamps."""

    flow_id: int
    arrival: float
    length: float
    virtual_start: float
    virtual_finish: float

    def __post_init__(self) -> None:
        if self.virtual_finish < self.virtual_start:
            raise ValueError("virtual finish precedes virtual start")


def min_service_in_interval(
    share: float, interval: float, max_packet_time: float
) -> float:
    """Lower bound on service a backlogged flow receives in ``interval``.

    The classic FQ guarantee: a continuously backlogged flow with share
    ``phi`` receives at least ``phi * interval - max_packet_time`` units of
    service over any interval (the one-packet term is the preemption /
    non-preemptibility penalty, Section 3.2).
    """
    if interval < 0:
        raise ValueError("interval must be non-negative")
    return max(0.0, share * interval - max_packet_time)


def deadline_bound(
    finish_tag: float, max_preemption_latency: float
) -> float:
    """Latest real completion time under EDF with a non-preemptible server.

    Section 3.2: "a request will finish its service no later than the
    <deadline> + <max preemption latency>" provided the link is not
    over-allocated.
    """
    return finish_tag + max_preemption_latency


def shares_feasible(shares: List[float], tolerance: float = 1e-9) -> bool:
    """True when the allocation does not oversubscribe the link."""
    if any(s < 0 for s in shares):
        return False
    return sum(shares) <= 1.0 + tolerance

"""Standalone network fair-queuing library (paper Section 3.2).

The VPC arbiters in :mod:`repro.core` are derived from this algebra; the
package is usable on its own for link-scheduling experiments and is
cross-checked against the arbiters by the property-based tests.
"""

from repro.fairqueue.bounds import (
    Violation,
    audit_all,
    audit_bandwidth,
    audit_deadlines,
    audit_work_conservation,
)
from repro.fairqueue.scheduler import (
    Arrival,
    FairQueueScheduler,
    ServiceRecord,
    backlogged_intervals,
    service_by_flow,
)
from repro.fairqueue.virtual_time import (
    FlowState,
    PacketTags,
    deadline_bound,
    min_service_in_interval,
    shares_feasible,
    virtual_finish,
    virtual_service_time,
    virtual_start,
)

__all__ = [
    "Arrival",
    "FairQueueScheduler",
    "FlowState",
    "PacketTags",
    "ServiceRecord",
    "Violation",
    "audit_all",
    "audit_bandwidth",
    "audit_deadlines",
    "audit_work_conservation",
    "backlogged_intervals",
    "deadline_bound",
    "min_service_in_interval",
    "service_by_flow",
    "shares_feasible",
    "virtual_finish",
    "virtual_service_time",
    "virtual_start",
]

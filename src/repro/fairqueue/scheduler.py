"""Reference packet-level fair-queuing scheduler (paper Section 3.2).

This is a discrete-event model of a single shared, non-preemptible link
serving several flows under earliest-virtual-finish-time-first (EDF)
scheduling.  It exists as the executable specification of the guarantees
the VPC arbiter must inherit; the property-based tests drive both and
compare service distributions.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.fairqueue.virtual_time import FlowState, PacketTags, shares_feasible


@dataclass(frozen=True)
class Arrival:
    """A packet arrival event: (time, flow, length in link-time units)."""

    time: float
    flow_id: int
    length: float


@dataclass
class ServiceRecord:
    """One completed service: when the link worked for whom."""

    flow_id: int
    start: float
    finish: float
    length: float
    arrival: float
    virtual_finish: float

    @property
    def response_time(self) -> float:
        return self.finish - self.arrival


class FairQueueScheduler:
    """Weighted fair queuing over a unit-rate, non-preemptible link.

    Usage: construct with per-flow shares, feed time-ordered arrivals via
    :meth:`run`, and inspect the returned :class:`ServiceRecord` list.
    """

    def __init__(self, shares: List[float]) -> None:
        if not shares:
            raise ValueError("need at least one flow")
        if not shares_feasible(shares):
            raise ValueError(f"infeasible share allocation: {shares}")
        self.flows = [FlowState(i, s) for i, s in enumerate(shares)]
        self._queues: List[Deque[PacketTags]] = [deque() for _ in shares]

    def run(self, arrivals: List[Arrival]) -> List[ServiceRecord]:
        """Serve an arrival trace to completion and return the schedule."""
        pending = sorted(arrivals, key=lambda a: a.time)
        for arr in pending:
            if not 0 <= arr.flow_id < len(self.flows):
                raise ValueError(f"unknown flow {arr.flow_id}")
            if arr.length <= 0:
                raise ValueError("packet length must be positive")

        records: List[ServiceRecord] = []
        now = 0.0
        next_arrival = 0

        while next_arrival < len(pending) or any(self._queues):
            # Admit everything that has arrived by `now`.
            while next_arrival < len(pending) and pending[next_arrival].time <= now:
                arr = pending[next_arrival]
                tags = self.flows[arr.flow_id].tag(arr.time, arr.length)
                self._queues[arr.flow_id].append(tags)
                next_arrival += 1

            chosen = self._select()
            if chosen is None:
                # Idle: jump to the next arrival (work conservation means we
                # never idle while a packet is queued).
                if next_arrival >= len(pending):
                    break
                now = max(now, pending[next_arrival].time)
                continue

            tags = self._queues[chosen].popleft()
            start = now
            finish = now + tags.length
            self.flows[chosen].record_service(tags.length)
            records.append(
                ServiceRecord(
                    flow_id=chosen,
                    start=start,
                    finish=finish,
                    length=tags.length,
                    arrival=tags.arrival,
                    virtual_finish=tags.virtual_finish,
                )
            )
            now = finish
        return records

    def _select(self) -> Optional[int]:
        """Earliest-virtual-finish-first among backlogged flows.

        Flows with infinite virtual finish (zero share) lose to every
        finite-tag flow and fall back to FCFS arrival order among
        themselves — the same excess-bandwidth rule the VPC arbiter uses.
        """
        best: Optional[int] = None
        best_key: Tuple[float, float] = (math.inf, math.inf)
        for flow_id, queue in enumerate(self._queues):
            if not queue:
                continue
            head = queue[0]
            key = (head.virtual_finish, head.arrival)
            if key < best_key:
                best_key = key
                best = flow_id
        return best


def service_by_flow(records: List[ServiceRecord]) -> Dict[int, float]:
    """Total link time granted to each flow."""
    totals: Dict[int, float] = {}
    for rec in records:
        totals[rec.flow_id] = totals.get(rec.flow_id, 0.0) + rec.length
    return totals


def backlogged_intervals(
    arrivals: List[Arrival], records: List[ServiceRecord], flow_id: int
) -> List[Tuple[float, float]]:
    """Maximal intervals during which ``flow_id`` had work queued.

    Used by the property tests to check the bandwidth guarantee only over
    intervals where the guarantee applies (a flow with nothing to send is
    owed nothing).
    """
    events: List[Tuple[float, int]] = []
    for arr in arrivals:
        if arr.flow_id == flow_id:
            events.append((arr.time, +1))
    for rec in records:
        if rec.flow_id == flow_id:
            events.append((rec.finish, -1))
    events.sort()
    intervals: List[Tuple[float, float]] = []
    depth = 0
    start = 0.0
    for time, delta in events:
        if depth == 0 and delta > 0:
            start = time
        depth += delta
        if depth == 0 and delta < 0:
            intervals.append((start, time))
    return intervals

"""DDR2 memory substrate: per-thread channels behind an on-chip controller."""

from repro.memory.controller import MemoryController
from repro.memory.dram import DRAMChannel
from repro.memory.fq_scheduler import SharedDRAMChannel

__all__ = ["DRAMChannel", "MemoryController", "SharedDRAMChannel"]

"""On-chip memory controller: private per-thread channels or one shared
fair-queued channel.

Table 1 (the paper's isolation setup): "1 channel per thread ... 16
transaction buffer entries per thread, 8 write buffer entries per
thread, closed page policy".  The paper interleaves requests across
channels by physical-address bits and controls the virtual-to-physical
mapping so each thread's traffic lands on its own channel; we get the
same isolation by construction — thread *i*'s requests go to channel
*i*.

With ``MemoryConfig.sharing == "shared"`` the controller instead drives
a single :class:`~repro.memory.fq_scheduler.SharedDRAMChannel`, the VPM
framework's memory-bandwidth component (FQ or FCFS scheduling).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.common.config import MemoryConfig
from repro.common.latch import NEVER
from repro.memory.dram import DRAMChannel
from repro.memory.fq_scheduler import SharedDRAMChannel


class _DelayedNotify:
    """Completion callback that adds the controller's fixed overhead.

    A module-level class (not a closure) so in-flight DRAM reads —
    which hold these callbacks in their pending entries — survive a
    checkpoint pickle (repro.resilience.snapshot).
    """

    __slots__ = ("notify", "overhead")

    def __init__(self, notify: Callable[[int], None], overhead: int) -> None:
        self.notify = notify
        self.overhead = overhead

    def __call__(self, data_cycle: int) -> None:
        self.notify(data_cycle + self.overhead)


class MemoryController:
    """Routes L2 miss/writeback traffic to DRAM channels."""

    def __init__(
        self,
        config: MemoryConfig,
        n_threads: int,
        shares: Optional[Sequence[float]] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        if config.sharing not in ("private", "shared"):
            raise ValueError(f"unknown memory sharing mode {config.sharing!r}")
        self.config = config
        self.n_threads = n_threads
        # A fixed on-chip traversal cost each way (controller queues,
        # request/response wiring) on top of DRAM timing.
        self.overhead_cycles = 4

        self._shared: Optional[SharedDRAMChannel] = None
        if config.sharing == "shared":
            self._shared = SharedDRAMChannel(
                config, n_threads, policy=config.shared_scheduler,
                shares=shares,
            )
            self.channels: List = [self._shared]
        else:
            self.channels = [
                DRAMChannel(config)
                for _ in range(n_threads * config.channels_per_thread)
            ]

    def attach_trace(self, bus) -> None:
        """Point every channel at the telemetry bus (repro.telemetry)."""
        for index, channel in enumerate(self.channels):
            channel._trace = bus
            if self._shared is None:
                channel.trace_name = f"dram.ch{index}"
                channel.trace_tid = index // self.config.channels_per_thread

    def attach_acct(self, acct) -> None:
        """Point every channel at the cycle-accounting sink (cycles.py)."""
        for index, channel in enumerate(self.channels):
            channel._acct = acct
            if self._shared is None:
                channel.acct_tid = index // self.config.channels_per_thread

    def attach_rtrace(self, rtrace) -> None:
        """Point every channel at the request tracer (requests.py).
        Reuses ``acct_tid`` — the owning-thread index has identical
        semantics for both sinks."""
        for index, channel in enumerate(self.channels):
            channel._rtrace = rtrace
            if self._shared is None:
                channel.acct_tid = index // self.config.channels_per_thread

    def _channel(self, thread_id: int) -> DRAMChannel:
        if not 0 <= thread_id < self.n_threads:
            raise ValueError(f"thread {thread_id} out of range")
        return self.channels[thread_id * self.config.channels_per_thread]

    def can_accept_read(self, thread_id: int) -> bool:
        if self._shared is not None:
            return self._shared.can_accept_read(thread_id)
        return self._channel(thread_id).can_accept_read()

    def can_accept_write(self, thread_id: int) -> bool:
        if self._shared is not None:
            return self._shared.can_accept_write(thread_id)
        return self._channel(thread_id).can_accept_write()

    def enqueue_read(
        self,
        thread_id: int,
        line: int,
        notify: Callable[[int], None],
        now: int,
        tracked: bool = False,
    ) -> None:
        overhead = self.overhead_cycles
        delayed_notify = _DelayedNotify(notify, overhead)
        if self._shared is not None:
            self._shared.enqueue_read(thread_id, line, delayed_notify,
                                      now + overhead, tracked=tracked)
        else:
            self._channel(thread_id).enqueue_read(
                line, delayed_notify, now + overhead, tracked=tracked
            )

    def enqueue_write(self, thread_id: int, line: int, now: int) -> None:
        if self._shared is not None:
            self._shared.enqueue_write(thread_id, line, now + self.overhead_cycles)
        else:
            self._channel(thread_id).enqueue_write(line, now + self.overhead_cycles)

    def tick(self, now: int) -> None:
        for channel in self.channels:
            if channel.pending:
                channel.tick(now)

    def busy(self) -> bool:
        return any(channel.pending for channel in self.channels)

    def next_event(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which any channel could issue."""
        nxt = NEVER
        for channel in self.channels:
            if channel.pending:
                ready = channel.next_event(now)
                if ready <= now:
                    return now
                if ready < nxt:
                    nxt = ready
        return nxt

    def idle_read_latency(self) -> int:
        """Unloaded L2-miss DRAM latency in processor cycles."""
        return self.channels[0].idle_latency() + 2 * self.overhead_cycles

"""DDR2-800 channel timing model, closed-page policy (paper Table 1).

Each channel has ``ranks * banks`` DRAM banks and one shared data bus.
Closed-page means every access pays the full activate -> column ->
precharge sequence; the model tracks per-bank availability and data-bus
occupancy, which yields realistic bank-level parallelism and queueing
under bursts without simulating individual DRAM commands.

The paper gives each thread a *private* channel (isolating cache-sharing
effects), so no inter-thread scheduling policy is needed here — reads
are simply prioritized over writes within a channel, FCFS within class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.common.config import MemoryConfig
from repro.common.latch import NEVER
from repro.telemetry.events import CAT_DRAM, PH_COMPLETE, TraceEvent


@dataclass
class _PendingAccess:
    line: int
    notify: Optional[Callable[[int], None]]   # called with data-return cycle
    enqueued: int
    tracked: bool = False  # census-tracked demand/prefetch read (cycles.py)


class DRAMChannel:
    """One private DDR2 channel with banked timing."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.n_banks = config.ranks_per_channel * config.banks_per_rank
        self._bank_free = [0] * self.n_banks
        self._bus_free = 0
        self._reads: Deque[_PendingAccess] = deque()
        self._writes: Deque[_PendingAccess] = deque()
        self.reads_done = 0
        self.writes_done = 0
        self.bus_busy_cycles = 0
        # Telemetry (repro.telemetry): None = disabled = free.
        self._trace = None
        self.trace_name = "dram"
        self.trace_tid = -1
        # Cycle accounting (private channel => one owning thread).
        self._acct = None
        self.acct_tid = -1
        # Request-scope tracer (repro.telemetry.requests): same contract.
        self._rtrace = None

    # ------------------------------------------------------------------ #
    # Admission (capacity checks model the controller's buffers).
    # ------------------------------------------------------------------ #

    def can_accept_read(self) -> bool:
        return len(self._reads) < self.config.transaction_buffer

    def can_accept_write(self) -> bool:
        return len(self._writes) < self.config.write_buffer

    def enqueue_read(
        self, line: int, notify: Callable[[int], None], now: int,
        tracked: bool = False,
    ) -> None:
        if not self.can_accept_read():
            raise RuntimeError("read enqueued on a full transaction buffer")
        self._reads.append(_PendingAccess(line, notify, now, tracked))

    def enqueue_write(self, line: int, now: int) -> None:
        if not self.can_accept_write():
            raise RuntimeError("write enqueued on a full write buffer")
        self._writes.append(_PendingAccess(line, None, now))

    # ------------------------------------------------------------------ #
    # Per-cycle issue (at most one command start per processor cycle —
    # far below the DRAM command-bus limit, so never the bottleneck).
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        # Reads before writes; within a class, the oldest request whose
        # DRAM bank is available issues first (bank-level parallelism).
        for index, access in enumerate(self._reads):
            if self._try_issue(access, now, is_write=False):
                del self._reads[index]
                self.reads_done += 1
                return
        for index, access in enumerate(self._writes):
            if self._try_issue(access, now, is_write=True):
                del self._writes[index]
                self.writes_done += 1
                return

    def _bank_of(self, line: int) -> int:
        return line % self.n_banks

    def _try_issue(self, access: _PendingAccess, now: int, is_write: bool) -> bool:
        if access.enqueued > now:
            return False  # still in flight to the controller
        bank = self._bank_of(access.line)
        if self._bank_free[bank] > now:
            return False
        cfg = self.config
        d = cfg.clock_divider
        column_delay = (cfg.t_rcd + (cfg.t_wl if is_write else cfg.t_cl)) * d
        data_start = max(now + column_delay, self._bus_free)
        data_end = data_start + cfg.burst_cycles * d
        self._bank_free[bank] = data_end + cfg.t_rp * d
        self._bus_free = data_end
        self.bus_busy_cycles += cfg.burst_cycles * d
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=data_start, phase=PH_COMPLETE, category=CAT_DRAM,
                name="write" if is_write else "read",
                track=self.trace_name, tid=self.trace_tid,
                dur=cfg.burst_cycles * d,
                args={"line": access.line, "bank": bank},
            ))
        if self._acct is not None and not is_write and access.tracked:
            self._acct.dram_issued(self.acct_tid, now)
        if self._rtrace is not None and not is_write and access.tracked:
            self._rtrace.dram_issued(self.acct_tid, access.line, now)
        if access.notify is not None:
            access.notify(data_end)
        return True

    @property
    def pending(self) -> int:
        return len(self._reads) + len(self._writes)

    def next_event(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which an access could issue.

        An access is issuable once it has arrived (``enqueued``) and its
        DRAM bank is free; ``_try_issue`` mutates nothing on failure, so
        cycles before this bound are provable no-ops.
        """
        nxt = NEVER
        bank_free = self._bank_free
        n_banks = self.n_banks
        for queue in (self._reads, self._writes):
            for access in queue:
                ready = bank_free[access.line % n_banks]
                if ready < access.enqueued:
                    ready = access.enqueued
                if ready <= now:
                    return now
                if ready < nxt:
                    nxt = ready
        return nxt

    def idle_latency(self) -> int:
        """Unloaded read latency in processor cycles (for tests/docs)."""
        cfg = self.config
        return (cfg.t_rcd + cfg.t_cl + cfg.burst_cycles) * cfg.clock_divider

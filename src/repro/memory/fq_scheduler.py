"""Shared DRAM channel with a fair-queuing scheduler.

The paper's VPM framework (Section 1.1, Figure 1) covers *all* shared
memory-system resources; the cache experiments isolate cache effects by
giving threads private channels, but the framework's memory-bandwidth
component is the FQ memory controller of Nesbit et al. [18] that
Section 2.1 builds on.  This module provides that substrate: a single
DDR2 channel shared by every thread, scheduled either

* ``"fcfs"`` — conventional first-come first-serve (reads before
  writes), the interference-prone baseline; or
* ``"fq"``   — per-thread queues with virtual start/finish times (the
  same Eqs. 1-2 algebra as the VPC arbiters, service time = one line
  transfer), earliest-virtual-finish-first across threads.

It exposes the same interface as :class:`repro.memory.dram.DRAMChannel`
plus a ``thread_id`` on each enqueue, so the controller can swap it in
when ``MemoryConfig.sharing == "shared"``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence

from repro.common.config import MemoryConfig
from repro.common.latch import NEVER
from repro.telemetry.events import CAT_DRAM, PH_COMPLETE, TraceEvent


@dataclass
class _PendingAccess:
    thread_id: int
    line: int
    notify: Optional[Callable[[int], None]]
    enqueued: int
    is_write: bool
    tracked: bool = False  # census-tracked demand/prefetch read (cycles.py)


class SharedDRAMChannel:
    """One DDR2 channel multiplexed across threads."""

    def __init__(
        self,
        config: MemoryConfig,
        n_threads: int,
        policy: str = "fq",
        shares: Optional[Sequence[float]] = None,
    ) -> None:
        if policy not in ("fq", "fcfs"):
            raise ValueError(f"unknown shared-channel policy {policy!r}")
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self.config = config
        self.policy = policy
        self.n_threads = n_threads
        if shares is None:
            shares = [1.0 / n_threads] * n_threads
        if len(shares) != n_threads:
            raise ValueError("one share per thread required")
        if sum(shares) > 1.0 + 1e-9 or any(s < 0 for s in shares):
            raise ValueError(f"infeasible channel shares: {list(shares)}")
        self.shares = list(shares)

        self.n_banks = config.ranks_per_channel * config.banks_per_rank
        self._bank_free = [0] * self.n_banks
        self._bus_free = 0
        self._queues: List[Deque[_PendingAccess]] = [
            deque() for _ in range(n_threads)
        ]
        # Virtual-time registers, one per thread (R.S analogue).  The
        # service quantum is one line transfer on the channel data bus.
        self._service_time = config.burst_cycles * config.clock_divider
        self._r_s = [0.0] * n_threads
        self.reads_done = 0
        self.writes_done = 0
        self.service_granted = [0] * n_threads
        # Telemetry (repro.telemetry): None = disabled = free.
        self._trace = None
        self.trace_name = "dram.shared"
        # Cycle accounting; shared channel charges access.thread_id.
        self._acct = None
        # Request-scope tracer (repro.telemetry.requests): same contract.
        self._rtrace = None

    # ------------------------------------------------------------------ #
    # Admission: the per-thread transaction/write buffers still apply.
    # ------------------------------------------------------------------ #

    def _counts(self, thread_id: int):
        reads = sum(1 for a in self._queues[thread_id] if not a.is_write)
        writes = len(self._queues[thread_id]) - reads
        return reads, writes

    def can_accept_read(self, thread_id: int) -> bool:
        return self._counts(thread_id)[0] < self.config.transaction_buffer

    def can_accept_write(self, thread_id: int) -> bool:
        return self._counts(thread_id)[1] < self.config.write_buffer

    def enqueue_read(
        self, thread_id: int, line: int, notify: Callable[[int], None],
        now: int, tracked: bool = False,
    ) -> None:
        self._admit(thread_id, line, notify, now, is_write=False,
                    tracked=tracked)

    def enqueue_write(self, thread_id: int, line: int, now: int) -> None:
        self._admit(thread_id, line, None, now, is_write=True)

    def _admit(self, thread_id, line, notify, now, is_write,
               tracked=False) -> None:
        if not 0 <= thread_id < self.n_threads:
            raise ValueError(f"thread {thread_id} out of range")
        queue = self._queues[thread_id]
        if not queue and self._r_s[thread_id] <= now:
            self._r_s[thread_id] = float(now)  # Eq. 6 analogue
        queue.append(
            _PendingAccess(thread_id, line, notify, now, is_write, tracked)
        )

    # ------------------------------------------------------------------ #
    # Scheduling.
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        chosen = self._select(now)
        if chosen is None:
            return
        thread_id, index = chosen
        access = self._queues[thread_id][index]
        if not self._try_issue(access, now):
            return
        del self._queues[thread_id][index]
        if access.is_write:
            self.writes_done += 1
        else:
            self.reads_done += 1
        if self.shares[thread_id] > 0:
            self._r_s[thread_id] = max(self._r_s[thread_id], float(now)) + \
                self._service_time / self.shares[thread_id]
        self.service_granted[thread_id] += self._service_time

    def _select(self, now: int):
        """Pick (thread, queue index) of the next issuable access."""
        if self.policy == "fcfs":
            best = None
            best_key = (1, math.inf)  # (is_write, enqueue time): reads first
            for tid, queue in enumerate(self._queues):
                for index, access in enumerate(queue):
                    if not self._issuable(access, now):
                        continue
                    key = (1 if access.is_write else 0, access.enqueued)
                    if key < best_key:
                        best_key = key
                        best = (tid, index)
            return best
        # FQ: earliest virtual finish among threads with issuable work;
        # within a thread, reads before writes (intra-thread reordering,
        # legal for the same reason as in the VPC arbiter).
        best = None
        best_finish = math.inf
        for tid, queue in enumerate(self._queues):
            index = self._intra_thread_pick(queue, now)
            if index is None:
                continue
            share = self.shares[tid]
            finish = (
                self._r_s[tid] + self._service_time / share
                if share > 0 else math.inf
            )
            tie_break = queue[index].enqueued
            key = (finish, tie_break)
            if best is None or key < (best_finish, best_tie):
                best = (tid, index)
                best_finish, best_tie = key
        return best

    def _intra_thread_pick(self, queue, now) -> Optional[int]:
        fallback = None
        for index, access in enumerate(queue):
            if not self._issuable(access, now):
                continue
            if not access.is_write:
                return index
            if fallback is None:
                fallback = index
        return fallback

    def _issuable(self, access: _PendingAccess, now: int) -> bool:
        if access.enqueued > now:
            return False
        return self._bank_free[access.line % self.n_banks] <= now

    def _try_issue(self, access: _PendingAccess, now: int) -> bool:
        if not self._issuable(access, now):
            return False
        cfg = self.config
        d = cfg.clock_divider
        column = (cfg.t_rcd + (cfg.t_wl if access.is_write else cfg.t_cl)) * d
        data_start = max(now + column, self._bus_free)
        data_end = data_start + cfg.burst_cycles * d
        self._bank_free[access.line % self.n_banks] = data_end + cfg.t_rp * d
        self._bus_free = data_end
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=data_start, phase=PH_COMPLETE, category=CAT_DRAM,
                name="write" if access.is_write else "read",
                track=self.trace_name, tid=access.thread_id,
                dur=cfg.burst_cycles * d,
                args={"line": access.line},
            ))
        if self._acct is not None and access.tracked and not access.is_write:
            self._acct.dram_issued(access.thread_id, now)
        if self._rtrace is not None and access.tracked and not access.is_write:
            self._rtrace.dram_issued(access.thread_id, access.line, now)
        if access.notify is not None:
            access.notify(data_end)
        return True

    @property
    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def next_event(self, now: int) -> int:
        """Earliest cycle >= ``now`` with an issuable access (see
        :meth:`repro.memory.dram.DRAMChannel.next_event`); ``_select``
        and ``_try_issue`` mutate nothing while nothing is issuable."""
        nxt = NEVER
        bank_free = self._bank_free
        n_banks = self.n_banks
        for queue in self._queues:
            for access in queue:
                ready = bank_free[access.line % n_banks]
                if ready < access.enqueued:
                    ready = access.enqueued
                if ready <= now:
                    return now
                if ready < nxt:
                    nxt = ready
        return nxt

    def idle_latency(self) -> int:
        cfg = self.config
        return (cfg.t_rcd + cfg.t_cl + cfg.burst_cycles) * cfg.clock_divider

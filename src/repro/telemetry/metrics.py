"""Time-series metrics over the telemetry bus (operator-grade numbers).

The :class:`MetricsCollector` turns the raw event firehose into
fixed-cycle-window time series — the layer between "I have a Perfetto
trace" and "I can alert on a thread's slowdown":

* **event-derived series** (no polling; windows are resolved lazily from
  event timestamps, so the skip-ahead kernel needs no changes): per-
  resource granted service cycles by thread, per-resource busy/
  utilization, arbiter queue-depth high-water marks, MSHR occupancy,
  capacity-manager Condition-1/Condition-2 victimizations, loads retired
  and their latency;
* **sampled series** (pulled at window boundaries by
  :func:`repro.system.simulator.run_simulation` when a collector is
  passed in): per-thread IPC-over-time, per-thread L2 way occupancy,
  and — when solo-run baseline IPCs are configured — per-thread slowdown
  plus the Jain fairness index per window.

Snapshots are plain-JSON dicts (``schema`` tagged), picklable across the
``repro.experiments.parallel`` process boundary, mergeable per
experiment with :func:`merge_snapshots`, and exportable as Prometheus
text exposition with :func:`to_prometheus`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.stats import jain_index

from .events import (
    CAT_ARBITER,
    CAT_CACHE,
    CAT_DRAM,
    CAT_MSHR,
    CAT_REQUEST,
    CAT_RESOURCE,
    PH_COMPLETE,
    PH_END,
    PH_INSTANT,
    TraceEvent,
)

#: Schema tags on exported JSON (validated by repro.telemetry.validate).
METRICS_SCHEMA = "repro.metrics/1"
AGGREGATE_SCHEMA = "repro.metrics-aggregate/1"


class MetricsCollector:
    """Aggregates bus events into per-window counters/gauges.

    ``window`` is in simulated cycles; event series are indexed by the
    absolute window ``ts // window`` so out-of-order events across
    categories (DRAM slices are stamped at data-bus start, which may
    trail the emitting cycle) land in the right bucket without any
    event-stream sorting.
    """

    def __init__(
        self,
        n_threads: int,
        window: int = 2_000,
        baseline_ipcs: Optional[Sequence[float]] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("metrics need at least one thread")
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        self.n_threads = n_threads
        self.window = window
        # Solo-run (private-machine) IPC per thread; enables the slowdown
        # series and normalized fairness.  May be set after the run, any
        # time before snapshot().
        self.baseline_ipcs: Optional[List[float]] = (
            list(baseline_ipcs) if baseline_ipcs is not None else None
        )
        self.events_seen = 0
        # Event-derived, keyed by absolute window index.
        self._lo = None  # observed window index range
        self._hi = None
        self._service: Dict[str, Dict[int, List[int]]] = {}   # track -> widx -> per-thread cycles
        self._busy: Dict[str, Dict[int, int]] = {}            # track -> widx -> busy cycles
        self._queue_max: Dict[str, Dict[int, int]] = {}       # track -> widx -> max pending
        self._mshr_max: Dict[str, Dict[int, int]] = {}        # track -> widx -> max outstanding
        self._cond: Dict[str, Dict[int, List[int]]] = {
            "cond1": {}, "cond2": {},
        }                                                      # widx -> per-thread counts
        self._loads: Dict[int, List[int]] = {}                 # widx -> per-thread retired loads
        self._load_latency: Dict[int, List[int]] = {}          # widx -> per-thread latency sums
        # Pull samples: (cycle, dispatched per thread, L2 ways per thread).
        self._samples: List[tuple] = []
        self._finished_at: Optional[int] = None

    # ------------------------------------------------------------------ #
    # TraceSink protocol (event-derived series).
    # ------------------------------------------------------------------ #

    def _widx(self, ts: int) -> int:
        widx = ts // self.window
        if self._lo is None or widx < self._lo:
            self._lo = widx
        if self._hi is None or widx > self._hi:
            self._hi = widx
        return widx

    def _thread_row(self, store: Dict[int, List[int]], widx: int) -> List[int]:
        row = store.get(widx)
        if row is None:
            row = store[widx] = [0] * self.n_threads
        return row

    def emit(self, event: TraceEvent) -> None:
        category = event.category
        if category == CAT_ARBITER:
            widx = self._widx(event.ts)
            if event.name == "grant":
                track = self._service.setdefault(event.track, {})
                self._thread_row(track, widx)[event.tid] += event.dur
            pending = event.args.get("pending") if event.args else None
            if pending is not None:
                track = self._queue_max.setdefault(event.track, {})
                if pending > track.get(widx, 0):
                    track[widx] = pending
        elif category in (CAT_RESOURCE, CAT_DRAM):
            if event.phase == PH_COMPLETE:
                widx = self._widx(event.ts)
                track = self._busy.setdefault(event.track, {})
                track[widx] = track.get(widx, 0) + event.dur
        elif category == CAT_REQUEST:
            if event.phase == PH_END and event.tid >= 0:
                widx = self._widx(event.ts)
                request = event.args.get("request") if event.args else None
                if request is not None and request.is_read:
                    self._thread_row(self._loads, widx)[event.tid] += 1
                    issued = getattr(request, "issued_cycle", -1)
                    critical = getattr(request, "critical_word_cycle", -1)
                    if issued >= 0 and critical >= issued:
                        self._thread_row(self._load_latency, widx)[
                            event.tid] += critical - issued
        elif category == CAT_MSHR:
            outstanding = event.args.get("outstanding") if event.args else None
            if outstanding is not None:
                widx = self._widx(event.ts)
                track = self._mshr_max.setdefault(event.track, {})
                if outstanding > track.get(widx, 0):
                    track[widx] = outstanding
        elif category == CAT_CACHE:
            if event.phase == PH_INSTANT and event.name in self._cond:
                widx = self._widx(event.ts)
                if 0 <= event.tid < self.n_threads:
                    self._thread_row(self._cond[event.name], widx)[
                        event.tid] += 1
        else:
            return
        self.events_seen += 1

    # ------------------------------------------------------------------ #
    # Pull-sampled series (window boundaries of the measurement phase).
    # ------------------------------------------------------------------ #

    def sample(self, system) -> None:
        """Record a gauge sample from a live system.

        Called by the simulation driver at measurement-window boundaries;
        never from the per-cycle hot path, so metrics keep the telemetry
        layer's zero-overhead-when-disabled contract.
        """
        dispatched = [
            system.thread_dispatched(tid) for tid in range(self.n_threads)
        ]
        ways = system.l2.occupancy_by_thread(self.n_threads)
        self._samples.append((system.cycle, dispatched, ways))

    def finish(self, end: int) -> None:
        self._finished_at = end
        self._widx(end - 1 if end > 0 else 0)

    def thread_totals(self) -> Dict[str, List[int]]:
        """Cumulative per-thread event-derived totals since attachment:
        loads retired and their latency sums (the windowed series summed
        over every observed window).  The QoS control plane
        (:mod:`repro.qos`) diffs these at epoch boundaries, so windows
        need not align with controller epochs."""
        loads = [0] * self.n_threads
        latency = [0] * self.n_threads
        for row in self._loads.values():
            for tid in range(self.n_threads):
                loads[tid] += row[tid]
        for row in self._load_latency.values():
            for tid in range(self.n_threads):
                latency[tid] += row[tid]
        return {"loads": loads, "load_latency": latency}

    # ------------------------------------------------------------------ #
    # Snapshot assembly.
    # ------------------------------------------------------------------ #

    def _materialize(self, store: Dict[int, int]) -> List[int]:
        return [store.get(w, 0) for w in range(self._lo, self._hi + 1)]

    def _materialize_threads(
        self, store: Dict[int, List[int]]
    ) -> List[List[int]]:
        zeros = [0] * self.n_threads
        rows = [list(store.get(w, zeros))
                for w in range(self._lo, self._hi + 1)]
        # thread-major: series[tid][window]
        return [[row[tid] for row in rows] for tid in range(self.n_threads)]

    def _sampled_series(self):
        """Per-interval IPC / way-occupancy / slowdown / fairness."""
        cycles = [s[0] for s in self._samples]
        ipc: List[List[float]] = [[] for _ in range(self.n_threads)]
        for (c0, d0, _), (c1, d1, _) in zip(self._samples, self._samples[1:]):
            span = c1 - c0
            for tid in range(self.n_threads):
                ipc[tid].append((d1[tid] - d0[tid]) / span if span else 0.0)
        ways = [[s[2][tid] for s in self._samples]
                for tid in range(self.n_threads)]
        slowdown = None
        if self.baseline_ipcs is not None:
            slowdown = [
                [base / value if value > 0 else float("inf")
                 for value in ipc[tid]]
                for tid, base in enumerate(self.baseline_ipcs)
            ]
        fairness = []
        for k in range(len(cycles) - 1):
            throughput = [ipc[tid][k] for tid in range(self.n_threads)]
            if self.baseline_ipcs is not None:
                throughput = [
                    value / base if base > 0 else 0.0
                    for value, base in zip(throughput, self.baseline_ipcs)
                ]
            fairness.append(jain_index(throughput))
        return cycles, ipc, ways, slowdown, fairness

    def measured(self):
        """(cycles, instructions per thread, ipcs) over the sampled span."""
        if len(self._samples) < 2:
            return 0, [0] * self.n_threads, [0.0] * self.n_threads
        c0, d0, _ = self._samples[0]
        c1, d1, _ = self._samples[-1]
        span = c1 - c0
        instructions = [d1[tid] - d0[tid] for tid in range(self.n_threads)]
        # Same integer division run_simulation performs, so a metrics
        # snapshot's ipcs match the SimulationResult bit for bit.
        ipcs = [insts / span if span else 0.0 for insts in instructions]
        return span, instructions, ipcs

    def snapshot(self) -> Dict:
        """The JSON-able form: meta + totals + every series."""
        span, instructions, ipcs = self.measured()
        out: Dict = {
            "schema": METRICS_SCHEMA,
            "window": self.window,
            "n_threads": self.n_threads,
            "events_seen": self.events_seen,
            "measured_cycles": span,
            "instructions": instructions,
            "ipcs": ipcs,
        }
        series: Dict = {}
        if self._lo is not None:
            out["window_base"] = self._lo
            out["windows"] = self._hi - self._lo + 1
            series["service_cycles"] = {
                track: self._materialize_threads(store)
                for track, store in sorted(self._service.items())
            }
            series["utilization"] = {
                track: [value / self.window
                        for value in self._materialize(store)]
                for track, store in sorted(self._busy.items())
            }
            series["queue_depth_max"] = {
                track: self._materialize(store)
                for track, store in sorted(self._queue_max.items())
            }
            series["mshr_max"] = {
                track: self._materialize(store)
                for track, store in sorted(self._mshr_max.items())
            }
            series["loads"] = self._materialize_threads(self._loads)
            series["load_latency_sum"] = self._materialize_threads(
                self._load_latency)
            series["cond1"] = self._materialize_threads(self._cond["cond1"])
            series["cond2"] = self._materialize_threads(self._cond["cond2"])
        if len(self._samples) >= 2:
            cycles, ipc, ways, slowdown, fairness = self._sampled_series()
            out["sample_cycles"] = cycles
            series["ipc"] = ipc
            series["l2_ways"] = ways
            if slowdown is not None:
                series["slowdown"] = slowdown
            series["jain_fairness"] = fairness
        out["series"] = series
        out["totals"] = self._totals(series)
        out["fairness"] = self._fairness_summary(ipcs, out)
        if self.baseline_ipcs is not None:
            out["baseline_ipcs"] = list(self.baseline_ipcs)
        return out

    def _totals(self, series: Dict) -> Dict:
        def row_sum(rows):
            return [sum(values) for values in rows]

        totals: Dict = {}
        if "service_cycles" in series:
            totals["service_cycles"] = {
                track: row_sum(rows)
                for track, rows in series["service_cycles"].items()
            }
        if "loads" in series:
            totals["loads"] = row_sum(series["loads"])
            latency = row_sum(series["load_latency_sum"])
            totals["load_latency_mean"] = [
                lat / n if n else 0.0
                for lat, n in zip(latency, totals["loads"])
            ]
        if "cond1" in series:
            totals["cond1"] = row_sum(series["cond1"])
            totals["cond2"] = row_sum(series["cond2"])
        return totals

    def _fairness_summary(self, ipcs: List[float], out: Dict) -> Dict:
        throughput = list(ipcs)
        if self.baseline_ipcs is not None:
            throughput = [
                value / base if base > 0 else 0.0
                for value, base in zip(throughput, self.baseline_ipcs)
            ]
        summary = {"jain_overall": jain_index(throughput)}
        window_jain = out["series"].get("jain_fairness")
        if window_jain:
            summary["jain_min_window"] = min(window_jain)
        return summary


# ---------------------------------------------------------------------- #
# Cross-process aggregation (repro.experiments.parallel workers snapshot;
# the runner merges one aggregate per experiment).
# ---------------------------------------------------------------------- #

def merge_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Fold per-point metrics snapshots into one experiment aggregate."""
    points = [snap for snap in snapshots if snap is not None]
    totals = {
        "instructions": 0,
        "measured_cycles": 0,
        "loads": 0,
        "cond1": 0,
        "cond2": 0,
        "events_seen": 0,
    }
    for snap in points:
        totals["instructions"] += sum(snap.get("instructions", ()))
        totals["measured_cycles"] += snap.get("measured_cycles", 0)
        totals["events_seen"] += snap.get("events_seen", 0)
        snap_totals = snap.get("totals", {})
        totals["loads"] += sum(snap_totals.get("loads", ()))
        totals["cond1"] += sum(snap_totals.get("cond1", ()))
        totals["cond2"] += sum(snap_totals.get("cond2", ()))
    return {
        "schema": AGGREGATE_SCHEMA,
        "points": len(points),
        "totals": totals,
        "per_point": list(points),
    }


# ---------------------------------------------------------------------- #
# Prometheus text exposition (final scrape, or live over /metrics).
# ---------------------------------------------------------------------- #

def _prom_line(name: str, labels: Dict[str, object], value) -> str:
    rendered = ",".join(f'{key}="{val}"' for key, val in labels.items())
    body = f"{{{rendered}}}" if rendered else ""
    return f"{name}{body} {value}"


class _Families:
    """Sample lines grouped per metric family, declared exactly once.

    Families render in first-encounter order, so a single-point export
    is line-identical to the historical flat exposition, and a fleet
    aggregate declares each ``# HELP``/``# TYPE`` once with every
    point's samples under it (Prometheus rejects re-declarations).
    """

    def __init__(self) -> None:
        self._order: List[str] = []
        self._families: Dict[str, Tuple[str, str, List[str]]] = {}

    def add(self, name: str, kind: str, help_text: str,
            labels: Dict[str, object], value) -> None:
        entry = self._families.get(name)
        if entry is None:
            entry = self._families[name] = (kind, help_text, [])
            self._order.append(name)
        entry[2].append(_prom_line(name, labels, value))

    def render(self) -> str:
        lines: List[str] = []
        for name in self._order:
            kind, help_text, samples = self._families[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"


def _expose_point(snapshot: Dict, base: Dict, fam: _Families) -> None:
    """Collect one point snapshot's samples, labelled with ``base``."""
    def labelled(**labels) -> Dict[str, object]:
        return {**base, **labels}

    n = snapshot.get("n_threads", 0)
    for tid, value in enumerate(snapshot.get("ipcs", ())):
        fam.add("repro_thread_ipc", "gauge",
                "Per-thread IPC over the measurement interval",
                labelled(thread=tid), value)
    for tid, value in enumerate(snapshot.get("instructions", ())):
        fam.add("repro_thread_instructions_total", "counter",
                "Instructions committed per thread in the measurement "
                "interval", labelled(thread=tid), value)
    totals = snapshot.get("totals", {})
    for track, row in totals.get("service_cycles", {}).items():
        for tid in range(n):
            fam.add("repro_service_cycles_total", "counter",
                    "Granted service cycles per shared resource per thread",
                    labelled(resource=track, thread=tid), row[tid])
    if "loads" in totals:
        for tid, value in enumerate(totals["loads"]):
            fam.add("repro_loads_retired_total", "counter",
                    "Demand+prefetch loads retired per thread",
                    labelled(thread=tid), value)
    if "cond1" in totals:
        for cond in ("cond1", "cond2"):
            for tid, value in enumerate(totals[cond]):
                fam.add("repro_capacity_victimizations_total", "counter",
                        "VPC Capacity Manager victimizations by condition",
                        labelled(condition=cond, thread=tid), value)
    fairness = snapshot.get("fairness", {})
    if fairness:
        fam.add("repro_fairness_jain", "gauge",
                "Jain fairness index of per-thread (normalized) throughput",
                dict(base), fairness.get("jain_overall", 0.0))
    if snapshot.get("baseline_ipcs"):
        for tid, (target, ipc) in enumerate(
            zip(snapshot["baseline_ipcs"], snapshot.get("ipcs", ()))
        ):
            value = target / ipc if ipc > 0 else float("inf")
            fam.add("repro_thread_slowdown", "gauge",
                    "Solo-run baseline IPC divided by observed IPC",
                    labelled(thread=tid), value)
    stacks = snapshot.get("cpi_stacks")
    if stacks:
        buckets = stacks.get("buckets", ())
        for tid, row in enumerate(stacks.get("threads", ())):
            for bucket, value in zip(buckets, row):
                fam.add("repro_cpi_stack_cycles", "counter",
                        "Measurement-interval cycles attributed to each "
                        "CPI-stack bucket per thread (buckets sum exactly "
                        "to measured cycles)",
                        labelled(thread=tid, bucket=bucket), value)
    requests = snapshot.get("requests")
    if requests:
        for tid, row in enumerate(requests.get("threads", ())):
            for quantile, value in (row.get("quantiles") or {}).items():
                if value is None:
                    continue
                fam.add("repro_request_latency_cycles", "gauge",
                        "Exact streaming per-thread load-latency quantiles "
                        "(issue to critical word)",
                        labelled(thread=tid, quantile=quantile), value)
        for rule in (requests.get("slo") or {}).get("rules", ()):
            for tid, attained in enumerate(rule.get("attainment") or ()):
                if attained is None:
                    continue
                fam.add("repro_slo_attainment", "gauge",
                        "Fraction of a thread's demand loads within the SLO "
                        "rule's latency threshold",
                        labelled(slo=rule.get("name"), thread=tid), attained)
    attribution = snapshot.get("attribution")
    if attribution:
        for resource, data in sorted(attribution.get("resources", {}).items()):
            matrix = data.get("matrix", ())
            for victim, row in enumerate(matrix):
                for aggressor, value in enumerate(row):
                    if victim == aggressor:
                        continue
                    fam.add(
                        "repro_interference_cycles_total", "counter",
                        "Queueing cycles victim threads lost to aggressor "
                        "grants",
                        labelled(resource=resource, victim=victim,
                                 aggressor=aggressor), value)


def to_prometheus(snapshot: Dict) -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    Accepts either a single point snapshot (``repro.metrics/1`` —
    whole-run counters as ``_total`` counters, end-of-run gauges as
    gauges) or an experiment aggregate (``repro.metrics-aggregate/1``,
    as served live by ``--serve``'s ``/metrics``): run-level totals plus
    every per-point family labelled ``point="<index>"``.  Validated by
    ``repro.telemetry.validate``.
    """
    fam = _Families()
    if snapshot.get("schema") == AGGREGATE_SCHEMA:
        fam.add("repro_run_points", "gauge",
                "Simulation points contributing to this scrape",
                {}, snapshot.get("points", 0))
        totals = snapshot.get("totals", {})
        for key, help_text in (
            ("instructions", "Instructions committed across the fleet"),
            ("measured_cycles", "Measured cycles summed across points"),
            ("loads", "Loads retired across the fleet"),
            ("cond1", "Condition-1 victimizations across the fleet"),
            ("cond2", "Condition-2 victimizations across the fleet"),
            ("events_seen", "Telemetry events aggregated across the fleet"),
        ):
            if key in totals:
                fam.add(f"repro_run_{key}_total", "counter", help_text,
                        {}, totals[key])
        for index, point in enumerate(snapshot.get("per_point", ())):
            _expose_point(point, {"point": index}, fam)
    else:
        _expose_point(snapshot, {}, fam)
    return fam.render()

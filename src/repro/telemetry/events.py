"""The structured event record every telemetry producer emits.

One event type serves every instrumentation point in the simulator —
arbiter grants, resource occupancy, request lifecycles, DRAM issues,
kernel skip decisions — so sinks can be written once and subscribe by
``category``.  The field vocabulary deliberately mirrors the Chrome
``trace_event`` format (phase letters, timestamps, durations) so the
Perfetto exporter is a near-direct mapping.

Timestamps are **simulated processor cycles** (the orchestration events
emitted by the experiment runner use wall-clock microseconds instead;
the ``track`` namespace keeps them apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

# Phase letters (Chrome trace_event vocabulary).
PH_BEGIN = "b"      # async span begin (paired by (category, id))
PH_END = "e"        # async span end
PH_COMPLETE = "X"   # a slice with an explicit duration
PH_INSTANT = "i"    # a point marker
PH_COUNTER = "C"    # a sampled counter value

# Event categories.  Sinks filter on these; keep them short and stable.
CAT_REQUEST = "request"      # memory-request lifecycles (per-thread tracks)
CAT_RESOURCE = "resource"    # tag/data/bus occupancy (per-bank tracks)
CAT_ARBITER = "arbiter"      # VPC arbiter enqueue/grant + virtual time
CAT_KERNEL = "kernel"        # event-kernel skip decisions
CAT_MSHR = "mshr"            # per-core MSHR occupancy
CAT_SGB = "sgb"              # store-gather merges
CAT_DRAM = "dram"            # DRAM data-bus occupancy
CAT_XBAR = "crossbar"        # crossbar transport
CAT_RUN = "run"              # experiment-runner orchestration (wall clock)
CAT_CACHE = "cache"          # capacity-manager victimizations + occupancy
CAT_CPI = "cpi"              # per-thread CPI-stack counter tracks
CAT_HOST = "host"            # host-time orchestration spans (wall clock)
CAT_QOS = "qos"              # QoS controller decisions + share trajectories


@dataclass
class TraceEvent:
    """One telemetry event.

    ``track`` names the timeline the event belongs to (``"t0"``,
    ``"bank1.data"``, ``"dram.ch0"``, ...); ``tid`` is the *hardware*
    thread the event is attributed to (-1 when not thread-specific);
    ``dur`` is in the same unit as ``ts`` and only meaningful for
    ``PH_COMPLETE`` slices and arbiter grants (granted service cycles);
    ``id`` pairs ``PH_BEGIN``/``PH_END`` spans within a category.
    """

    ts: int
    phase: str
    category: str
    name: str
    track: str
    tid: int = -1
    dur: int = 0
    id: Optional[Union[int, str]] = None
    args: Optional[Dict] = None

    def to_dict(self) -> Dict:
        """Plain-dict form (JSONL sink, tests).  Omits empty fields."""
        out: Dict = {
            "ts": self.ts,
            "ph": self.phase,
            "cat": self.category,
            "name": self.name,
            "track": self.track,
        }
        if self.tid >= 0:
            out["tid"] = self.tid
        if self.dur:
            out["dur"] = self.dur
        if self.id is not None:
            out["id"] = self.id
        if self.args:
            out["args"] = self.args
        return out

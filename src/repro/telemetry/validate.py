"""Chrome ``trace_event`` schema validation (used by the CI trace-smoke).

The format has no official JSON Schema; this validates the subset the
exporter produces and Perfetto requires: the container shape, the
per-record required keys, phase-specific fields (``dur`` for ``X``,
``id`` for ``b``/``e``, ``s`` for ``i``, ``args.name`` for metadata),
and that every async begin has a matching end within its
``(cat, id)`` pair.

Run as a module for CI::

    python -m repro.telemetry.validate trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

_KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "b", "e", "n", "M", "s", "t", "f"}


def validate_chrome_trace(payload) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    errors: List[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"trace must be a list or object, got {type(payload).__name__}"]

    open_spans: Dict[Tuple[str, str], int] = {}
    for index, record in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = record.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            errors.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(record.get("name"), str):
            errors.append(f"{where}: missing 'name'")
        for key in ("pid", "tid"):
            if not isinstance(record.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if phase == "M":
            args = record.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata without args.name")
            continue
        if not isinstance(record.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if phase == "X":
            if not isinstance(record.get("dur"), (int, float)):
                errors.append(f"{where}: 'X' slice without 'dur'")
        elif phase in ("b", "e"):
            span = (str(record.get("cat")), str(record.get("id")))
            if record.get("id") is None:
                errors.append(f"{where}: async event without 'id'")
            elif phase == "b":
                open_spans[span] = open_spans.get(span, 0) + 1
            else:
                if open_spans.get(span, 0) <= 0:
                    errors.append(f"{where}: 'e' with no open 'b' for {span}")
                else:
                    open_spans[span] -= 1
        elif phase in ("i", "I"):
            if record.get("s") not in (None, "t", "p", "g"):
                errors.append(f"{where}: bad instant scope {record.get('s')!r}")

    for span, depth in open_spans.items():
        if depth:
            errors.append(f"unclosed async span {span} (depth {depth})")
    return errors


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.validate <trace.json>",
              file=sys.stderr)
        return 2
    with open(argv[0], encoding="utf-8") as fh:
        payload = json.load(fh)
    errors = validate_chrome_trace(payload)
    events = payload.get("traceEvents", payload) if isinstance(payload, dict) \
        else payload
    if errors:
        for error in errors[:40]:
            print(f"INVALID: {error}", file=sys.stderr)
        print(f"{len(errors)} schema problems in {argv[0]}", file=sys.stderr)
        return 1
    print(f"OK: {argv[0]} valid ({len(events)} trace events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Telemetry artifact validation (used by the CI trace/report smokes).

Three validators, one CLI:

* :func:`validate_chrome_trace` — the Chrome ``trace_event`` subset the
  exporter produces and Perfetto requires: container shape, per-record
  required keys, phase-specific fields (``dur`` for ``X``, ``id`` for
  ``b``/``e``, ``s`` for ``i``, numeric-only ``args`` series for ``C``
  counters, ``args.name`` for metadata), and balanced async spans per
  ``(cat, id)`` pair.
* :func:`validate_metrics_json` — ``repro.metrics/1`` snapshots from
  ``--metrics``: schema tag, series shapes, and the attribution
  conservation identity when an attribution section is present.
  Embedded or standalone ``repro.cpi-stack/1`` documents (from
  ``--cpi-stacks``) are re-checked offline against the cycle-accounting
  conservation invariant — per-thread bucket sums must equal the
  measured cycles exactly, from the serialized numbers alone.
* :func:`validate_prometheus` — Prometheus text exposition from
  ``--prometheus``: sample-line grammar, numeric values, and that every
  sampled family was declared with ``# TYPE`` first.
* :func:`validate_spans` — ``repro.spans/1`` documents from ``--spans``:
  per-record required keys, id uniqueness, parent links that resolve
  within the document, non-negative durations, and timestamp ordering.
* :func:`validate_alerts` — ``repro.alerts/1`` documents from
  ``--alerts-out`` (or a fleet aggregator's ``/alerts``): rule/event
  shapes, monotonically increasing ``sequence`` ordinals, events that
  reference declared rules, and a summary consistent with the events.
* ``repro.requests/1`` documents from ``--requests`` are re-checked by
  :func:`repro.telemetry.requests.verify_requests` — standalone or
  embedded in a metrics snapshot — including the segment-conservation
  invariant: every exemplar's per-stage segments must sum exactly to
  its end-to-end latency.
* :func:`validate_qos_decisions` — ``repro.qos-decisions/1`` logs from
  the CLI's ``--qos-log`` (the QoS controller's per-epoch decision
  trail): monotone epoch/cycle ordering, per-thread vector shapes,
  labels drawn from the classifier taxonomy, shares in ``[0, 1]``
  that never over-allocate, and a ``final`` block consistent with the
  last decision.
* :func:`validate_frontier` — ``repro.policy-frontier/1`` figure
  documents from the experiment runner's ``--figures``: per-mix
  per-policy metric shapes (Jain in ``[0, 1]``, non-negative
  aggregate IPC) and an aggregate block covering exactly the declared
  policy families.

Run as a module for CI (the artifact kind is inferred from content, or
forced with ``--trace`` / ``--metrics`` / ``--prometheus`` /
``--spans`` / ``--alerts``)::

    python -m repro.telemetry.validate trace.json
    python -m repro.telemetry.validate metrics.json
    python -m repro.telemetry.validate --prometheus metrics.prom
    python -m repro.telemetry.validate spans.json
    python -m repro.telemetry.validate alerts.json
    python -m repro.telemetry.validate qos.json
    python -m repro.telemetry.validate policy-frontier.figure.json
"""

from __future__ import annotations

import json
import re
import sys
from typing import Dict, List, Tuple

_KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "b", "e", "n", "M", "s", "t", "f"}


def validate_chrome_trace(payload) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    errors: List[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"trace must be a list or object, got {type(payload).__name__}"]

    open_spans: Dict[Tuple[str, str], int] = {}
    for index, record in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = record.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            errors.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(record.get("name"), str):
            errors.append(f"{where}: missing 'name'")
        for key in ("pid", "tid"):
            if not isinstance(record.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if phase == "M":
            args = record.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata without args.name")
            continue
        if not isinstance(record.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if phase == "X":
            if not isinstance(record.get("dur"), (int, float)):
                errors.append(f"{where}: 'X' slice without 'dur'")
        elif phase in ("b", "e"):
            span = (str(record.get("cat")), str(record.get("id")))
            if record.get("id") is None:
                errors.append(f"{where}: async event without 'id'")
            elif phase == "b":
                open_spans[span] = open_spans.get(span, 0) + 1
            else:
                if open_spans.get(span, 0) <= 0:
                    errors.append(f"{where}: 'e' with no open 'b' for {span}")
                else:
                    open_spans[span] -= 1
        elif phase in ("i", "I"):
            if record.get("s") not in (None, "t", "p", "g"):
                errors.append(f"{where}: bad instant scope {record.get('s')!r}")
        elif phase == "C":
            args = record.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter without args series")
            else:
                for key, value in args.items():
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        errors.append(
                            f"{where}: counter series {key!r} has "
                            f"non-numeric value {value!r}"
                        )

    for span, depth in open_spans.items():
        if depth:
            errors.append(f"unclosed async span {span} (depth {depth})")
    return errors


_METRICS_SCHEMAS = ("repro.metrics/1",)
_AGGREGATE_SCHEMAS = ("repro.metrics-aggregate/1",)
_STACK_SCHEMAS = ("repro.cpi-stack/1",)
_REQUESTS_SCHEMAS = ("repro.requests/1",)


def _check_thread_rows(errors, series, key, n_threads, windows, where):
    rows = series.get(key)
    if rows is None:
        return
    if not isinstance(rows, list) or len(rows) != n_threads:
        errors.append(f"{where}.{key}: expected {n_threads} thread rows")
        return
    for tid, row in enumerate(rows):
        if not isinstance(row, list):
            errors.append(f"{where}.{key}[{tid}]: not a list")
        elif windows is not None and len(row) != windows:
            errors.append(
                f"{where}.{key}[{tid}]: {len(row)} windows, "
                f"expected {windows}"
            )


def _check_attribution(errors, attribution, where="attribution"):
    n_threads = attribution.get("n_threads")
    if not isinstance(n_threads, int) or n_threads < 1:
        errors.append(f"{where}: bad n_threads {n_threads!r}")
        return
    for section in ("resources", "tracks"):
        for name, data in (attribution.get(section) or {}).items():
            matrix = data.get("matrix")
            delay = data.get("queueing_delay")
            idle = data.get("idle_wait")
            spot = f"{where}.{section}[{name}]"
            if (not isinstance(matrix, list) or len(matrix) != n_threads
                    or any(not isinstance(row, list)
                           or len(row) != n_threads for row in matrix)):
                errors.append(f"{spot}: matrix is not {n_threads}x{n_threads}")
                continue
            if (not isinstance(delay, list) or len(delay) != n_threads
                    or not isinstance(idle, list) or len(idle) != n_threads):
                errors.append(f"{spot}: delay/idle rows malformed")
                continue
            # The conservation identity the attributor promises: every
            # observed queueing cycle is either charged to a grant or
            # explicitly idle.
            for tid in range(n_threads):
                attributed = sum(matrix[tid]) + idle[tid]
                if attributed != delay[tid]:
                    errors.append(
                        f"{spot} thread {tid}: attributed {attributed} != "
                        f"queueing delay {delay[tid]} (conservation broken)"
                    )
                if idle[tid] < 0:
                    errors.append(
                        f"{spot} thread {tid}: negative idle wait {idle[tid]}"
                    )


def _validate_metrics_point(payload, errors, where) -> None:
    n_threads = payload.get("n_threads")
    if not isinstance(n_threads, int) or n_threads < 1:
        errors.append(f"{where}: bad n_threads {n_threads!r}")
        return
    window = payload.get("window")
    if not isinstance(window, int) or window < 1:
        errors.append(f"{where}: bad window {window!r}")
    for key in ("ipcs", "instructions"):
        values = payload.get(key)
        if not isinstance(values, list) or len(values) != n_threads:
            errors.append(f"{where}: {key!r} is not a {n_threads}-list")
    series = payload.get("series")
    if not isinstance(series, dict):
        errors.append(f"{where}: missing 'series' object")
        return
    windows = payload.get("windows")
    for key in ("service_cycles",):
        for track, rows in (series.get(key) or {}).items():
            _check_thread_rows(errors, {track: rows}, track, n_threads,
                               windows, f"{where}.series.{key}")
    for key in ("utilization", "queue_depth_max", "mshr_max"):
        for track, row in (series.get(key) or {}).items():
            if windows is not None and len(row) != windows:
                errors.append(
                    f"{where}.series.{key}[{track}]: {len(row)} windows, "
                    f"expected {windows}"
                )
    for key in ("loads", "load_latency_sum", "cond1", "cond2"):
        _check_thread_rows(errors, series, key, n_threads, windows,
                           f"{where}.series")
    samples = payload.get("sample_cycles")
    if samples is not None:
        intervals = len(samples) - 1
        for key in ("ipc", "slowdown"):
            _check_thread_rows(errors, series, key, n_threads, intervals,
                               f"{where}.series")
        _check_thread_rows(errors, series, "l2_ways", n_threads,
                           len(samples), f"{where}.series")
    attribution = payload.get("attribution")
    if attribution is not None:
        _check_attribution(errors, attribution, f"{where}.attribution")
    stacks = payload.get("cpi_stacks")
    if stacks is not None:
        from repro.telemetry.cycles import verify_stack
        errors.extend(f"{where}.cpi_stacks: {problem}"
                      for problem in verify_stack(stacks))
        if stacks.get("n_threads") != n_threads:
            errors.append(
                f"{where}.cpi_stacks: n_threads "
                f"{stacks.get('n_threads')!r} != snapshot's {n_threads}"
            )
    requests = payload.get("requests")
    if requests is not None:
        from repro.telemetry.requests import verify_requests
        errors.extend(f"{where}.{problem}"
                      for problem in verify_requests(requests))
        if (isinstance(requests, dict)
                and requests.get("n_threads") != n_threads):
            errors.append(
                f"{where}.requests: n_threads "
                f"{requests.get('n_threads')!r} != snapshot's {n_threads}"
            )


def validate_metrics_json(payload) -> List[str]:
    """Validate a ``--metrics`` JSON snapshot (or experiment aggregate).

    Checks the schema tag, per-thread/per-window series shapes, and —
    when an attribution section is embedded — re-verifies the
    charge-conservation identity from the serialized numbers alone.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"metrics must be an object, got {type(payload).__name__}"]
    schema = payload.get("schema")
    if schema in _AGGREGATE_SCHEMAS:
        points = payload.get("per_point")
        if not isinstance(points, list):
            return ["aggregate has no 'per_point' list"]
        if payload.get("points") != len(points):
            errors.append(
                f"aggregate 'points' {payload.get('points')!r} != "
                f"{len(points)} per_point entries"
            )
        for index, point in enumerate(points):
            if point.get("schema") not in _METRICS_SCHEMAS:
                errors.append(
                    f"per_point[{index}]: bad schema "
                    f"{point.get('schema')!r}"
                )
                continue
            _validate_metrics_point(point, errors, f"per_point[{index}]")
        attribution = payload.get("attribution")
        if attribution is not None:
            _check_attribution(errors, attribution)
        return errors
    if schema in _STACK_SCHEMAS:
        from repro.telemetry.cycles import verify_stack
        return verify_stack(payload)
    if schema not in _METRICS_SCHEMAS:
        return [f"unknown metrics schema {schema!r}"]
    _validate_metrics_point(payload, errors, "snapshot")
    return errors


_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_PROM_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


def validate_prometheus(text: str) -> List[str]:
    """Validate Prometheus text exposition from ``--prometheus``.

    Checks the sample-line grammar (metric name, optional ``{k="v"}``
    label set, float-parseable value) and that each family's samples are
    preceded by its ``# TYPE`` declaration.
    """
    errors: List[str] = []
    typed = set()
    samples = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[2]:
                errors.append(f"line {number}: malformed {parts[1]} comment")
                continue
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    errors.append(
                        f"line {number}: unknown TYPE {parts[3]!r}")
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _PROM_SAMPLE.match(line)
        if match is None:
            errors.append(f"line {number}: unparseable sample {line!r}")
            continue
        if match.group("name") not in typed:
            errors.append(
                f"line {number}: sample for {match.group('name')!r} "
                "before its # TYPE declaration"
            )
        labels = match.group("labels")
        if labels:
            for pair in labels.split(","):
                if not _PROM_LABEL.match(pair):
                    errors.append(f"line {number}: bad label pair {pair!r}")
        value = match.group("value")
        try:
            float(value)
        except ValueError:
            if value not in ("+Inf", "-Inf", "NaN", "inf", "-inf", "nan"):
                errors.append(f"line {number}: non-numeric value {value!r}")
        samples += 1
    if not samples:
        errors.append("no samples in exposition")
    return errors


_SPANS_SCHEMAS = ("repro.spans/1",)
_ALERTS_SCHEMAS = ("repro.alerts/1",)

_SPAN_KINDS = ("span", "instant")
_ALERT_STATES = ("firing", "resolved")
_ALERT_SEVERITIES = ("warn", "page")


def validate_spans(payload) -> List[str]:
    """Validate a ``repro.spans/1`` host-span document from ``--spans``.

    Checks per-record required keys, span-id uniqueness, that every
    ``parent_id`` resolves to another span in the document, non-negative
    durations, and the (``ts_us``, ``span_id``) sort order the writer
    promises.
    """
    if not isinstance(payload, dict):
        return [f"spans must be an object, got {type(payload).__name__}"]
    if payload.get("schema") not in _SPANS_SCHEMAS:
        return [f"unknown spans schema {payload.get('schema')!r}"]
    errors: List[str] = []
    if not isinstance(payload.get("epoch_unix_us"), int):
        errors.append("missing integer 'epoch_unix_us'")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        return errors + ["document has no 'spans' list"]
    seen: Dict[str, int] = {}
    previous = None
    for index, record in enumerate(spans):
        where = f"spans[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        kind = record.get("kind")
        if kind not in _SPAN_KINDS:
            errors.append(f"{where}: bad kind {kind!r}")
        for key in ("trace_id", "span_id", "name", "track"):
            if not isinstance(record.get(key), str) or not record.get(key):
                errors.append(f"{where}: missing string {key!r}")
        if not isinstance(record.get("ts_us"), int):
            errors.append(f"{where}: missing integer 'ts_us'")
        if kind == "span":
            duration = record.get("dur_us")
            if not isinstance(duration, int) or duration < 0:
                errors.append(f"{where}: bad 'dur_us' {duration!r}")
        if not isinstance(record.get("args"), dict):
            errors.append(f"{where}: missing 'args' object")
        span_id = record.get("span_id")
        if isinstance(span_id, str):
            if span_id in seen:
                errors.append(f"{where}: duplicate span_id {span_id!r} "
                              f"(first at spans[{seen[span_id]}])")
            else:
                seen[span_id] = index
        key = (record.get("ts_us"), span_id)
        if (previous is not None and isinstance(key[0], int)
                and isinstance(previous[0], int) and key < previous):
            errors.append(f"{where}: out of (ts_us, span_id) order")
        previous = key
    for index, record in enumerate(spans):
        if not isinstance(record, dict):
            continue
        parent = record.get("parent_id")
        if parent and parent not in seen:
            errors.append(f"spans[{index}]: parent_id {parent!r} does not "
                          "resolve within the document")
    return errors


def validate_alerts(payload) -> List[str]:
    """Validate a ``repro.alerts/1`` document from ``--alerts-out``.

    Checks rule and event shapes, that events reference declared rules,
    that ``sequence`` ordinals increase monotonically (the byte-stable
    ordering contract), and that the summary block is consistent with
    the recorded events.
    """
    if not isinstance(payload, dict):
        return [f"alerts must be an object, got {type(payload).__name__}"]
    if payload.get("schema") not in _ALERTS_SCHEMAS:
        return [f"unknown alerts schema {payload.get('schema')!r}"]
    errors: List[str] = []
    rules = payload.get("rules")
    if not isinstance(rules, list):
        return errors + ["document has no 'rules' list"]
    names = set()
    for index, rule in enumerate(rules):
        where = f"rules[{index}]"
        if not isinstance(rule, dict):
            errors.append(f"{where}: not an object")
            continue
        name = rule.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing rule 'name'")
        elif name in names:
            errors.append(f"{where}: duplicate rule name {name!r}")
        else:
            names.add(name)
        if not isinstance(rule.get("signal"), str):
            errors.append(f"{where}: missing 'signal'")
        if not isinstance(rule.get("threshold"), (int, float)):
            errors.append(f"{where}: missing numeric 'threshold'")
        if rule.get("severity") not in _ALERT_SEVERITIES:
            errors.append(f"{where}: bad severity {rule.get('severity')!r}")
    events = payload.get("events")
    if not isinstance(events, list):
        return errors + ["document has no 'events' list"]
    last_sequence = 0
    fired = 0
    for index, event in enumerate(events):
        where = f"events[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if event.get("alert") not in names:
            errors.append(f"{where}: event for undeclared rule "
                          f"{event.get('alert')!r}")
        if event.get("state") not in _ALERT_STATES:
            errors.append(f"{where}: bad state {event.get('state')!r}")
        elif event["state"] == "firing":
            fired += 1
        if not isinstance(event.get("value"), (int, float)):
            errors.append(f"{where}: missing numeric 'value'")
        sequence = event.get("sequence")
        if not isinstance(sequence, int) or sequence <= last_sequence:
            errors.append(f"{where}: sequence {sequence!r} not "
                          f"monotonically increasing (last {last_sequence})")
        else:
            last_sequence = sequence
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        errors.append("document has no 'summary' object")
    else:
        if summary.get("fired") != fired:
            errors.append(f"summary.fired {summary.get('fired')!r} != "
                          f"{fired} firing events")
        firing = summary.get("firing")
        if not isinstance(firing, list) or any(
                name not in names for name in firing):
            errors.append(f"summary.firing {firing!r} names undeclared rules")
        if not isinstance(summary.get("page_fired"), bool):
            errors.append("summary.page_fired is not a bool")
    return errors


_QOS_SCHEMAS = ("repro.qos-decisions/1",)
_FRONTIER_SCHEMAS = ("repro.policy-frontier/1",)


def _check_share_vector(errors, values, n_threads, where) -> None:
    if not isinstance(values, list) or len(values) != n_threads:
        errors.append(f"{where}: not a {n_threads}-vector")
        return
    for tid, value in enumerate(values):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"{where}[{tid}]: non-numeric share {value!r}")
        elif not 0.0 <= value <= 1.0:
            errors.append(f"{where}[{tid}]: share {value} outside [0, 1]")
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in values) and sum(values) > 1.0 + 1e-6:
        errors.append(f"{where}: shares sum to {sum(values)} > 1")


def validate_qos_decisions(payload) -> List[str]:
    """Validate a ``repro.qos-decisions/1`` controller log (``--qos-log``).

    Checks the per-epoch decision trail the QoS controller recorded:
    epoch ordinals and cycles strictly increase, every per-thread vector
    has ``n_threads`` entries, labels come from the classifier taxonomy,
    programmed phi/beta shares stay in ``[0, 1]`` and never
    over-allocate their resource, Jain indices are in ``[0, 1]``, and
    the ``final`` summary matches the last decision.
    """
    from repro.qos.classifier import LABELS
    if not isinstance(payload, dict):
        return [f"qos log must be an object, got {type(payload).__name__}"]
    if payload.get("schema") not in _QOS_SCHEMAS:
        return [f"unknown qos schema {payload.get('schema')!r}"]
    errors: List[str] = []
    if not isinstance(payload.get("policy"), str) or not payload.get("policy"):
        errors.append("missing string 'policy'")
    epoch_cycles = payload.get("epoch_cycles")
    if not isinstance(epoch_cycles, int) or epoch_cycles < 1:
        errors.append(f"bad epoch_cycles {epoch_cycles!r}")
    n_threads = payload.get("n_threads")
    if not isinstance(n_threads, int) or n_threads < 1:
        return errors + [f"bad n_threads {n_threads!r}"]
    decisions = payload.get("decisions")
    if not isinstance(decisions, list):
        return errors + ["document has no 'decisions' list"]
    if payload.get("epochs") != len(decisions):
        errors.append(f"'epochs' {payload.get('epochs')!r} != "
                      f"{len(decisions)} recorded decisions")
    baselines = payload.get("baseline_ipcs")
    if baselines is not None and (
            not isinstance(baselines, list) or len(baselines) != n_threads):
        errors.append(f"baseline_ipcs is not a {n_threads}-vector")
    last_cycle = None
    for index, decision in enumerate(decisions):
        where = f"decisions[{index}]"
        if not isinstance(decision, dict):
            errors.append(f"{where}: not an object")
            continue
        if decision.get("epoch") != index:
            errors.append(f"{where}: epoch {decision.get('epoch')!r} is "
                          f"out of order (expected {index})")
        cycle = decision.get("cycle")
        if not isinstance(cycle, int):
            errors.append(f"{where}: missing integer 'cycle'")
        elif last_cycle is not None and cycle <= last_cycle:
            errors.append(f"{where}: cycle {cycle} not after {last_cycle}")
        else:
            last_cycle = cycle
        cycles = decision.get("cycles")
        if not isinstance(cycles, int) or cycles < 0:
            errors.append(f"{where}: bad epoch length {cycles!r}")
        for key in ("ipcs", "loads"):
            values = decision.get(key)
            if not isinstance(values, list) or len(values) != n_threads:
                errors.append(f"{where}.{key}: not a {n_threads}-vector")
            elif any(isinstance(v, bool) or not isinstance(v, (int, float))
                     or v < 0 for v in values):
                errors.append(f"{where}.{key}: negative or non-numeric entry")
        labels = decision.get("labels")
        if not isinstance(labels, list) or len(labels) != n_threads:
            errors.append(f"{where}.labels: not a {n_threads}-vector")
        else:
            for tid, label in enumerate(labels):
                if label not in LABELS:
                    errors.append(f"{where}.labels[{tid}]: unknown label "
                                  f"{label!r} (taxonomy: {list(LABELS)})")
        _check_share_vector(errors, decision.get("phi"), n_threads,
                            f"{where}.phi")
        _check_share_vector(errors, decision.get("beta"), n_threads,
                            f"{where}.beta")
        jain = decision.get("jain")
        if (isinstance(jain, bool) or not isinstance(jain, (int, float))
                or not 0.0 <= jain <= 1.0 + 1e-9):
            errors.append(f"{where}: jain {jain!r} outside [0, 1]")
        if not isinstance(decision.get("programmed"), bool):
            errors.append(f"{where}: 'programmed' is not a bool")
    final = payload.get("final")
    if decisions and final is None:
        errors.append("decisions recorded but no 'final' summary")
    elif isinstance(final, dict) and decisions \
            and isinstance(decisions[-1], dict):
        last = decisions[-1]
        for key in ("phi", "beta", "labels", "jain"):
            if final.get(key) != last.get(key):
                errors.append(f"final.{key} {final.get(key)!r} != last "
                              f"decision's {last.get(key)!r}")
    return errors


def validate_frontier(payload) -> List[str]:
    """Validate a ``repro.policy-frontier/1`` figure (``--figures``).

    Checks that every mix reports every declared policy family with
    sane metrics (Jain in ``[0, 1]``, non-negative aggregate IPC,
    normalized-IPC vectors matching the workload list) and that the
    aggregate block covers exactly the declared policies.
    """
    if not isinstance(payload, dict):
        return [f"frontier must be an object, got {type(payload).__name__}"]
    if payload.get("schema") not in _FRONTIER_SCHEMAS:
        return [f"unknown frontier schema {payload.get('schema')!r}"]
    errors: List[str] = []
    policies = payload.get("policies")
    if (not isinstance(policies, list) or not policies
            or any(not isinstance(p, str) for p in policies)):
        return errors + ["document has no 'policies' name list"]
    for key in ("epoch_cycles", "warmup", "measure"):
        value = payload.get(key)
        if not isinstance(value, int) or value < 1:
            errors.append(f"bad {key} {value!r}")
    mixes = payload.get("mixes")
    if not isinstance(mixes, list) or not mixes:
        return errors + ["document has no 'mixes' list"]
    for index, mix in enumerate(mixes):
        where = f"mixes[{index}]"
        if not isinstance(mix, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(mix.get("mix"), str):
            errors.append(f"{where}: missing string 'mix'")
        workloads = mix.get("workloads")
        if not isinstance(workloads, list) or not workloads:
            errors.append(f"{where}: missing 'workloads' list")
            workloads = []
        targets = mix.get("targets")
        if (not isinstance(targets, list)
                or len(targets) != len(workloads)
                or any(isinstance(t, bool)
                       or not isinstance(t, (int, float)) or t <= 0
                       for t in targets)):
            errors.append(f"{where}: 'targets' is not a positive "
                          f"{len(workloads)}-vector")
        points = mix.get("points")
        if not isinstance(points, dict):
            errors.append(f"{where}: missing 'points' object")
            continue
        if sorted(points) != sorted(policies):
            errors.append(f"{where}: points cover {sorted(points)}, "
                          f"declared policies are {sorted(policies)}")
        for policy, metrics in points.items():
            spot = f"{where}.points[{policy}]"
            if not isinstance(metrics, dict):
                errors.append(f"{spot}: not an object")
                continue
            jain = metrics.get("jain")
            if (isinstance(jain, bool)
                    or not isinstance(jain, (int, float))
                    or not 0.0 <= jain <= 1.0 + 1e-9):
                errors.append(f"{spot}: jain {jain!r} outside [0, 1]")
            for key in ("aggregate_ipc", "hmean", "min"):
                value = metrics.get(key)
                if (isinstance(value, bool)
                        or not isinstance(value, (int, float)) or value < 0):
                    errors.append(f"{spot}: bad {key} {value!r}")
            normalized = metrics.get("normalized_ipcs")
            if workloads and (not isinstance(normalized, list)
                              or len(normalized) != len(workloads)):
                errors.append(f"{spot}: normalized_ipcs is not a "
                              f"{len(workloads)}-vector")
            epochs = metrics.get("epochs")
            if not isinstance(epochs, int) or epochs < 0:
                errors.append(f"{spot}: bad epochs {epochs!r}")
    aggregate = payload.get("aggregate")
    if not isinstance(aggregate, dict):
        errors.append("document has no 'aggregate' object")
    elif sorted(aggregate) != sorted(policies):
        errors.append(f"aggregate covers {sorted(aggregate)}, declared "
                      f"policies are {sorted(policies)}")
    else:
        for policy, metrics in aggregate.items():
            if not isinstance(metrics, dict) or any(
                    isinstance(v, bool) or not isinstance(v, (int, float))
                    for v in metrics.values()):
                errors.append(f"aggregate[{policy}]: non-numeric metrics")
    return errors


_USAGE = ("usage: python -m repro.telemetry.validate "
          "[--trace|--metrics|--stacks|--prometheus|--spans|--alerts"
          "|--requests|--qos|--frontier] <artifact>")


def _detect_kind(path: str, payload) -> str:
    if payload is None:
        return "prometheus"
    if isinstance(payload, dict):
        schema = payload.get("schema")
        if schema in _STACK_SCHEMAS:
            return "stacks"
        if schema in _SPANS_SCHEMAS:
            return "spans"
        if schema in _ALERTS_SCHEMAS:
            return "alerts"
        if schema in _REQUESTS_SCHEMAS:
            return "requests"
        if schema in _QOS_SCHEMAS:
            return "qos"
        if schema in _FRONTIER_SCHEMAS:
            return "frontier"
        if isinstance(schema, str) and schema.startswith("repro."):
            return "metrics"
    if (isinstance(payload, list) and payload
            and isinstance(payload[0], dict)):
        if payload[0].get("schema") in _STACK_SCHEMAS:
            # An --stacks artifact: a list of per-point stack documents.
            return "stacks"
        if payload[0].get("schema") in _REQUESTS_SCHEMAS:
            # The experiment runner's --requests artifact: one
            # repro.requests/1 document per traced point.
            return "requests"
    return "trace"


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    kind = None
    flags = {"--trace": "trace", "--metrics": "metrics",
             "--stacks": "stacks", "--prometheus": "prometheus",
             "--spans": "spans", "--alerts": "alerts",
             "--requests": "requests", "--qos": "qos",
             "--frontier": "frontier"}
    paths = []
    for token in argv:
        if token in flags:
            kind = flags[token]
        else:
            paths.append(token)
    if len(paths) != 1:
        print(_USAGE, file=sys.stderr)
        return 2
    path = paths[0]
    payload = None
    if kind != "prometheus":
        # .prom files are not JSON; anything else is sniffed from its
        # parsed content (metrics snapshots carry a repro.* schema tag;
        # non-JSON text — e.g. a /metrics scrape saved under any name —
        # classifies as Prometheus exposition).
        if path.endswith(".prom"):
            kind = kind or "prometheus"
        else:
            with open(path, encoding="utf-8") as fh:
                try:
                    payload = json.load(fh)
                except ValueError:
                    if kind is not None:
                        print(f"INVALID: {path} is not JSON",
                              file=sys.stderr)
                        return 1
                    kind = "prometheus"
    if kind is None:
        kind = _detect_kind(path, payload)
    if kind == "prometheus":
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        errors = validate_prometheus(text)
        count = sum(1 for line in text.splitlines()
                    if line.strip() and not line.startswith("#"))
        noun = "exposition samples"
    elif kind == "stacks":
        from repro.telemetry.cycles import verify_stack
        if isinstance(payload, dict):
            errors = verify_stack(payload)
            count = payload.get("n_threads", 0)
        elif isinstance(payload, list):
            errors = []
            count = 0
            for index, doc in enumerate(payload):
                if not isinstance(doc, dict):
                    errors.append(f"stacks[{index}]: not an object")
                    continue
                errors.extend(f"stacks[{index}]: {problem}"
                              for problem in verify_stack(doc))
                count += doc.get("n_threads", 0)
        else:
            errors = ["cycle-stack artifact is neither an object nor a "
                      "list of objects"]
            count = 0
        noun = "thread stacks (conservation re-checked)"
    elif kind == "spans":
        errors = validate_spans(payload)
        spans = payload.get("spans") if isinstance(payload, dict) else None
        count = len(spans) if isinstance(spans, list) else 0
        noun = "host spans"
    elif kind == "alerts":
        errors = validate_alerts(payload)
        events = payload.get("events") if isinstance(payload, dict) else None
        count = len(events) if isinstance(events, list) else 0
        noun = "alert events"
    elif kind == "requests":
        from repro.telemetry.requests import verify_requests

        def _count_loads(doc) -> int:
            threads = doc.get("threads") if isinstance(doc, dict) else None
            return (sum(row.get("loads", 0) for row in threads
                        if isinstance(row, dict))
                    if isinstance(threads, list) else 0)

        if isinstance(payload, list):
            errors = []
            count = 0
            for index, doc in enumerate(payload):
                if not isinstance(doc, dict):
                    errors.append(f"requests[{index}]: not an object")
                    continue
                errors.extend(f"requests[{index}]: {problem}"
                              for problem in verify_requests(doc))
                count += _count_loads(doc)
        else:
            errors = verify_requests(payload)
            count = _count_loads(payload)
        noun = "traced loads (segment conservation re-checked)"
    elif kind == "qos":
        errors = validate_qos_decisions(payload)
        decisions = payload.get("decisions") \
            if isinstance(payload, dict) else None
        count = len(decisions) if isinstance(decisions, list) else 0
        noun = "epoch decisions"
    elif kind == "frontier":
        errors = validate_frontier(payload)
        mixes = payload.get("mixes") if isinstance(payload, dict) else None
        count = len(mixes) if isinstance(mixes, list) else 0
        noun = "frontier mixes"
    elif kind == "metrics":
        errors = validate_metrics_json(payload)
        count = payload.get("points", 1) if isinstance(payload, dict) else 0
        noun = "metric points"
    else:
        errors = validate_chrome_trace(payload)
        events = payload.get("traceEvents", payload) \
            if isinstance(payload, dict) else payload
        count = len(events) if isinstance(events, list) else 0
        noun = "trace events"
    if errors:
        for error in errors[:40]:
            print(f"INVALID: {error}", file=sys.stderr)
        print(f"{len(errors)} schema problems in {path}", file=sys.stderr)
        return 1
    print(f"OK: {path} valid ({count} {noun})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Request-scope tracing: per-request waterfalls, tail exemplars, SLOs.

Where :mod:`repro.telemetry.cycles` answers "where did every *cycle*
go", this module answers "where did every *request* go": each completed
demand load's end-to-end latency is decomposed into per-stage segments
(L1/crossbar transit, bank admission conflict, the three L2 arbiter
queues, L2 service, DRAM queueing and DRAM service — the same taxonomy
names as the PR 7 CPI-stack buckets), with the conservation contract
that the segments of every traced request sum **exactly** to its
issue→critical-word latency, on all three kernels.

Three consumers ride on the per-request journeys:

* **exact streaming quantiles** — per-thread p50/p95/p99/p999 computed
  from a latency→count map, value-identical to sorting the full request
  log (``ordered[min(n-1, ceil(f*n)-1)]``), without keeping the log;
* **worst-k exemplars** — a bounded reservoir of the slowest requests
  per thread, each carrying its full segment waterfall (exported as
  Perfetto slices on per-thread ``req.tN`` tracks, flow-linked to the
  request's async span on the simulated-cycle timeline);
* **SLO attainment** — declarative latency targets ("99% of thread 0's
  loads under 400 cycles") evaluated into per-thread attainment
  fractions, plus a worst-case burn rate for the alert engine's
  ``slo_burn`` signal.

Hook discipline is the telemetry layer's usual contract: components
hold a ``_rtrace`` attribute that defaults to ``None``; every hook site
is one ``is not None`` test, so disabled tracing is free.  Hooks fire
at component action sites shared verbatim by the cycle, event, and
batch kernels, so journeys are kernel-identical by construction.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import CAT_REQUEST, PH_COMPLETE, TraceEvent

#: Schema tag of a request-tracing JSON document.
REQUESTS_SCHEMA = "repro.requests/1"

# Chrome trace_event flow phases (the exporter links the exemplar
# waterfall back to the request's async span with these).
PH_FLOW_START = "s"
PH_FLOW_FINISH = "f"

# Journey segment indices.  Order is part of the schema (exemplar
# segment lists are emitted positionally); append-only.  Names reuse
# the cycles.BUCKETS taxonomy — store-buffer and MSHR waits happen
# *before* a demand load's request exists (they are core-side stalls,
# visible in the CPI stacks), so a request-scope journey starts at the
# issue cycle and the first segment is the core->bank transit.
G_XFER = 0      # crossbar transit, core -> bank input queue
G_BANKQ = 1     # parked in the bank input load queue (bank conflict)
G_TAGQ = 2      # waiting in the L2 tag arbiter queue
G_L2SVC = 3     # in service inside the L2 (tag/data/bus busy)
G_DATAQ = 4     # waiting in the L2 data-array arbiter queue
G_BUSQ = 5      # waiting in the L2 data-bus arbiter queue
G_DRAMQ = 6     # below the L2: controller/L3/DRAM queueing
G_DRAMSVC = 7   # DRAM device service (activate/column/burst)

SEGMENTS = (
    "l1_transit", "bank_conflict", "l2_tag_queue", "l2_service",
    "l2_data_queue", "l2_bus_queue", "dram_queue", "dram_service",
)
N_SEGMENTS = len(SEGMENTS)

#: Quantiles every summary reports, with their fractions.
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999),
)


def exact_quantile(counts: Dict[int, int], total: int, fraction: float):
    """The ``fraction`` quantile of a latency→count map, value-identical
    to ``sorted(latencies)[min(total - 1, ceil(fraction * total) - 1)]``
    (the :class:`repro.analysis.latency.LatencySummary` convention)."""
    if total <= 0:
        return None
    index = min(total - 1, math.ceil(fraction * total) - 1)
    seen = 0
    for latency in sorted(counts):
        seen += counts[latency]
        if seen > index:
            return latency
    raise RuntimeError("latency counts inconsistent with total")


class StreamingLatencies:
    """Exact per-thread streaming latency summaries plus worst-k
    exemplars.  Threads are materialized on first use, so the class
    serves both the tracer (thread count known) and the request-log
    sink (it only sees retired requests)."""

    def __init__(self, exemplar_k: int = 8) -> None:
        if exemplar_k < 1:
            raise ValueError("need at least one exemplar slot")
        self.exemplar_k = exemplar_k
        self._counts: Dict[int, Dict[int, int]] = {}
        self._totals: Dict[int, int] = {}
        self._max: Dict[int, int] = {}
        self._exemplars: Dict[int, List[dict]] = {}

    def add(self, tid: int, latency: int, exemplar: Optional[dict] = None) -> None:
        counts = self._counts.setdefault(tid, {})
        counts[latency] = counts.get(latency, 0) + 1
        self._totals[tid] = self._totals.get(tid, 0) + 1
        if latency > self._max.get(tid, -1):
            self._max[tid] = latency
        if exemplar is None:
            return
        worst = self._exemplars.setdefault(tid, [])
        if len(worst) < self.exemplar_k:
            worst.append(exemplar)
            return
        # Replace the current minimum only on a strictly greater
        # latency: ties keep the earlier request, which makes the
        # reservoir deterministic (and therefore kernel-identical,
        # since completion order is bit-identical across kernels).
        low, low_latency = 0, worst[0]["latency"]
        for index in range(1, len(worst)):
            if worst[index]["latency"] < low_latency:
                low, low_latency = index, worst[index]["latency"]
        if latency > low_latency:
            worst[low] = exemplar

    def threads(self) -> List[int]:
        return sorted(self._totals)

    def loads(self, tid: int) -> int:
        return self._totals.get(tid, 0)

    def quantiles(self, tid: int) -> Dict[str, Optional[int]]:
        counts = self._counts.get(tid, {})
        total = self._totals.get(tid, 0)
        return {
            name: exact_quantile(counts, total, fraction)
            for name, fraction in QUANTILES
        }

    def maximum(self, tid: int) -> Optional[int]:
        return self._max.get(tid)

    def attainment(self, tid: int, threshold: int) -> Optional[float]:
        """Fraction of thread ``tid``'s loads at or under ``threshold``."""
        total = self._totals.get(tid, 0)
        if not total:
            return None
        within = sum(
            count for latency, count in self._counts[tid].items()
            if latency <= threshold
        )
        return within / total

    def exemplars(self, tid: int) -> List[dict]:
        """Worst-first exemplars (latency desc, then issue order)."""
        return sorted(
            self._exemplars.get(tid, ()),
            key=lambda ex: (-ex["latency"], ex["issued_cycle"]),
        )

    def reset(self) -> None:
        self._counts.clear()
        self._totals.clear()
        self._max.clear()
        self._exemplars.clear()


# ---------------------------------------------------------------------- #
# SLO rules.
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class SLORule:
    """One declarative latency target: ``target`` fraction of a
    thread's demand loads (every thread when ``thread`` is None) must
    complete within ``threshold_cycles``."""

    name: str
    threshold_cycles: int
    target: float = 0.99
    thread: Optional[int] = None

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "threshold_cycles": self.threshold_cycles,
            "target": self.target,
            "thread": self.thread,
        }


def _rule_from_dict(raw: Dict, index: int) -> SLORule:
    if not isinstance(raw, dict):
        raise ValueError(f"SLO rule {index} is not an object: {raw!r}")
    try:
        threshold = int(raw["threshold_cycles"])
    except (KeyError, TypeError, ValueError):
        raise ValueError(f"SLO rule {index} needs integer threshold_cycles")
    target = float(raw.get("target", 0.99))
    if not 0.0 < target <= 1.0:
        raise ValueError(f"SLO rule {index}: target {target} outside (0, 1]")
    if threshold <= 0:
        raise ValueError(f"SLO rule {index}: threshold must be positive")
    thread = raw.get("thread")
    if thread is not None:
        thread = int(thread)
    name = str(raw.get("name") or f"slo{index}")
    return SLORule(name=name, threshold_cycles=threshold,
                   target=target, thread=thread)


def load_slo(spec: str) -> List[SLORule]:
    """Parse an ``--slo`` argument.

    An integer is shorthand for one fleet-wide rule — 99% of every
    thread's loads under that many cycles.  Anything else is a path to
    a JSON or TOML document with an ``slos`` list of rule objects
    (``name``/``threshold_cycles``/``target``/``thread``).
    """
    spec = spec.strip()
    try:
        threshold = int(spec)
    except ValueError:
        pass
    else:
        if threshold <= 0:
            raise ValueError(f"--slo threshold must be positive: {spec}")
        return [SLORule(name=f"p99-under-{threshold}",
                        threshold_cycles=threshold)]
    with open(spec, "rb") as fh:
        raw_bytes = fh.read()
    try:
        doc = json.loads(raw_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        import tomllib
        doc = tomllib.loads(raw_bytes.decode("utf-8"))
    rules = doc.get("slos") if isinstance(doc, dict) else None
    if not isinstance(rules, list) or not rules:
        raise ValueError(f"{spec}: expected an object with an 'slos' list")
    return [_rule_from_dict(raw, index) for index, raw in enumerate(rules)]


# ---------------------------------------------------------------------- #
# The tracer.
# ---------------------------------------------------------------------- #

class _Journey:
    """One in-flight demand load: its open segment and closed totals."""

    __slots__ = ("req_id", "seq", "line", "issued", "mark", "seg", "segments")

    def __init__(self, req_id: int, seq: int, line: int, now: int) -> None:
        self.req_id = req_id
        self.seq = seq
        self.line = line
        self.issued = now
        self.mark = now
        self.seg = G_XFER
        self.segments = [0] * N_SEGMENTS


class RequestTracer:
    """Mutable request-scope tracing state shared by hooked components.

    One instance per :class:`~repro.system.cmp.CMPSystem`, attached via
    ``system.attach_request_tracing()``.  Pickled with the system object
    graph, so checkpoint/resume keeps journeys and summaries exact.

    Hooks mirror :class:`~repro.telemetry.cycles.CycleAccounting`'s
    component sites but track *individual requests* instead of a
    per-thread census: each hook closes the journey's open segment at
    the component's action cycle and opens the next, so the segment sum
    equals the end-to-end latency by construction.
    """

    def __init__(self, n_threads: int, exemplar_k: int = 8,
                 slo_rules: Tuple[SLORule, ...] = ()) -> None:
        if n_threads < 1:
            raise ValueError("request tracing needs at least one thread")
        self.n_threads = n_threads
        self.exemplar_k = exemplar_k
        self.slo_rules = tuple(slo_rules)
        self._open: Dict[int, _Journey] = {}
        # (thread, line) -> req_id for the DRAM-issue hook, which sees
        # no request object.  Safe: MSHR coalescing plus the bank's
        # active-line exclusion guarantee at most one tracked read per
        # (thread, line) below the L2 at a time.
        self._dram: Dict[Tuple[int, int], int] = {}
        self.stats = StreamingLatencies(exemplar_k)
        self._base_cycle = 0

    # -------------------------- span engine --------------------------- #

    def _shift(self, journey: _Journey, seg: int, now: int) -> None:
        journey.segments[journey.seg] += now - journey.mark
        journey.mark = now
        journey.seg = seg

    # ------------------------- component hooks ------------------------ #

    def issued(self, request, now: int) -> None:
        """A core sent a primary demand load to the L2."""
        self._open[request.req_id] = _Journey(
            request.req_id, request.seq, request.line, now
        )

    def bank_accepted(self, request, now: int) -> None:
        """The crossbar delivered the read into a bank's load queue."""
        journey = self._open.get(request.req_id)
        if journey is not None:
            self._shift(journey, G_BANKQ, now)

    def arbiter_queued(self, kind: str, entry, now: int) -> None:
        """A bank state machine entered a tag/data/bus arbiter queue.
        Fill-side stages (post-respond) and writes never match an open
        journey, so they fall through the lookup."""
        sm = entry.payload
        request = getattr(sm, "request", None)
        if request is None:
            return
        journey = self._open.get(request.req_id)
        if journey is None:
            return
        state = sm.state.name
        if kind == "tag":
            if state in ("TAG_WAIT", "MISSTAG_WAIT"):
                self._shift(journey, G_TAGQ, now)
        elif kind == "data":
            if state == "DATA_WAIT":
                self._shift(journey, G_DATAQ, now)
        elif state == "BUS_WAIT":  # kind == "bus"
            self._shift(journey, G_BUSQ, now)

    def arbiter_granted(self, kind: str, entry, now: int) -> None:
        """A queued state machine won arbitration: queueing ends, L2
        service begins."""
        sm = entry.payload
        request = getattr(sm, "request", None)
        if request is None:
            return
        journey = self._open.get(request.req_id)
        if journey is None:
            return
        state = sm.state.name
        if (
            (kind == "tag" and state in ("TAG_WAIT", "MISSTAG_WAIT"))
            or (kind == "data" and state == "DATA_WAIT")
            or (kind == "bus" and state == "BUS_WAIT")
        ):
            self._shift(journey, G_L2SVC, now)

    def mem_queued(self, request, now: int) -> None:
        """A read miss left the L2 for the below-L2 hierarchy."""
        journey = self._open.get(request.req_id)
        if journey is None:
            return
        self._shift(journey, G_DRAMQ, now)
        self._dram[(request.thread_id, request.line)] = request.req_id

    def dram_issued(self, tid: int, line: int, now: int) -> None:
        """DRAM device service began for a tracked read (resolved via
        the (thread, line) map — the channel carries no request)."""
        req_id = self._dram.pop((tid, line), None)
        if req_id is None:
            return
        journey = self._open.get(req_id)
        if journey is not None:
            self._shift(journey, G_DRAMSVC, now)

    def responded(self, request, now: int) -> None:
        """Critical word reached the core: the journey completes."""
        journey = self._open.pop(request.req_id, None)
        if journey is None:
            return
        journey.segments[journey.seg] += now - journey.mark
        self._dram.pop((request.thread_id, request.line), None)
        latency = now - journey.issued
        tid = request.thread_id
        self.stats.add(tid, latency, {
            "req_id": journey.req_id,
            "seq": journey.seq,
            "line": journey.line,
            "issued_cycle": journey.issued,
            "latency": latency,
            "segments": list(journey.segments),
        })

    # ----------------------- interval management --------------------- #

    def rebase(self, now: int) -> None:
        """Start the measurement interval at ``now`` (end of warmup):
        completed-request summaries reset; in-flight journeys keep their
        pre-rebase segments (a request straddling the boundary still
        conserves its full latency)."""
        self.stats.reset()
        self._base_cycle = now

    # ---------------------------- outputs ----------------------------- #

    def document(self, now: int) -> Dict:
        """Schema-tagged request-tracing document for cycle ``now``."""
        threads = []
        for tid in range(self.n_threads):
            exemplars = [
                {key: ex[key] for key in
                 ("seq", "line", "issued_cycle", "latency", "segments")}
                for ex in self.stats.exemplars(tid)
            ]
            threads.append({
                "loads": self.stats.loads(tid),
                "max": self.stats.maximum(tid),
                "quantiles": self.stats.quantiles(tid),
                "exemplars": exemplars,
            })
        doc = {
            "schema": REQUESTS_SCHEMA,
            "n_threads": self.n_threads,
            "segments": list(SEGMENTS),
            "exemplar_k": self.exemplar_k,
            "measured_cycles": now - self._base_cycle,
            "threads": threads,
        }
        if self.slo_rules:
            rules = []
            for rule in self.slo_rules:
                row = rule.to_dict()
                row["attainment"] = [
                    self.stats.attainment(tid, rule.threshold_cycles)
                    if rule.thread is None or rule.thread == tid else None
                    for tid in range(self.n_threads)
                ]
                rules.append(row)
            doc["slo"] = {"rules": rules}
        return doc

    def exemplar_trace_events(self) -> List[TraceEvent]:
        """Perfetto slices for the worst-k exemplar waterfalls: one
        ``X`` slice per non-zero segment on the thread's ``req.tN``
        track, flow-linked by req_id to the request's async lifecycle
        span on the simulated-cycle timeline."""
        events: List[TraceEvent] = []
        for tid in range(self.n_threads):
            track = f"req.t{tid}"
            for ex in self.stats.exemplars(tid):
                cursor = ex["issued_cycle"]
                events.append(TraceEvent(
                    ts=cursor, phase=PH_FLOW_START, category=CAT_REQUEST,
                    name="exemplar", track=track, tid=tid, id=ex["req_id"],
                ))
                for index, cycles in enumerate(ex["segments"]):
                    if not cycles:
                        continue
                    events.append(TraceEvent(
                        ts=cursor, phase=PH_COMPLETE, category=CAT_REQUEST,
                        name=SEGMENTS[index], track=track, tid=tid,
                        dur=cycles,
                        args={"req": ex["req_id"], "latency": ex["latency"]},
                    ))
                    cursor += cycles
                events.append(TraceEvent(
                    ts=cursor, phase=PH_FLOW_FINISH, category=CAT_REQUEST,
                    name="exemplar", track=f"t{tid}", tid=tid,
                    id=ex["req_id"],
                ))
        return events


# ---------------------------------------------------------------------- #
# Derived signals + offline verification (pure functions of documents).
# ---------------------------------------------------------------------- #

def slo_burn(doc: Optional[Dict]) -> Optional[float]:
    """Worst-case SLO burn rate across rules and threads: the achieved
    miss fraction over the budgeted miss fraction, so 1.0 means exactly
    on target and >1.0 means the error budget is burning too fast.
    Returns None when the document carries no evaluable SLO."""
    if not doc:
        return None
    rules = (doc.get("slo") or {}).get("rules")
    if not rules:
        return None
    worst = None
    for rule in rules:
        target = rule.get("target", 0.99)
        budget = 1.0 - target
        if budget <= 0:
            continue
        for attained in rule.get("attainment") or []:
            if attained is None:
                continue
            burn = (1.0 - attained) / budget
            if worst is None or burn > worst:
                worst = burn
    return worst


def verify_requests(payload: Dict) -> List[str]:
    """Re-check a request-tracing document offline; returns a list of
    human-readable errors (empty = valid).  The load-bearing invariants:
    quantiles are monotone, exemplar segments conserve exactly (sum ==
    latency), and attainment fractions stay inside [0, 1]."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["requests: not a JSON object"]
    if payload.get("schema") != REQUESTS_SCHEMA:
        errors.append(
            f"requests: schema {payload.get('schema')!r} != {REQUESTS_SCHEMA!r}"
        )
    if payload.get("segments") != list(SEGMENTS):
        errors.append(
            f"requests: segment taxonomy mismatch: {payload.get('segments')!r}"
        )
    n_threads = payload.get("n_threads")
    threads = payload.get("threads")
    if not isinstance(threads, list) or not isinstance(n_threads, int):
        errors.append("requests: missing threads/n_threads")
        return errors
    if len(threads) != n_threads:
        errors.append(f"requests: {len(threads)} rows for {n_threads} threads")
    names = [name for name, _ in QUANTILES]
    for tid, row in enumerate(threads):
        if not isinstance(row, dict):
            errors.append(f"requests: thread {tid} row malformed")
            continue
        loads = row.get("loads")
        quantiles = row.get("quantiles") or {}
        ordered = [quantiles.get(name) for name in names] + [row.get("max")]
        if loads:
            values = [v for v in ordered if v is not None]
            if len(values) != len(ordered):
                errors.append(f"requests: thread {tid} missing quantiles")
            elif any(a > b for a, b in zip(values, values[1:])):
                errors.append(
                    f"requests: thread {tid} quantiles not monotone: {values}"
                )
        exemplars = row.get("exemplars") or []
        if len(exemplars) > payload.get("exemplar_k", len(exemplars)):
            errors.append(f"requests: thread {tid} exemplars exceed k")
        for ex in exemplars:
            segments = ex.get("segments")
            if (not isinstance(segments, list)
                    or len(segments) != N_SEGMENTS
                    or any((not isinstance(v, int)) or v < 0
                           for v in segments)):
                errors.append(
                    f"requests: thread {tid} exemplar segments malformed"
                )
                continue
            if sum(segments) != ex.get("latency"):
                errors.append(
                    f"requests: thread {tid} exemplar segments sum to "
                    f"{sum(segments)}, latency is {ex.get('latency')} "
                    f"(conservation violated)"
                )
    for rule in (payload.get("slo") or {}).get("rules", []):
        for attained in rule.get("attainment") or []:
            if attained is None:
                continue
            if not 0.0 <= attained <= 1.0:
                errors.append(
                    f"requests: rule {rule.get('name')!r} attainment "
                    f"{attained} outside [0, 1]"
                )
    return errors


def write_requests(path, doc: Dict) -> None:
    """Write a request-tracing document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def render_requests(doc: Dict) -> List[str]:
    """Aligned text table for a request-tracing document (report cards,
    CLI summaries)."""
    lines = ["request latency (cycles since issue):",
             f"  {'thread':>6}  {'loads':>8}  {'p50':>7}  {'p95':>7}"
             f"  {'p99':>7}  {'p999':>7}  {'max':>7}"]
    for tid, row in enumerate(doc.get("threads", [])):
        quantiles = row.get("quantiles") or {}

        def cell(value):
            return "-" if value is None else str(value)

        lines.append(
            f"  {f't{tid}':>6}  {row.get('loads', 0):>8}"
            f"  {cell(quantiles.get('p50')):>7}  {cell(quantiles.get('p95')):>7}"
            f"  {cell(quantiles.get('p99')):>7}  {cell(quantiles.get('p999')):>7}"
            f"  {cell(row.get('max')):>7}"
        )
    for rule in (doc.get("slo") or {}).get("rules", []):
        cells = []
        for tid, attained in enumerate(rule.get("attainment") or []):
            if attained is None:
                continue
            cells.append(f"t{tid}={attained * 100:.2f}%")
        met = all(
            attained >= rule["target"]
            for attained in rule.get("attainment") or [] if attained is not None
        )
        lines.append(
            f"  slo {rule['name']} (<= {rule['threshold_cycles']} cycles, "
            f"target {rule['target'] * 100:g}%): "
            f"{'met' if met else 'MISSED'}  {' '.join(cells)}"
        )
    worst = []
    for tid, row in enumerate(doc.get("threads", [])):
        exemplars = row.get("exemplars") or []
        if exemplars:
            worst.append((tid, exemplars[0]))
    if worst:
        segments = doc.get("segments") or list(SEGMENTS)
        lines.append("  worst exemplar per thread:")
        for tid, ex in worst:
            waterfall = " ".join(
                f"{segments[i]}={v}" for i, v in enumerate(ex["segments"]) if v
            )
            lines.append(
                f"    t{tid} @{ex['issued_cycle']}: {ex['latency']} cycles"
                f"  [{waterfall}]"
            )
    return lines

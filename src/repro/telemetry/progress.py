"""Live progress reporting for the parallel experiment runner.

A :class:`ProgressReporter` receives per-point completion callbacks
from ``repro.experiments.parallel.run_points`` and prints one status
line per event: points done / total, percentage, smoothed ETA from the
observed completion rate, and the result-cache hit rate so far.  It
writes to any text stream (stderr by default) and keeps no other state,
so it is safe to reuse across the several ``run_points`` batches one
experiment may issue.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressReporter:
    """Prints one line per completed simulation point."""

    def __init__(self, stream: Optional[TextIO] = None, label: str = ""):
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self._started = 0.0

    def begin(self, total: int, label: str = "") -> None:
        """Start (or extend) a batch of ``total`` points."""
        if label:
            self.label = label
        if self.done == self.total:
            # Fresh batch: restart the rate estimate.
            self.total = self.done = self.cache_hits = 0
            self._started = time.monotonic()
        self.total += total

    def point_done(self, cached: bool = False) -> None:
        self.done += 1
        if cached:
            self.cache_hits += 1
        self._report()

    def stale_worker(self, worker: int, age: float) -> None:
        """Warn that a worker's heartbeat went stale (live plane only).

        Called by :meth:`repro.telemetry.server.LiveRun.check_stale`
        when a worker has not flushed a window within the staleness
        threshold — a hung or stopped process, or a point so large one
        window outlasts the threshold.
        """
        prefix = f"{self.label}: " if self.label else ""
        self.stream.write(
            f"{prefix}WARNING: worker {worker} heartbeat stale "
            f"({age:.1f}s without a window flush)\n"
        )
        self.stream.flush()

    def _eta_seconds(self) -> Optional[float]:
        if not self.done or self.done >= self.total:
            return None
        elapsed = time.monotonic() - self._started
        return elapsed / self.done * (self.total - self.done)

    def _report(self) -> None:
        pct = 100.0 * self.done / self.total if self.total else 100.0
        eta = self._eta_seconds()
        eta_text = f"ETA {eta:5.1f}s" if eta is not None else "done   "
        prefix = f"{self.label}: " if self.label else ""
        self.stream.write(
            f"{prefix}[{self.done}/{self.total}] {pct:5.1f}% | {eta_text}"
            f" | cache {self.cache_hits}/{self.done} hits\n"
        )
        self.stream.flush()

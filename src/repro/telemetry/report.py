"""Per-run QoS report cards: one page answering "did every thread get
what it was promised, and if not, who took it?".

Pulls together the three observability layers this package provides —
metrics snapshots (:mod:`repro.telemetry.metrics`), interference
matrices (:mod:`repro.telemetry.attribution`), and the QoSMonitor's
window audit — plus the paper's headline metrics (harmonic-mean and
minimum normalized IPC, via the same :func:`repro.core.qos.summarize`
the analysis pipeline uses, so the numbers agree bit for bit).

Deliberately imports nothing from ``repro.system`` — the telemetry
package must stay importable from inside the system layer.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.core.qos import QoSOutcome, summarize

REPORT_SCHEMA = "repro.report/1"


def build_report_card(
    n_threads: int,
    arbiter: str,
    metrics: Optional[Dict] = None,
    attribution: Optional[Dict] = None,
    conformance: Optional[Dict] = None,
    targets: Optional[Sequence[float]] = None,
    ipcs: Optional[Sequence[float]] = None,
    run_label: str = "",
    requests: Optional[Dict] = None,
) -> Dict:
    """Assemble the JSON report card.

    ``ipcs`` defaults to the metrics snapshot's measured IPCs (which
    match the :class:`SimulationResult` bit for bit); ``targets`` —
    per-thread private-machine IPCs — unlock the normalized headline.
    ``requests`` is an optional ``repro.requests/1`` document (or is
    pulled from the metrics snapshot when embedded there); it adds the
    tail-latency columns and the SLO-attainment audit.
    """
    if ipcs is None and metrics is not None:
        ipcs = metrics.get("ipcs")
    if requests is None and metrics is not None:
        requests = metrics.get("requests")
    card: Dict = {
        "schema": REPORT_SCHEMA,
        "run": run_label,
        "n_threads": n_threads,
        "arbiter": arbiter,
    }
    if metrics is not None:
        card["measured_cycles"] = metrics.get("measured_cycles", 0)
        card["fairness"] = metrics.get("fairness", {})
        card["metrics_window"] = metrics.get("window")
        if metrics.get("cpi_stacks"):
            card["cpi_stacks"] = metrics["cpi_stacks"]
    received = attribution.get("interference_received") if attribution else None
    caused = attribution.get("interference_caused") if attribution else None
    per_window = conformance.get("per_thread") if conformance else None
    request_rows = requests.get("threads") if requests else None
    slo_rules = (requests.get("slo") or {}).get("rules") if requests else None

    threads: List[Dict] = []
    outcomes: List[QoSOutcome] = []
    for tid in range(n_threads):
        row: Dict = {"thread": tid}
        if ipcs is not None:
            row["ipc"] = ipcs[tid]
        if request_rows is not None and tid < len(request_rows):
            quantiles = request_rows[tid].get("quantiles") or {}
            row["p99_latency"] = quantiles.get("p99")
        if slo_rules:
            attained = [
                rule["attainment"][tid]
                for rule in slo_rules
                if rule.get("attainment") and tid < len(rule["attainment"])
                and rule["attainment"][tid] is not None
            ]
            if attained:
                # The thread's tightest margin across all matching rules.
                row["slo_attainment"] = min(attained)
        if targets is not None and ipcs is not None:
            outcome = QoSOutcome(thread_id=tid, ipc=ipcs[tid],
                                 target_ipc=targets[tid])
            outcomes.append(outcome)
            row["target_ipc"] = targets[tid]
            row["normalized_ipc"] = outcome.normalized
            row["meets_target"] = outcome.meets_target()
        if received is not None:
            row["interference_received"] = received[tid]
            row["interference_caused"] = caused[tid]
        if per_window is not None:
            row["conformance_pct"] = per_window[tid]["conformance_pct"]
        threads.append(row)
    card["threads"] = threads
    if requests is not None:
        card["requests"] = requests
    if outcomes:
        try:
            hmean, minimum = summarize(outcomes)
        except ValueError:
            # A fully starved thread has normalized IPC 0 and no defined
            # harmonic mean; the per-thread table still shows the MISS.
            card["headline_error"] = (
                "zero normalized IPC — a thread was fully starved")
        else:
            card["headline"] = {"harmonic_mean": hmean,
                                "min_normalized": minimum}
    if conformance is not None:
        card["qos"] = conformance
    if attribution is not None:
        card["attribution"] = {
            "resources": attribution.get("resources", {}),
            "dropped_waits": attribution.get("dropped_waits", 0),
        }
    return card


def merge_report_cards(cards: Sequence[Dict], label: str = "") -> Dict:
    """An experiment-level card: per-run cards plus fleet headline
    extremes (worst min-normalized run, any QoS violations anywhere)."""
    live = [card for card in cards if card]
    fleet: Dict = {
        "schema": "repro.report-fleet/1",
        "run": label,
        "cards": list(live),
        "runs": len(live),
    }
    minima = [card["headline"]["min_normalized"]
              for card in live if "headline" in card]
    if minima:
        fleet["worst_min_normalized"] = min(minima)
    violations = sum(card.get("qos", {}).get("violations", 0)
                     for card in live)
    fleet["violations"] = violations
    fleet["clean"] = violations == 0
    p99s = [row["p99_latency"] for card in live
            for row in card.get("threads", ())
            if row.get("p99_latency") is not None]
    if p99s:
        fleet["worst_p99_latency"] = max(p99s)
    attainments = [row["slo_attainment"] for card in live
                   for row in card.get("threads", ())
                   if row.get("slo_attainment") is not None]
    if attainments:
        fleet["worst_slo_attainment"] = min(attainments)
    return fleet


# ---------------------------------------------------------------------- #
# Rendering.
# ---------------------------------------------------------------------- #

def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width)
                     for cell, width in zip(cells, widths))


def _thread_table(card: Dict) -> List[str]:
    headers = ["thread", "ipc"]
    sample = card["threads"][0] if card["threads"] else {}
    if "target_ipc" in sample:
        headers += ["target", "norm", "qos"]
    if "conformance_pct" in sample:
        headers += ["conf%"]
    if "p99_latency" in sample:
        headers += ["p99(cyc)"]
    if "slo_attainment" in sample:
        headers += ["slo%"]
    if "interference_received" in sample:
        headers += ["recv(cyc)", "caused(cyc)"]
    rows = [headers]
    for row in card["threads"]:
        cells = [f"t{row['thread']}", f"{row.get('ipc', 0.0):.4f}"]
        if "target_ipc" in row:
            cells += [
                f"{row['target_ipc']:.4f}",
                f"{row['normalized_ipc']:.4f}",
                "met" if row["meets_target"] else "MISS",
            ]
        if "conformance_pct" in row:
            cells += [f"{row['conformance_pct']:.1f}"]
        if "p99(cyc)" in headers:
            value = row.get("p99_latency")
            cells += ["-" if value is None else str(value)]
        if "slo%" in headers:
            attained = row.get("slo_attainment")
            cells += ["-" if attained is None else f"{attained * 100:.2f}"]
        if "interference_received" in row:
            cells += [str(row["interference_received"]),
                      str(row["interference_caused"])]
        rows.append(cells)
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(headers))]
    return [_format_row(row, widths) for row in rows]


def _heat_table(resources: Dict, n_threads: int) -> List[str]:
    lines = []
    for name, data in resources.items():
        matrix = data["matrix"]
        interference = sum(
            matrix[victim][aggressor]
            for victim in range(n_threads)
            for aggressor in range(n_threads)
            if victim != aggressor
        )
        if not interference:
            continue
        lines.append(f"  {name} (victim rows x aggressor columns, cycles):")
        header = ["victim\\aggr"] + [f"t{tid}" for tid in range(n_threads)]
        rows = [header]
        for victim in range(n_threads):
            rows.append([f"t{victim}"]
                        + [str(value) for value in matrix[victim]])
        widths = [max(len(row[col]) for row in rows)
                  for col in range(len(header))]
        lines.extend("    " + _format_row(row, widths) for row in rows)
    if not lines:
        lines.append("  (no cross-thread interference recorded)")
    return lines


def _stack_lines(stacks: Dict) -> List[str]:
    """Per-thread CPI-stack summary: the dominant buckets, cycles each.

    Every cycle is in exactly one bucket (the conservation invariant),
    so the listed bucket cycles of one thread sum to its measured
    cycles; buckets that stayed at zero are elided.
    """
    buckets = stacks.get("buckets", ())
    lines = ["cycle accounting (cycles per bucket; buckets sum to "
             f"{stacks.get('measured_cycles', 0)} measured cycles):"]
    for tid, row in enumerate(stacks.get("threads", ())):
        parts = [f"{name} {value}"
                 for name, value in sorted(zip(buckets, row),
                                           key=lambda kv: -kv[1])
                 if value]
        lines.append(f"  t{tid}: " + (", ".join(parts) if parts else "(idle)"))
    return lines


def render_report_card(card: Dict) -> str:
    """Terminal rendering of one run's report card."""
    title = card.get("run") or "simulation"
    lines = [
        f"QoS report card — {title} "
        f"({card['n_threads']} threads, {card['arbiter']} arbiter)",
        "=" * 64,
    ]
    headline = card.get("headline")
    if headline:
        lines.append(
            f"headline: HM normalized IPC {headline['harmonic_mean']:.4f}, "
            f"min {headline['min_normalized']:.4f}"
        )
    fairness = card.get("fairness") or {}
    if fairness:
        extra = ""
        if "jain_min_window" in fairness:
            extra = f" (worst window {fairness['jain_min_window']:.4f})"
        lines.append(
            f"fairness: Jain index {fairness['jain_overall']:.4f}{extra}")
    qos = card.get("qos")
    if qos:
        status = "CLEAN" if not qos.get("violations") else "VIOLATED"
        lines.append(
            f"guarantee audit: {status} — {qos.get('violations', 0)} "
            f"violations over {qos.get('windows_checked', 0)} windows"
        )
    lines.append("")
    lines.extend(_thread_table(card))
    stacks = card.get("cpi_stacks")
    if stacks:
        lines.append("")
        lines.extend(_stack_lines(stacks))
    requests = card.get("requests")
    if requests:
        from repro.telemetry.requests import render_requests
        lines.append("")
        lines.extend(render_requests(requests))
    attribution = card.get("attribution")
    if attribution:
        lines.append("")
        lines.append("interference attribution:")
        lines.extend(
            _heat_table(attribution.get("resources", {}),
                        card["n_threads"]))
        dropped = attribution.get("dropped_waits", 0)
        if dropped:
            lines.append(f"  ({dropped} in-flight waits dropped at run end)")
    return "\n".join(lines)


def render_fleet_card(fleet: Dict) -> str:
    """Terminal rendering of an experiment-level fleet card."""
    lines = [
        f"QoS fleet report — {fleet.get('run') or 'experiment'} "
        f"({fleet.get('runs', 0)} runs)",
        "=" * 64,
    ]
    if "worst_min_normalized" in fleet:
        lines.append(
            f"worst min normalized IPC across runs: "
            f"{fleet['worst_min_normalized']:.4f}"
        )
    status = "CLEAN" if fleet.get("clean") else "VIOLATED"
    lines.append(
        f"guarantee audit: {status} — {fleet.get('violations', 0)} "
        f"violations total"
    )
    if "worst_p99_latency" in fleet:
        lines.append(
            f"worst p99 load latency across runs: "
            f"{fleet['worst_p99_latency']} cycles"
        )
    if "worst_slo_attainment" in fleet:
        lines.append(
            f"worst SLO attainment across runs: "
            f"{fleet['worst_slo_attainment'] * 100:.2f}%"
        )
    decomposition = fleet.get("slowdown_decomposition")
    if decomposition:
        from repro.telemetry.cycles import render_decomposition
        lines.append("")
        lines.extend(render_decomposition(decomposition))
    return "\n".join(lines)


def write_report(card: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(card, handle, indent=2)
        handle.write("\n")

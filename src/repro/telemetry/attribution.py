"""Interference attribution: who delayed whom at each shared resource.

The paper's Figures 2-3 argue that cross-thread interference at shared-
cache arbiters is invisible to conventional counters; a QoS scheme is
only auditable if every cycle a thread spent *waiting* can be charged to
the thread whose grant made it wait.  :class:`InterferenceAttributor`
does exactly that, purely from the ``arbiter`` enqueue/grant events
already on the telemetry bus — no new instrumentation in the engine.

Mechanics.  Each ``grant`` event carries the granted thread and the real
service duration; because a resource's arbiter is only consulted while
its :class:`~repro.common.stats.UtilizationMeter` is free, grant busy
intervals on one track never overlap.  The attributor mirrors each
track's waiting set: an ``enqueue`` event opens a wait, and every grant
charges its busy interval ``[ts, ts+dur)`` to the *granted* (aggressor)
thread on every other entry still waiting.  An entry enqueued while the
resource is busy is pre-charged the remainder of the in-progress
interval.  When the waiting entry is itself granted, its wait closes and
its accumulated per-aggressor charges move into the matrix.

Conservation invariant (tested property-based over random schedules):
for every (resource, victim) pair,

    queueing_delay == sum_over_aggressors(matrix[victim]) + idle_wait

where ``idle_wait`` is wait spent while the resource sat idle (nobody to
blame — scheduling latency, not interference).  Waits still open when
the run ends are dropped from both sides, keeping the identity exact.

Grant events do not say *which* buffered entry was served, so waits are
matched FIFO per (track, thread).  Intra-thread reordering (the
Read-over-Write optimization) can permute the matching, but per-thread
delay totals are matching-invariant (``sum(grant ts) - sum(enqueue
ts)``), and charges are computed from the same matched windows, so the
invariant and the totals stay exact.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .events import CAT_ARBITER, TraceEvent

ATTRIBUTION_SCHEMA = "repro.attribution/1"


class _Wait:
    """One entry's time in arbitration: enqueue ts + accrued charges."""

    __slots__ = ("enqueued", "charges")

    def __init__(self, enqueued: int) -> None:
        self.enqueued = enqueued
        self.charges: Dict[int, int] = {}


class _TrackState:
    """Waiting set + busy interval for one resource track."""

    __slots__ = ("waiting", "busy_until", "busy_owner")

    def __init__(self, n_threads: int) -> None:
        self.waiting: List[Deque[_Wait]] = [deque() for _ in range(n_threads)]
        self.busy_until = 0
        self.busy_owner = -1


class InterferenceAttributor:
    """Bus sink building per-resource interference matrices.

    ``matrix[track][victim][aggressor]`` counts the waiting cycles
    ``victim`` spent on ``track`` while it was busy serving a grant to
    ``aggressor`` (the diagonal is self-interference: waiting behind
    one's own earlier grant).
    """

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("attribution needs at least one thread")
        self.n_threads = n_threads
        self._tracks: Dict[str, _TrackState] = {}
        self.matrix: Dict[str, List[List[int]]] = {}
        self.delay: Dict[str, List[int]] = {}      # closed-wait queueing delay
        self.idle_wait: Dict[str, List[int]] = {}  # wait with nobody to blame
        self.waits_closed: Dict[str, List[int]] = {}
        self.dropped_waits = 0  # open at finish(); excluded from everything

    def _track(self, name: str) -> _TrackState:
        state = self._tracks.get(name)
        if state is None:
            state = self._tracks[name] = _TrackState(self.n_threads)
            n = self.n_threads
            self.matrix[name] = [[0] * n for _ in range(n)]
            self.delay[name] = [0] * n
            self.idle_wait[name] = [0] * n
            self.waits_closed[name] = [0] * n
        return state

    # ------------------------------------------------------------------ #
    # TraceSink protocol.
    # ------------------------------------------------------------------ #

    def emit(self, event: TraceEvent) -> None:
        if event.category != CAT_ARBITER:
            return
        state = self._track(event.track)
        tid = event.tid
        if event.name == "enqueue":
            wait = _Wait(event.ts)
            if event.ts < state.busy_until and state.busy_owner >= 0:
                # Born into an in-progress busy interval: pre-charge the
                # remainder to its owner now, since the grant event that
                # opened the interval has already been processed.
                wait.charges[state.busy_owner] = state.busy_until - event.ts
            state.waiting[tid].append(wait)
        elif event.name == "grant":
            queue = state.waiting[tid]
            if queue:
                self._close_wait(event.track, tid, queue.popleft(), event.ts)
            # This grant's busy interval delays everyone still waiting.
            if event.dur > 0:
                end = event.ts + event.dur
                for waits in state.waiting:
                    for wait in waits:
                        wait.charges[tid] = (
                            wait.charges.get(tid, 0) + event.dur
                        )
                state.busy_until = end
                state.busy_owner = tid

    def _close_wait(
        self, track: str, tid: int, wait: _Wait, granted_at: int
    ) -> None:
        delay = granted_at - wait.enqueued
        charged = 0
        row = self.matrix[track][tid]
        for aggressor, cycles in wait.charges.items():
            row[aggressor] += cycles
            charged += cycles
        self.delay[track][tid] += delay
        self.idle_wait[track][tid] += delay - charged
        self.waits_closed[track][tid] += 1

    def finish(self, end: int) -> None:
        """Drop still-open waits (their delay is not yet defined)."""
        for state in self._tracks.values():
            for waits in state.waiting:
                self.dropped_waits += len(waits)
                waits.clear()

    # ------------------------------------------------------------------ #
    # Queries and export.
    # ------------------------------------------------------------------ #

    def conservation_errors(self) -> List[str]:
        """Violations of the charge-conservation identity (expect [])."""
        errors = []
        for track, matrix in self.matrix.items():
            for tid in range(self.n_threads):
                attributed = sum(matrix[tid]) + self.idle_wait[track][tid]
                observed = self.delay[track][tid]
                if attributed != observed:
                    errors.append(
                        f"{track} thread {tid}: attributed {attributed} != "
                        f"observed queueing delay {observed}"
                    )
                if self.idle_wait[track][tid] < 0:
                    errors.append(
                        f"{track} thread {tid}: negative idle wait "
                        f"{self.idle_wait[track][tid]}"
                    )
        return errors

    @staticmethod
    def resource_class(track: str) -> str:
        """Fold per-bank tracks into resource classes: "bank3.data" ->
        "data"; tracks without a bank prefix name themselves."""
        head, dot, tail = track.partition(".")
        if dot and head.startswith("bank"):
            return tail
        return track

    def by_resource_class(self) -> Dict[str, List[List[int]]]:
        """Matrices summed over banks of the same resource class."""
        folded: Dict[str, List[List[int]]] = {}
        for track, matrix in self.matrix.items():
            name = self.resource_class(track)
            into = folded.get(name)
            if into is None:
                folded[name] = [list(row) for row in matrix]
            else:
                for victim in range(self.n_threads):
                    for aggressor in range(self.n_threads):
                        into[victim][aggressor] += matrix[victim][aggressor]
        return folded

    def interference_received(self) -> List[int]:
        """Per-victim cycles lost to *other* threads, over all resources."""
        totals = [0] * self.n_threads
        for matrix in self.matrix.values():
            for victim in range(self.n_threads):
                for aggressor in range(self.n_threads):
                    if aggressor != victim:
                        totals[victim] += matrix[victim][aggressor]
        return totals

    def interference_caused(self) -> List[int]:
        """Per-aggressor cycles inflicted on *other* threads."""
        totals = [0] * self.n_threads
        for matrix in self.matrix.values():
            for victim in range(self.n_threads):
                for aggressor in range(self.n_threads):
                    if aggressor != victim:
                        totals[aggressor] += matrix[victim][aggressor]
        return totals

    def snapshot(self) -> Dict:
        """JSON-able form, folded by resource class (per-track detail
        under ``tracks``)."""
        classes = self.by_resource_class()

        def fold(per_track: Dict[str, List[int]]) -> Dict[str, List[int]]:
            out: Dict[str, List[int]] = {}
            for track, row in per_track.items():
                name = self.resource_class(track)
                into = out.get(name)
                if into is None:
                    out[name] = list(row)
                else:
                    for tid in range(self.n_threads):
                        into[tid] += row[tid]
            return out

        delay = fold(self.delay)
        idle = fold(self.idle_wait)
        return {
            "schema": ATTRIBUTION_SCHEMA,
            "n_threads": self.n_threads,
            "resources": {
                name: {
                    "matrix": classes[name],
                    "queueing_delay": delay[name],
                    "idle_wait": idle[name],
                }
                for name in sorted(classes)
            },
            "tracks": {
                track: {
                    "matrix": self.matrix[track],
                    "queueing_delay": self.delay[track],
                    "idle_wait": self.idle_wait[track],
                    "waits_closed": self.waits_closed[track],
                }
                for track in sorted(self.matrix)
            },
            "interference_received": self.interference_received(),
            "interference_caused": self.interference_caused(),
            "dropped_waits": self.dropped_waits,
        }


def merge_attribution(snapshots: List[Optional[Dict]]) -> Optional[Dict]:
    """Sum attribution snapshots (cross-process experiment merge).

    Thread ids align positionally across points; snapshots from smaller
    runs (e.g. an experiment's private-machine target points) pad the
    missing threads with zeros.
    """
    live = [snap for snap in snapshots if snap]
    if not live:
        return None
    n = max(snap["n_threads"] for snap in live)
    out: Dict = {
        "schema": ATTRIBUTION_SCHEMA,
        "n_threads": n,
        "resources": {},
        "tracks": {},
        "interference_received": [0] * n,
        "interference_caused": [0] * n,
        "dropped_waits": 0,
    }

    def add_rows(into: List, rows: List) -> None:
        for index, value in enumerate(rows):
            if isinstance(value, list):
                add_rows(into[index], value)
            else:
                into[index] += value

    for snap in live:
        for section in ("resources", "tracks"):
            for name, data in snap.get(section, {}).items():
                into = out[section].setdefault(name, {})
                for key, value in data.items():
                    if not isinstance(value, list):
                        continue
                    if key not in into:
                        into[key] = (
                            [[0] * n for _ in range(n)]
                            if value and isinstance(value[0], list)
                            else [0] * n
                        )
                    add_rows(into[key], value)
        add_rows(out["interference_received"],
                 snap.get("interference_received", []))
        add_rows(out["interference_caused"],
                 snap.get("interference_caused", []))
        out["dropped_waits"] += snap.get("dropped_waits", 0)
    return out

"""``repro top`` — a live terminal dashboard over the telemetry server.

Connects to a ``--serve`` endpoint (see :mod:`repro.telemetry.server`)
and renders, refreshed as windows flush: per-thread IPC and
normalized-vs-target QoS conformance, per-resource utilization,
arbiter queue-depth high-water marks, and the current top
victim×aggressor interference pair.  Pure stdlib — plain ANSI escapes
when stdout is a TTY (no curses), one log line per refresh otherwise,
so it pipes cleanly into files and CI logs.

Usage::

    python -m repro.experiments fig10 --jobs 4 --serve 9108 &
    python -m repro top --url http://127.0.0.1:9108

The renderer is a pure function of the two JSON documents the server
serves (``/snapshot`` + ``/healthz``), so it is unit-testable without a
socket.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

CLEAR = "\x1b[H\x1b[2J"  # cursor home + clear screen


# ---------------------------------------------------------------------- #
# Snapshot digestion (pure helpers).
# ---------------------------------------------------------------------- #

def _per_point(snapshot: Dict) -> List[Dict]:
    if snapshot.get("schema", "").startswith("repro.metrics-aggregate"):
        return list(snapshot.get("per_point", ()))
    return [snapshot] if snapshot else []


def _active_point(points: List[Dict]) -> Tuple[Optional[int], Optional[Dict]]:
    """The highest-indexed point with data — the most recently started."""
    if not points:
        return None, None
    return len(points) - 1, points[-1]


def top_interference_pair(
    points: List[Dict],
) -> Optional[Tuple[str, int, int, int]]:
    """(resource, victim, aggressor, cycles) of the worst off-diagonal
    interference cell across every point's attribution matrices."""
    best: Optional[Tuple[str, int, int, int]] = None
    for point in points:
        attribution = point.get("attribution") or {}
        for resource, data in (attribution.get("resources") or {}).items():
            for victim, row in enumerate(data.get("matrix", ())):
                for aggressor, cycles in enumerate(row):
                    if victim == aggressor or not cycles:
                        continue
                    if best is None or cycles > best[3]:
                        best = (resource, victim, aggressor, cycles)
    return best


def _last(series) -> float:
    return series[-1] if series else 0.0


def _thread_rows(point: Dict) -> List[str]:
    n = point.get("n_threads", 0)
    series = point.get("series", {})
    ipc_series = series.get("ipc")
    targets = point.get("baseline_ipcs")
    requests = point.get("requests") or {}
    request_rows = requests.get("threads")
    header = "  thread   ipc(now)   ipc(run)"
    if targets:
        header += "     target       norm  qos"
    if request_rows:
        header += "   p99(cyc)"
    rows = [header]
    for tid in range(n):
        now_ipc = _last(ipc_series[tid]) if ipc_series else 0.0
        run_ipc = (point.get("ipcs") or [0.0] * n)[tid]
        row = f"  t{tid:<6} {now_ipc:>8.4f}  {run_ipc:>9.4f}"
        if targets:
            target = targets[tid]
            norm = run_ipc / target if target > 0 else 0.0
            verdict = "met" if norm >= 1.0 else "LOW"
            row += f"  {target:>9.4f}  {norm:>9.4f}  {verdict:>3}"
        if request_rows:
            p99 = None
            if tid < len(request_rows):
                p99 = (request_rows[tid].get("quantiles") or {}).get("p99")
            row += f"  {'-' if p99 is None else p99:>9}"
        rows.append(row)
    return rows


def _utilization_rows(point: Dict, limit: int = 8) -> List[str]:
    series = point.get("series", {})
    utilization = series.get("utilization") or {}
    queue_max = series.get("queue_depth_max") or {}
    if not utilization and not queue_max:
        return ["  (no window series yet)"]
    rows = ["  resource            util(now)  queue-hwm"]
    tracks = sorted(set(utilization) | set(queue_max))
    for track in tracks[:limit]:
        util = _last(utilization.get(track, ()))
        hwm = max(queue_max.get(track, ()), default=0)
        bar = "#" * max(0, min(10, round(util * 10)))
        rows.append(f"  {track:<18} {util:>8.0%} {bar:<10} {hwm:>6}")
    if len(tracks) > limit:
        rows.append(f"  ... {len(tracks) - limit} more tracks")
    return rows


#: One glyph per CPI-stack bucket for the stacked per-thread bar.
_STACK_GLYPHS = {
    "base": "#", "idle": ".", "store_buffer": "s", "mshr": "m",
    "l1_transit": "x", "bank_conflict": "c", "l2_tag_queue": "t",
    "l2_service": "L", "l2_data_queue": "d", "l2_bus_queue": "u",
    "dram_queue": "q", "dram_service": "D",
}


def _stack_bar(row: List[int], total: int, width: int) -> str:
    """A ``width``-character stacked bar, largest-remainder rounded so
    the glyph counts always fill the bar exactly."""
    if total <= 0 or width <= 0:
        return ""
    quotas = [value * width / total for value in row]
    cells = [int(quota) for quota in quotas]
    spare = width - sum(cells)
    order = sorted(range(len(row)),
                   key=lambda i: quotas[i] - cells[i], reverse=True)
    for i in order:
        if spare <= 0:
            break
        if row[i]:
            cells[i] += 1
            spare -= 1
    glyphs = list(_STACK_GLYPHS.values())
    return "".join(
        (glyphs[i] if i < len(glyphs) else "?") * count
        for i, count in enumerate(cells)
    )


def _stack_rows(point: Dict, width: Optional[int] = None) -> List[str]:
    """Per-thread stacked CPI bars from an embedded cpi_stacks document."""
    stacks = point.get("cpi_stacks")
    if not stacks:
        return []
    buckets = stacks.get("buckets", ())
    threads = stacks.get("threads", ())
    measured = stacks.get("measured_cycles", 0)
    instructions = point.get("instructions") or []
    bar_width = 40 if width is None else max(10, min(40, width - 26))
    used = [False] * len(buckets)
    for row in threads:
        for i, value in enumerate(row):
            used[i] = used[i] or bool(value)
    legend = " ".join(
        f"{_STACK_GLYPHS.get(name, '?')}={name}"
        for i, name in enumerate(buckets) if used[i]
    )
    rows = [f"  cpi stack ({measured} cycles/thread)  {legend}"]
    for tid, row in enumerate(threads):
        insts = instructions[tid] if tid < len(instructions) else 0
        cpi = measured / insts if insts else float("inf")
        bar = _stack_bar(list(row), measured, bar_width)
        rows.append(f"  t{tid:<3} |{bar:<{bar_width}}| cpi {cpi:>8.3f}")
    return rows


def _clip(lines: List[str], width: Optional[int]) -> List[str]:
    """Hard-wrap protection: a frame line longer than the terminal would
    wrap and shear every subsequent row, so clip instead."""
    if width is None:
        return lines
    return [line if len(line) <= width else line[:width] for line in lines]


def render(snapshot: Dict, health: Dict,
           width: Optional[int] = None) -> str:
    """One dashboard frame from the server's two JSON documents.

    ``width`` (the terminal's column count) clips every line so narrow
    terminals never wrap mid-frame; ``None`` renders unclipped.
    """
    points = _per_point(snapshot or {})
    status = health.get("status", "?")
    done = health.get("points", {}).get("done", 0)
    total = health.get("points", {}).get("total", 0)
    workers = health.get("workers", {})
    ages = [w.get("heartbeat_age_s", 0.0) for w in workers.values()]
    stale = health.get("stale_workers") or []
    lines = [
        f"repro top — {health.get('run') or 'run'} [{status.upper()}]  "
        f"points {done}/{total}  workers {len(workers)}"
        + (f" (max heartbeat age {max(ages):.1f}s)" if ages else "")
        + (f"  STALE: {stale}" if stale else ""),
        f"violations {health.get('violations', 0)}  "
        f"last window {health.get('last_window_age_s')}s ago  "
        f"windows merged over {len(points)} point(s)",
        "",
    ]
    index, point = _active_point(points)
    if point is None:
        lines.append("waiting for the first window flush...")
        return "\n".join(_clip(lines, width)) + "\n"
    lines.append(f"point {index} (threads: {point.get('n_threads')}, "
                 f"arbiter: {point.get('arbiter', '?')})")
    lines.extend(_thread_rows(point))
    lines.append("")
    lines.extend(_utilization_rows(point))
    stacks = _stack_rows(point, width)
    if stacks:
        lines.append("")
        lines.extend(stacks)
    pair = top_interference_pair(points)
    lines.append("")
    if pair is not None:
        resource, victim, aggressor, cycles = pair
        lines.append(f"top interference: {resource}: t{victim} <- "
                     f"t{aggressor} ({cycles} cycles)")
    else:
        lines.append("top interference: (none recorded)")
    return "\n".join(_clip(lines, width)) + "\n"


def render_fleet(snapshot: Dict, fleet_health: Dict,
                 width: Optional[int] = None) -> str:
    """One fleet dashboard frame from the aggregator's two documents
    (``/snapshot`` + ``/fleet/healthz``) — a worker roster on top of
    the usual merged-point view."""
    points = _per_point(snapshot or {})
    status = fleet_health.get("status", "?")
    workers = fleet_health.get("workers", {})
    unreachable = fleet_health.get("unreachable_workers") or []
    alerts = fleet_health.get("alerts") or {}
    lines = [
        f"repro top — fleet [{status.upper()}]  "
        f"workers {len(workers) - len(unreachable)}/{len(workers)} up  "
        f"points merged over {len(points)} point(s)"
        + (f"  ALERTS firing: {','.join(alerts['firing'])}"
           if alerts.get("firing") else ""),
    ]
    for index in sorted(workers, key=int):
        worker = workers[index]
        pts = worker.get("points") or {}
        extras = ""
        if pts:
            extras += f"  points {pts.get('done', 0)}/{pts.get('total', 0)}"
        resilience = worker.get("resilience") or {}
        if resilience.get("retries"):
            extras += f"  retries {resilience['retries']}"
        if worker.get("violations"):
            extras += f"  violations {worker['violations']}"
        lines.append(f"  w{index} {worker.get('status', '?'):<12} "
                     f"{worker.get('url', '?')}{extras}")
    lines.append("")
    index, point = _active_point(points)
    if point is None:
        lines.append("waiting for the first worker snapshot...")
        return "\n".join(_clip(lines, width)) + "\n"
    lines.append(f"latest point {index} (threads: {point.get('n_threads')}, "
                 f"arbiter: {point.get('arbiter', '?')})")
    lines.extend(_thread_rows(point))
    lines.append("")
    lines.extend(_utilization_rows(point))
    pair = top_interference_pair(points)
    lines.append("")
    if pair is not None:
        resource, victim, aggressor, cycles = pair
        lines.append(f"top interference: {resource}: t{victim} <- "
                     f"t{aggressor} ({cycles} cycles)")
    else:
        lines.append("top interference: (none recorded)")
    return "\n".join(_clip(lines, width)) + "\n"


def render_fleet_log_line(snapshot: Dict, fleet_health: Dict) -> str:
    """The non-TTY fleet form: one grep-able roster line per refresh."""
    points = _per_point(snapshot or {})
    workers = fleet_health.get("workers", {})
    unreachable = fleet_health.get("unreachable_workers") or []
    statuses = ",".join(
        f"w{index}={workers[index].get('status', '?')}"
        for index in sorted(workers, key=int)) or "-"
    alerts = fleet_health.get("alerts") or {}
    return (f"repro-fleet status={fleet_health.get('status', '?')} "
            f"up={len(workers) - len(unreachable)}/{len(workers)} "
            f"points={len(points)} [{statuses}] "
            f"alerts_fired={alerts.get('fired', 0)}")


def render_log_line(snapshot: Dict, health: Dict) -> str:
    """The non-TTY form: one grep-able status line per refresh."""
    points = _per_point(snapshot or {})
    done = health.get("points", {}).get("done", 0)
    total = health.get("points", {}).get("total", 0)
    pair = top_interference_pair(points)
    pair_text = (f"{pair[0]}:t{pair[1]}<-t{pair[2]}({pair[3]}cyc)"
                 if pair else "-")
    _, point = _active_point(points)
    ipcs = point.get("ipcs", []) if point else []
    ipc_text = ",".join(f"{value:.3f}" for value in ipcs) or "-"
    return (f"repro-top status={health.get('status', '?')} "
            f"points={done}/{total} "
            f"violations={health.get('violations', 0)} "
            f"ipc=[{ipc_text}] top={pair_text}")


# ---------------------------------------------------------------------- #
# HTTP client loop.
# ---------------------------------------------------------------------- #

def _fetch_json(url: str, timeout: float) -> Dict:
    """GET a JSON document; a 503 (degraded health) still has a body."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.load(response)
    except urllib.error.HTTPError as error:
        if error.code == 503:
            return json.load(error)
        raise


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live dashboard over a --serve telemetry endpoint.",
    )
    parser.add_argument("--url", required=True,
                        help="server base URL, e.g. http://127.0.0.1:9108")
    parser.add_argument("--fleet", action="store_true",
                        help="the URL is a fleet aggregator "
                             "(python -m repro fleet): render the whole "
                             "fleet from /snapshot + /fleet/healthz")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (default 1)")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit")
    parser.add_argument("--plain", action="store_true",
                        help="force log-line output even on a TTY")
    args = parser.parse_args(argv)
    base = args.url.rstrip("/")
    tty = sys.stdout.isatty() and not args.plain

    health_path = "/fleet/healthz" if args.fleet else "/healthz"

    while True:
        try:
            snapshot = _fetch_json(f"{base}/snapshot", timeout=5.0)
            health = _fetch_json(f"{base}{health_path}", timeout=5.0)
        except (urllib.error.URLError, OSError) as error:
            print(f"repro top: cannot reach {base}: {error}",
                  file=sys.stderr)
            return 1
        if args.fleet:
            frame = (render_fleet(snapshot, health,
                                  width=shutil.get_terminal_size().columns)
                     if tty else render_fleet_log_line(snapshot, health)
                     + "\n")
            sys.stdout.write(CLEAR + frame if tty else frame)
        elif tty:
            columns = shutil.get_terminal_size().columns
            sys.stdout.write(CLEAR + render(snapshot, health,
                                            width=columns))
        else:
            sys.stdout.write(render_log_line(snapshot, health) + "\n")
        sys.stdout.flush()
        if args.once or health.get("status") == "finished":
            if tty and health.get("status") == "finished":
                sys.stdout.write("run finished.\n")
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    raise SystemExit(main())

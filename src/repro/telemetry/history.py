"""Append-only run-history ledger: every observed run, one JSON line.

``repro history`` answers "what did this machine run, and how did it
go?" without re-opening per-run artifact files: each completed
experiment appends one self-contained entry — provenance manifest,
headline metrics (IPCs, fairness, measured cycles), and the per-point
CPI-stack documents — to a JSONL ledger (``--history PATH`` on the
experiment runner; default ``repro_history.jsonl``).  ``repro diff A B``
compares two entries bucket-by-bucket, the cycle-accounting view of
"what changed between these runs".

The ledger is append-only and crash-tolerant by construction: entries
are single ``write()`` calls of one line each, and readers skip
unparseable lines (a torn tail write) instead of failing.  Pure stdlib.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.telemetry.cycles import BUCKETS

HISTORY_SCHEMA = "repro.run-history/1"


# ---------------------------------------------------------------------- #
# Writing.
# ---------------------------------------------------------------------- #

def build_entry(
    exp_id: str,
    manifest: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    headline: Optional[Dict] = None,
) -> Dict:
    """One ledger entry: manifest + headline numbers + CPI stacks.

    ``metrics`` is the experiment's merged aggregate
    (``repro.metrics-aggregate/1``); only the headline slice of each
    point (IPCs, fairness, arbiter, stacks) is kept — the ledger is a
    run log, not an artifact store.
    """
    entry: Dict = {"schema": HISTORY_SCHEMA, "exp_id": exp_id}
    if manifest:
        entry["manifest"] = manifest
    if headline:
        entry["headline"] = headline
    if metrics:
        entry["points"] = metrics.get("points", 0)
        entry["totals"] = metrics.get("totals", {})
        per_point = []
        for snap in metrics.get("per_point", ()):
            kept = {
                "n_threads": snap.get("n_threads"),
                "arbiter": snap.get("arbiter"),
                "measured_cycles": snap.get("measured_cycles"),
                "instructions": snap.get("instructions"),
                "ipcs": snap.get("ipcs"),
                "fairness": snap.get("fairness"),
            }
            if snap.get("cpi_stacks"):
                kept["cpi_stacks"] = snap["cpi_stacks"]
            requests = snap.get("requests")
            if requests:
                # Tail-latency slice only: per-thread p99 (exact
                # streaming quantile), so ``repro diff`` can show tail
                # movement without storing the full document.
                kept["request_p99"] = [
                    (row.get("quantiles") or {}).get("p99")
                    for row in requests.get("threads", ())
                ]
            per_point.append(kept)
        entry["per_point"] = per_point
    return entry


def append_entry(path: str, entry: Dict) -> None:
    """Append one entry as a single line (crash leaves prior lines whole)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True, default=repr) + "\n")


# ---------------------------------------------------------------------- #
# Reading.
# ---------------------------------------------------------------------- #

def read_history(path: str) -> List[Dict]:
    """Every parseable entry, oldest first; torn/corrupt lines skipped."""
    entries: List[Dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail write; the ledger stays usable
                if isinstance(entry, dict):
                    entries.append(entry)
    except FileNotFoundError:
        return []
    return entries


def _entry_stacks(entry: Dict) -> Dict[str, List[int]]:
    """Summed bucket cycles per arbiter group across an entry's points."""
    groups: Dict[str, List[int]] = {}
    for snap in entry.get("per_point", ()):
        stacks = snap.get("cpi_stacks")
        if not stacks:
            continue
        name = str(snap.get("arbiter") or "?")
        if snap.get("n_threads") == 1:
            name = "solo"
        buckets = stacks.get("buckets", BUCKETS)
        row = groups.setdefault(name, [0] * len(BUCKETS))
        for thread in stacks.get("threads", ()):
            for i, bucket in enumerate(buckets):
                if bucket in BUCKETS:
                    row[BUCKETS.index(bucket)] += thread[i]
    return groups


def _entry_p99(entry: Dict) -> Dict[str, List]:
    """Worst per-thread p99 load latency per arbiter group."""
    groups: Dict[str, List] = {}
    for snap in entry.get("per_point", ()):
        p99s = snap.get("request_p99")
        if not p99s:
            continue
        name = str(snap.get("arbiter") or "?")
        if snap.get("n_threads") == 1:
            name = "solo"
        row = groups.setdefault(name, [None] * len(p99s))
        for tid, value in enumerate(p99s):
            if value is None or tid >= len(row):
                continue
            if row[tid] is None or value > row[tid]:
                row[tid] = value
    return groups


def render_history(entries: Sequence[Dict], last: int = 20) -> List[str]:
    """The ``repro history`` table: newest runs last, one line each."""
    if not entries:
        return ["(history is empty)"]
    shown = list(entries)[-last:]
    base = len(entries) - len(shown)
    rows = [["#", "exp", "points", "instructions", "cycles", "stacks",
             "kernel"]]
    for offset, entry in enumerate(shown):
        totals = entry.get("totals", {})
        manifest = entry.get("manifest") or {}
        stacked = sum(1 for snap in entry.get("per_point", ())
                      if snap.get("cpi_stacks"))
        rows.append([
            str(base + offset),
            str(entry.get("exp_id", "?")),
            str(entry.get("points", 0)),
            str(totals.get("instructions", 0)),
            str(totals.get("measured_cycles", 0)),
            str(stacked),
            str(manifest.get("kernel", "?")),
        ])
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(rows[0]))]
    return ["  ".join(cell.ljust(width)
                      for cell, width in zip(row, widths)).rstrip()
            for row in rows]


def diff_entries(a: Dict, b: Dict) -> Dict:
    """Bucket-by-bucket comparison of two ledger entries' CPI stacks.

    Groups each entry's stacks by arbiter (solo points apart) and, for
    every group present in both, reports per-bucket cycle deltas —
    "where did the cycles go between run A and run B?".
    """
    stacks_a = _entry_stacks(a)
    stacks_b = _entry_stacks(b)
    groups = sorted(set(stacks_a) & set(stacks_b))
    diff = {
        "schema": "repro.run-history-diff/1",
        "a": a.get("exp_id", "?"),
        "b": b.get("exp_id", "?"),
        "buckets": list(BUCKETS),
        "groups": {
            name: {
                "a": stacks_a[name],
                "b": stacks_b[name],
                "delta": [vb - va for va, vb
                          in zip(stacks_a[name], stacks_b[name])],
            }
            for name in groups
        },
    }
    p99_a = _entry_p99(a)
    p99_b = _entry_p99(b)
    tail = {}
    for name in sorted(set(p99_a) & set(p99_b)):
        rows_a, rows_b = p99_a[name], p99_b[name]
        tail[name] = {
            "a": rows_a,
            "b": rows_b,
            "delta": [
                vb - va if va is not None and vb is not None else None
                for va, vb in zip(rows_a, rows_b)
            ],
        }
    if tail:
        diff["p99"] = tail
    return diff


def render_diff(diff: Dict) -> List[str]:
    """Terminal table for ``repro diff``: one bucket per row."""
    lines = [f"cycle-stack diff: {diff.get('a')} -> {diff.get('b')}"]
    groups = diff.get("groups", {})
    if not groups:
        lines.append("  (no comparable CPI stacks in both entries; run "
                     "both with --cpi-stacks)")
        if not diff.get("p99"):
            return lines
    buckets = diff.get("buckets", BUCKETS)
    for name, data in groups.items():
        lines.append(f"  [{name}]")
        rows = [["bucket", "a(cyc)", "b(cyc)", "delta"]]
        for i, bucket in enumerate(buckets):
            va, vb = data["a"][i], data["b"][i]
            if not va and not vb:
                continue
            rows.append([bucket, str(va), str(vb), f"{vb - va:+d}"])
        widths = [max(len(row[col]) for row in rows)
                  for col in range(4)]
        lines.extend(
            "    " + "  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths))
            for row in rows
        )
    tail = diff.get("p99") or {}
    if tail:
        lines.append("  p99 load latency (cycles) per thread:")
        for name, data in tail.items():
            cells = []
            for tid, (va, vb) in enumerate(zip(data["a"], data["b"])):
                if va is None or vb is None:
                    continue
                cells.append(f"t{tid}: {va} -> {vb} ({vb - va:+d})")
            if cells:
                lines.append(f"    [{name}] " + "  ".join(cells))
    return lines


# ---------------------------------------------------------------------- #
# CLI (``repro history`` / ``repro diff``).
# ---------------------------------------------------------------------- #

DEFAULT_LEDGER = "repro_history.jsonl"


def _print_lines(lines) -> int:
    """Print a rendered table, treating a closed pipe (``| head``) as a
    normal early exit rather than a traceback."""
    try:
        for line in lines:
            print(line)
        return 0
    except BrokenPipeError:
        import os
        import sys
        # Swallow the interpreter-shutdown flush of the broken stdout.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def main_history(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro history",
        description="List the run-history ledger.",
    )
    parser.add_argument("--ledger", default=DEFAULT_LEDGER,
                        help=f"ledger path (default {DEFAULT_LEDGER})")
    parser.add_argument("--last", type=int, default=20,
                        help="show only the most recent N entries")
    args = parser.parse_args(argv)
    entries = read_history(args.ledger)
    return _print_lines(render_history(entries, last=args.last))


def main_diff(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro diff",
        description="Compare two ledger entries' CPI stacks "
                    "bucket-by-bucket.",
    )
    parser.add_argument("a", type=int, help="first entry index (repro history)")
    parser.add_argument("b", type=int, help="second entry index")
    parser.add_argument("--ledger", default=DEFAULT_LEDGER,
                        help=f"ledger path (default {DEFAULT_LEDGER})")
    args = parser.parse_args(argv)
    entries = read_history(args.ledger)
    for index in (args.a, args.b):
        if not 0 <= index < len(entries):
            print(f"no entry {index} in {args.ledger} "
                  f"({len(entries)} entries)")
            return 2
    return _print_lines(
        render_diff(diff_entries(entries[args.a], entries[args.b]))
    )

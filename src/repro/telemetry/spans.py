"""Wall-clock span tracing for the orchestration layer.

Simulated time has had first-class observability since PR 2 — every
arbiter grant and request lifecycle lands on a cycle-stamped track.
The *host* side of a run was invisible: point scheduling, worker
spawns, retry backoffs, checkpoint writes and cache hits happened
between the trace's frames.  This module gives the orchestration layer
the same treatment in wall-clock time:

* a :class:`SpanTracer` opens/closes named spans and instants on
  ``host.*`` tracks, assigning every span a process-unique id under one
  run-wide trace id;
* spans double as :class:`~repro.telemetry.events.TraceEvent`s
  (category :data:`~repro.telemetry.events.CAT_HOST`) when a telemetry
  bus is attached, so the Perfetto exporter renders them as a dedicated
  "host orchestration" process next to the simulated-cycle tracks —
  one trace file, both time bases;
* a :class:`SpanContext` propagates ``(trace_id, parent span,
  unix epoch)`` parent -> worker as a plain picklable tuple, and worker
  spans travel home over the existing feed-tuple channel as
  ``("span", point_index, worker_pid, record)`` — the same wire that
  carries window snapshots (see :meth:`repro.telemetry.server.
  LiveRun.put`);
* :func:`write_spans` serializes the collected spans as a validatable
  ``repro.spans/1`` document (``--spans PATH`` on both CLIs).

Timestamps are microseconds since the tracer's unix epoch
(``time.time``-based, not monotonic, precisely so parent and worker
processes share one timeline; heartbeat *liveness* keeps using the
parent's monotonic clock — see server.py).  The producers follow the
telemetry layer's None-guard contract: with no tracer configured the
orchestration hot paths pay one ``is not None`` test (enforced by
``benchmarks/test_bench_engine.py::
test_spans_alerts_disabled_overhead_under_two_percent``).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .events import CAT_HOST, PH_COMPLETE, PH_INSTANT, TraceEvent

SPANS_SCHEMA = "repro.spans/1"

# The span taxonomy: every orchestration span lands on one of these
# tracks (docs/ARCHITECTURE.md "Fleet observability" documents which
# producer emits what on each).
TRACK_RUN = "host.run"            # experiment / batch lifecycles
TRACK_SCHED = "host.sched"        # point scheduling + cache hit/miss
TRACK_WORKER = "host.worker"      # worker spawn -> exit, point attempts
TRACK_CKPT = "host.checkpoint"    # checkpoint write/load
TRACK_JOURNAL = "host.journal"    # journal appends + replay
TRACK_RETRY = "host.retry"        # retry/backoff + exclusions

SPAN_KINDS = ("span", "instant")

# Process-global id allocator: ids must be unique per *process*, not per
# tracer — in serial (jobs=1) runs the worker tracer lives in the same
# process as the parent, and per-tracer counters would collide on
# ``pid.1``.
_ids = itertools.count(1)


@dataclass(frozen=True)
class SpanContext:
    """The picklable cross-process propagation triple.

    ``epoch_unix_us`` anchors the child tracer to the parent's
    timeline; ``parent_id`` makes the worker's spans children of the
    parent-side span that scheduled them.
    """

    trace_id: str
    parent_id: str
    epoch_unix_us: int


@dataclass
class Span:
    """An open span handle (returned by :meth:`SpanTracer.begin`)."""

    span_id: str
    parent_id: str
    name: str
    track: str
    start_us: int
    args: Dict


class SpanTracer:
    """Collects host-time spans; optionally mirrors them onto a bus/feed.

    ``sink`` is anything with ``emit(TraceEvent)`` (a
    :class:`~repro.telemetry.bus.TelemetryBus` or a single sink) — every
    closed span/instant is mirrored there as a ``CAT_HOST`` event so it
    lands in Perfetto exports.  ``feed``/``index`` make this a *worker*
    tracer: closed records are additionally shipped home as
    ``("span", index, pid, record)`` tuples.  ``context`` adopts a
    parent's trace id and epoch (see :meth:`child_context`).

    All methods are thread-safe; ids are ``pid.counter`` so concurrent
    processes can never collide.
    """

    def __init__(
        self,
        sink=None,
        feed=None,
        index: Optional[int] = None,
        context: Optional[SpanContext] = None,
        clock=time.time,
    ) -> None:
        self._sink = sink
        self._feed = feed
        self._index = index
        self._clock = clock
        self._lock = threading.Lock()
        if context is not None:
            self.trace_id = context.trace_id
            self.root_id = context.parent_id
            self.epoch_unix_us = context.epoch_unix_us
        else:
            self.epoch_unix_us = int(clock() * 1e6)
            self.trace_id = f"{os.getpid():x}-{self.epoch_unix_us:x}"
            self.root_id = ""
        self.records: List[Dict] = []

    # ------------------------------------------------------------------ #
    # Time and identity.
    # ------------------------------------------------------------------ #

    def now_us(self) -> int:
        """Microseconds since the trace epoch (clamped non-negative, so
        cross-process clock skew can never produce a negative stamp)."""
        return max(0, int(self._clock() * 1e6) - self.epoch_unix_us)

    def _new_id(self) -> str:
        return f"{os.getpid():x}.{next(_ids):x}"

    def child_context(self, parent: Optional[Span] = None) -> SpanContext:
        """The propagation triple a worker tracer is constructed from."""
        return SpanContext(
            trace_id=self.trace_id,
            parent_id=parent.span_id if parent is not None else self.root_id,
            epoch_unix_us=self.epoch_unix_us,
        )

    # ------------------------------------------------------------------ #
    # Producing spans.
    # ------------------------------------------------------------------ #

    def begin(self, name: str, track: str = TRACK_RUN,
              parent: Optional[Span] = None, **args) -> Span:
        """Open a span; close it with :meth:`end` (non-lexical scopes:
        a worker spawn ends in a different callback than it began)."""
        return Span(
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else self.root_id,
            name=name,
            track=track,
            start_us=self.now_us(),
            args=dict(args),
        )

    def end(self, span: Span, **extra_args) -> Dict:
        if extra_args:
            span.args.update(extra_args)
        record = {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "track": span.track,
            "ts_us": span.start_us,
            "dur_us": max(0, self.now_us() - span.start_us),
            "args": span.args,
        }
        self._record(record)
        return record

    class _SpanScope:
        __slots__ = ("tracer", "span")

        def __init__(self, tracer: "SpanTracer", span: Span) -> None:
            self.tracer = tracer
            self.span = span

        def __enter__(self) -> Span:
            return self.span

        def __exit__(self, exc_type, *exc) -> None:
            if exc_type is not None:
                self.span.args.setdefault("error", exc_type.__name__)
            self.tracer.end(self.span)

    def span(self, name: str, track: str = TRACK_RUN,
             parent: Optional[Span] = None, **args) -> "_SpanScope":
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        return self._SpanScope(self, self.begin(name, track, parent, **args))

    def instant(self, name: str, track: str = TRACK_RUN,
                parent: Optional[Span] = None, **args) -> Dict:
        record = {
            "kind": "instant",
            "trace_id": self.trace_id,
            "span_id": self._new_id(),
            "parent_id": (parent.span_id if parent is not None
                          else self.root_id),
            "name": name,
            "track": track,
            "ts_us": self.now_us(),
            "dur_us": 0,
            "args": dict(args),
        }
        self._record(record)
        return record

    # ------------------------------------------------------------------ #
    # Record fan-out.
    # ------------------------------------------------------------------ #

    def _record(self, record: Dict) -> None:
        with self._lock:
            self.records.append(record)
        if self._sink is not None:
            self._sink.emit(self._to_event(record))
        if self._feed is not None:
            self._feed.put(("span", self._index, os.getpid(), record))

    def ingest(self, record: Dict) -> None:
        """Adopt a record produced by a worker tracer (it arrived over
        the feed channel); mirrored onto this tracer's sink so worker
        spans land in the parent's Perfetto export too."""
        if not isinstance(record, dict) or "span_id" not in record:
            return
        with self._lock:
            self.records.append(record)
        if self._sink is not None:
            self._sink.emit(self._to_event(record))

    @staticmethod
    def _to_event(record: Dict) -> TraceEvent:
        instant = record["kind"] == "instant"
        args = {"trace_id": record["trace_id"],
                "span_id": record["span_id"]}
        if record["parent_id"]:
            args["parent_id"] = record["parent_id"]
        args.update(record["args"])
        return TraceEvent(
            ts=record["ts_us"],
            phase=PH_INSTANT if instant else PH_COMPLETE,
            category=CAT_HOST,
            name=record["name"],
            track=record["track"],
            dur=0 if instant else record["dur_us"],
            id=record["span_id"],
            args=args,
        )

    # ------------------------------------------------------------------ #
    # The repro.spans/1 artifact.
    # ------------------------------------------------------------------ #

    def document(self) -> Dict:
        """The serializable span document (sorted by timestamp, then id,
        so a document is deterministic for a given set of records)."""
        with self._lock:
            spans = sorted(self.records,
                           key=lambda r: (r["ts_us"], r["span_id"]))
        return {
            "schema": SPANS_SCHEMA,
            "trace_id": self.trace_id,
            "epoch_unix_us": self.epoch_unix_us,
            "spans": spans,
        }


def write_spans(path, tracer: SpanTracer) -> int:
    """Write the tracer's ``repro.spans/1`` document; returns the span
    count."""
    import json
    document = tracer.document()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(document["spans"])

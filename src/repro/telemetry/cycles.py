"""Per-thread CPI-stack cycle accounting with exact conservation.

Attributes **every simulated cycle of every hardware thread to exactly
one bucket** — base compute, idle, store-buffer stall, MSHR-full stall,
L1/crossbar transit, bank conflict, the three per-VPC-resource L2
arbiter queues (tag/data/bus), L2 service, DRAM queueing and DRAM
service — so "thread 2 slowed down 1.8x" becomes "thread 2 spent 41%
of its cycles in the L2 bus queue".  This is the monitoring substrate
the paper's argument needs (VPC exists to bound the queueing components
of slowdown) and the signal base the ROADMAP's dynamic QoS controllers
will consume.

Conservation contract (enforced by ``verify_stack`` and the property
tests): for every thread, the bucket sums equal the measured cycles
**bit-for-bit**, on all three kernels (cycle, event, batch).

Design — lazy spans, not per-cycle sampling
-------------------------------------------
A per-cycle "where is this thread stalled" sample would break the
skipping kernels (a batch-kernel core sleeps while banks and DRAM keep
running, so nobody is there to sample).  Instead each thread carries an
always-open span ``[mark, now)`` presumed charged to its current
bucket:

* a **progressing tick** closes the open span, charges one cycle to
  ``base``, and re-opens at ``now + 1`` with a freshly classified stall
  reason;
* a **stalled tick** closes the span only when the core-local stall
  reason changes (store-queue full vs. MSHR-full vs. waiting on loads);
* while the reason is "waiting on loads", **census hooks** fired by the
  memory system (MSHR allocate, bank accept, arbiter enqueue/grant,
  memory handoff, DRAM issue, response) split the span whenever the
  deepest pipeline stage occupied by the thread's outstanding lines
  changes — at the exact cycle the component acts, whether or not the
  core is awake.

Because every hook fires at the same ``(thread, cycle)`` in all three
kernels (components tick at identical cycles; a quiescent core's
reason is frozen until a response wakes it), the buckets are
kernel-identical *by construction* — ``fast_forward`` needs no hook at
all.  Disabled cost is the telemetry layer's usual single
``is not None`` test per hook site.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.events import CAT_CPI, PH_COUNTER, TraceEvent

#: Schema tag of a standalone CPI-stack JSON document.
CPI_SCHEMA = "repro.cpi-stack/1"
#: Schema tag of a solo-vs-shared slowdown decomposition table.
DECOMPOSITION_SCHEMA = "repro.cpi-decomposition/1"

# Bucket indices.  Order is part of the schema (stacks are emitted as
# plain lists); append-only.
B_BASE = 0          # the cycle dispatched at least one instruction
B_IDLE = 1          # trace drained (thread done)
B_STORE = 2         # store queue full, SGB ack outstanding
B_MSHR = 3          # L1 miss with no MSHR to allocate
B_L1_TRANSIT = 4    # miss in flight core<->L2 (crossbar + queues' rim)
B_BANK = 5          # parked in the bank input queue (bank conflict)
B_TAGQ = 6          # waiting in the L2 tag arbiter queue
B_L2SVC = 7         # in service inside the L2 (tag/data/bus busy)
B_DATAQ = 8         # waiting in the L2 data-array arbiter queue
B_BUSQ = 9          # waiting in the L2 data-bus arbiter queue
B_DRAMQ = 10        # below the L2: controller/L3/DRAM queueing
B_DRAMSVC = 11      # DRAM device service (activate/column/burst)

BUCKETS = (
    "base", "idle", "store_buffer", "mshr", "l1_transit", "bank_conflict",
    "l2_tag_queue", "l2_service", "l2_data_queue", "l2_bus_queue",
    "dram_queue", "dram_service",
)
N_BUCKETS = len(BUCKETS)

# Census stages an outstanding tracked read walks, ordered shallow ->
# deep.  A load-stalled thread is charged to the *deepest* stage any of
# its outstanding lines occupies (the stage gating completion).
S_XFER = 0
S_BANKQ = 1
S_TAGQ = 2
S_L2SVC = 3
S_DATAQ = 4
S_BUSQ = 5
S_DRAMQ = 6
S_DRAMSVC = 7
N_STAGES = 8
_STAGE_BUCKET = (B_L1_TRANSIT, B_BANK, B_TAGQ, B_L2SVC, B_DATAQ, B_BUSQ,
                 B_DRAMQ, B_DRAMSVC)

# Core-local stall reasons (classified by CoreModel._stall_reason).
R_IDLE = 0    # trace drained / nothing to do
R_LOAD = 1    # blocked on outstanding loads (window, dependence, retry)
R_MSHR = 2    # L1 miss with a full MSHR file
R_STORE = 3   # store queue full
_REASON_BUCKET = {R_IDLE: B_IDLE, R_MSHR: B_MSHR, R_STORE: B_STORE}

# The L2-queueing buckets the VPC arbiters exist to bound — the fig10
# decomposition highlights these rows.
QUEUE_BUCKETS = ("l2_tag_queue", "l2_data_queue", "l2_bus_queue")


class CycleAccounting:
    """Mutable accounting state shared by every hooked component.

    One instance per :class:`~repro.system.cmp.CMPSystem`, attached via
    ``system.attach_cycle_accounting()``.  Pickled with the system
    object graph, so checkpoint/resume keeps the stacks exact for free.
    """

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("cycle accounting needs at least one thread")
        self.n_threads = n_threads
        # With an L3 configured the DRAM channels are not hooked and all
        # below-L2 time stays in dram_queue (set by attach).
        self.dram_service_tracked = True
        self._buckets = [[0] * N_BUCKETS for _ in range(n_threads)]
        self._census = [[0] * N_STAGES for _ in range(n_threads)]
        self._mark = [0] * n_threads       # open-span start per thread
        self._reason = [R_IDLE] * n_threads
        self._bucket = [B_IDLE] * n_threads  # bucket of the open span
        self._base_cycle = 0
        self._baseline = [[0] * N_BUCKETS for _ in range(n_threads)]

    # ------------------------------------------------------------------ #
    # Span engine.
    # ------------------------------------------------------------------ #

    def _close(self, tid: int, now: int) -> None:
        """Charge the open span up to ``now`` (clamped: a same-cycle hook
        after a progressing tick must not re-charge the base cycle)."""
        mark = self._mark[tid]
        if now > mark:
            self._buckets[tid][self._bucket[tid]] += now - mark
            self._mark[tid] = now

    def _stall_bucket(self, tid: int) -> int:
        reason = self._reason[tid]
        if reason == R_LOAD:
            census = self._census[tid]
            for stage in range(N_STAGES - 1, -1, -1):
                if census[stage]:
                    return _STAGE_BUCKET[stage]
            return B_L1_TRANSIT
        return _REASON_BUCKET[reason]

    def progress(self, tid: int, now: int, reason: int) -> None:
        """A core tick at ``now`` dispatched work: one base cycle, then
        re-open the span at ``now + 1`` under the post-tick reason."""
        self._close(tid, now)
        self._buckets[tid][B_BASE] += 1
        self._mark[tid] = now + 1
        self._reason[tid] = reason
        self._bucket[tid] = self._stall_bucket(tid)

    def stall(self, tid: int, now: int, reason: int) -> None:
        """A core tick at ``now`` dispatched nothing; split the open span
        only when the stall reason changed (cycle ``now`` itself is
        charged to the *new* reason's bucket)."""
        if reason != self._reason[tid]:
            self._close(tid, now)
            self._reason[tid] = reason
            self._bucket[tid] = self._stall_bucket(tid)

    def _restage(self, tid: int, now: int) -> None:
        """Census changed at ``now``: re-derive the open span's bucket
        (only observable while the thread is load-stalled)."""
        if self._reason[tid] == R_LOAD:
            bucket = self._stall_bucket(tid)
            if bucket != self._bucket[tid]:
                self._close(tid, now)
                self._bucket[tid] = bucket

    # ------------------------------------------------------------------ #
    # Census hooks (memory-system side; fire at exact component cycles).
    # ------------------------------------------------------------------ #

    def _move(self, tid: int, old: int, new: int, now: int) -> None:
        census = self._census[tid]
        census[old] -= 1
        if census[old] < 0:
            raise RuntimeError(
                f"cycle-accounting census underflow: thread {tid} stage "
                f"{old} at cycle {now}"
            )
        census[new] += 1
        self._restage(tid, now)

    def mshr_allocated(self, tid: int, now: int) -> None:
        """Primary L2 read left the core (demand or prefetch)."""
        self._census[tid][S_XFER] += 1
        self._restage(tid, now)

    def mshr_completed(self, tid: int, now: int) -> None:
        """The fill came back; the line's census entry retires."""
        census = self._census[tid]
        census[S_XFER] -= 1
        if census[S_XFER] < 0:
            raise RuntimeError(
                f"cycle-accounting census underflow: thread {tid} "
                f"completion without allocation at cycle {now}"
            )
        self._restage(tid, now)

    def bank_accepted(self, tid: int, now: int) -> None:
        """Read parked in a bank's input load queue."""
        self._move(tid, S_XFER, S_BANKQ, now)

    def arbiter_queued(self, kind: str, entry, now: int) -> None:
        """A bank state machine entered a tag/data/bus arbiter queue.
        Fill-side stages (FILLTAG/WBDATA/FILLDATA, post-respond) and
        write requests are deliberately not census-tracked."""
        sm = entry.payload
        request = getattr(sm, "request", None)
        if request is None or not request.is_read:
            return
        state = sm.state.name
        tid = entry.thread_id
        if kind == "tag":
            if state == "TAG_WAIT":
                self._move(tid, S_BANKQ, S_TAGQ, now)
            elif state == "MISSTAG_WAIT":
                self._move(tid, S_L2SVC, S_TAGQ, now)
        elif kind == "data":
            if state == "DATA_WAIT":
                self._move(tid, S_L2SVC, S_DATAQ, now)
        elif state == "BUS_WAIT":  # kind == "bus"
            old = S_L2SVC if sm.hit else (
                S_DRAMSVC if self.dram_service_tracked else S_DRAMQ
            )
            self._move(tid, old, S_BUSQ, now)

    def arbiter_granted(self, kind: str, entry, now: int) -> None:
        """A queued state machine won arbitration: queueing ends, L2
        service begins."""
        sm = entry.payload
        request = getattr(sm, "request", None)
        if request is None or not request.is_read:
            return
        state = sm.state.name
        tid = entry.thread_id
        if kind == "tag":
            if state in ("TAG_WAIT", "MISSTAG_WAIT"):
                self._move(tid, S_TAGQ, S_L2SVC, now)
        elif kind == "data":
            if state == "DATA_WAIT":
                self._move(tid, S_DATAQ, S_L2SVC, now)
        elif state == "BUS_WAIT":  # kind == "bus"
            self._move(tid, S_BUSQ, S_L2SVC, now)

    def mem_queued(self, tid: int, now: int) -> None:
        """A read miss left the L2 for the below-L2 hierarchy."""
        self._move(tid, S_L2SVC, S_DRAMQ, now)

    def dram_issued(self, tid: int, now: int) -> None:
        """DRAM device service began for a tracked read."""
        self._move(tid, S_DRAMQ, S_DRAMSVC, now)

    def responded(self, tid: int, now: int) -> None:
        """Critical word left the bank bus toward the core."""
        self._move(tid, S_L2SVC, S_XFER, now)

    # ------------------------------------------------------------------ #
    # Interval snapshots.
    # ------------------------------------------------------------------ #

    def rebase(self, now: int) -> None:
        """Start the measurement interval at ``now`` (end of warmup):
        snapshots report buckets accumulated since this point."""
        for tid in range(self.n_threads):
            baseline = self._baseline[tid]
            buckets = self._buckets[tid]
            for index in range(N_BUCKETS):
                baseline[index] = buckets[index]
            delta = now - self._mark[tid]  # virtually close the open span
            if delta > 0:
                baseline[self._bucket[tid]] += delta
        self._base_cycle = now

    def interval_stacks(self, now: int) -> List[List[int]]:
        """Per-thread bucket cycles over ``[rebase, now)``; each row sums
        to exactly ``now - rebase``."""
        out = []
        for tid in range(self.n_threads):
            virtual = list(self._buckets[tid])
            delta = now - self._mark[tid]
            if delta > 0:
                virtual[self._bucket[tid]] += delta
            baseline = self._baseline[tid]
            out.append([virtual[i] - baseline[i] for i in range(N_BUCKETS)])
        return out

    def snapshot(self, now: int) -> Dict:
        """Schema-tagged CPI-stack document for cycle ``now``."""
        return {
            "schema": CPI_SCHEMA,
            "n_threads": self.n_threads,
            "buckets": list(BUCKETS),
            "measured_cycles": now - self._base_cycle,
            "threads": self.interval_stacks(now),
        }

    def emit_counters(self, bus, now: int) -> None:
        """Per-thread stacked counter tracks for the Perfetto exporter
        (one ``C`` event per thread per metrics window; args are the
        numeric-only series the trace validator requires)."""
        for tid, stack in enumerate(self.interval_stacks(now)):
            bus.emit(TraceEvent(
                ts=now, phase=PH_COUNTER, category=CAT_CPI,
                name="cpi", track=f"cpi.t{tid}", tid=tid,
                args={BUCKETS[i]: stack[i] for i in range(N_BUCKETS)},
            ))


# ---------------------------------------------------------------------- #
# Offline verification + derived tables (pure functions of snapshots).
# ---------------------------------------------------------------------- #

def verify_stack(payload: Dict) -> List[str]:
    """Re-check the conservation invariant on a CPI-stack document;
    returns a list of human-readable errors (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["cpi-stack: not a JSON object"]
    if payload.get("schema") != CPI_SCHEMA:
        errors.append(
            f"cpi-stack: schema {payload.get('schema')!r} != {CPI_SCHEMA!r}"
        )
    buckets = payload.get("buckets")
    if buckets != list(BUCKETS):
        errors.append(f"cpi-stack: bucket taxonomy mismatch: {buckets!r}")
    n_threads = payload.get("n_threads")
    threads = payload.get("threads")
    measured = payload.get("measured_cycles")
    if not isinstance(threads, list) or not isinstance(n_threads, int):
        errors.append("cpi-stack: missing threads/n_threads")
        return errors
    if len(threads) != n_threads:
        errors.append(
            f"cpi-stack: {len(threads)} stacks for {n_threads} threads"
        )
    for tid, stack in enumerate(threads):
        if not isinstance(stack, list) or len(stack) != N_BUCKETS:
            errors.append(f"cpi-stack: thread {tid} stack malformed")
            continue
        if any((not isinstance(v, int)) or v < 0 for v in stack):
            errors.append(f"cpi-stack: thread {tid} has non-count entries")
            continue
        total = sum(stack)
        if total != measured:
            errors.append(
                f"cpi-stack: thread {tid} buckets sum to {total}, "
                f"measured_cycles is {measured} (conservation violated)"
            )
    return errors


def _stack_group(snapshot: Dict) -> Optional[str]:
    """Decomposition column for one point snapshot: solo reference runs
    (single-thread private-equivalent machines) vs. shared runs keyed by
    arbiter policy."""
    if snapshot.get("cpi_stacks") is None:
        return None
    if snapshot.get("n_threads") == 1:
        return "solo"
    arbiter = snapshot.get("arbiter")
    return str(arbiter) if arbiter else None


def decompose_slowdown(per_point) -> Optional[Dict]:
    """Solo-vs-shared slowdown decomposition from per-point metrics
    snapshots (the fig10 table: which buckets each arbiter policy
    inflates over the private-machine baseline).

    Sums bucket cycles and instructions across threads and points per
    group, then reports cycles-per-instruction per bucket — comparable
    between the 1-thread solo runs and the shared mixes.  Returns
    ``None`` unless a solo reference and at least one shared group carry
    stacks.
    """
    cycles: Dict[str, List[int]] = {}
    instructions: Dict[str, int] = {}
    for snapshot in per_point or []:
        group = _stack_group(snapshot)
        if group is None:
            continue
        stacks = snapshot["cpi_stacks"].get("threads") or []
        insns = snapshot.get("instructions") or []
        totals = cycles.setdefault(group, [0] * N_BUCKETS)
        for stack in stacks:
            for index in range(min(N_BUCKETS, len(stack))):
                totals[index] += stack[index]
        instructions[group] = instructions.get(group, 0) + sum(insns)
    shared = [g for g in cycles if g != "solo"]
    if "solo" not in cycles or not shared:
        return None
    groups = ["solo"] + sorted(shared)
    cpi = {
        group: [
            cycles[group][index] / instructions[group]
            if instructions[group] else 0.0
            for index in range(N_BUCKETS)
        ]
        for group in groups
    }
    return {
        "schema": DECOMPOSITION_SCHEMA,
        "buckets": list(BUCKETS),
        "groups": groups,
        "cycles": {group: cycles[group] for group in groups},
        "instructions": {group: instructions[group] for group in groups},
        "cpi": cpi,
    }


def render_decomposition(decomposition: Dict) -> List[str]:
    """Aligned text table for a decomposition document (report cards)."""
    groups = decomposition["groups"]
    cpi = decomposition["cpi"]
    label_width = max(len("bucket"), max(len(b) for b in BUCKETS))
    header = f"  {'bucket':<{label_width}}"
    for group in groups:
        header += f"  {group:>9}"
    if "fcfs" in groups and "vpc" in groups:
        header += f"  {'vpc-fcfs':>9}"
    lines = ["slowdown decomposition (cycles per instruction):", header]
    for index, bucket in enumerate(BUCKETS):
        row = f"  {bucket:<{label_width}}"
        for group in groups:
            row += f"  {cpi[group][index]:>9.4f}"
        if "fcfs" in groups and "vpc" in groups:
            delta = cpi["vpc"][index] - cpi["fcfs"][index]
            row += f"  {delta:>+9.4f}"
        lines.append(row)
    total = f"  {'total':<{label_width}}"
    for group in groups:
        total += f"  {sum(cpi[group]):>9.4f}"
    if "fcfs" in groups and "vpc" in groups:
        delta = sum(cpi["vpc"]) - sum(cpi["fcfs"])
        total += f"  {delta:>+9.4f}"
    lines.append(total)
    return lines

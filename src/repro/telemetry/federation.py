"""Federated metrics plane: one endpoint for a fleet of live runs.

Every ``--serve`` run exposes its own ``/metrics``, ``/snapshot``,
``/healthz`` and ``/events`` (:mod:`repro.telemetry.server`) — but a
sweep sharded over N invocations (or, eventually, N machines) is N
places to look.  The :class:`FleetAggregator` subscribes to each worker
endpoint, keeps the latest per-worker snapshot/health, multiplexes the
workers' SSE streams into one worker-labelled stream, and the
:class:`FleetServer` re-serves the merged view:

* ``GET /metrics`` — Prometheus exposition over the *fleet* merge plus
  ``repro_fleet_*`` rollup families (worker/reachability/alert counts);
* ``GET /snapshot`` — the merged fleet aggregate
  (``repro.metrics-aggregate/1``), byte-identical to an offline
  :func:`merge_fleet` over the per-worker snapshots;
* ``GET /fleet/healthz`` (also ``/healthz``) — per-worker
  liveness/degraded rollup, ``503`` when degraded;
* ``GET /events`` — the multiplexed SSE stream, every event payload
  labelled with ``worker`` (index) and ``worker_url``;
* ``GET /alerts`` — the fleet alert engine's ``repro.alerts/1``
  document (when rules are loaded).

``python -m repro fleet --workers URL URL ...`` runs the plane from a
shell; ``repro top --fleet URL`` renders it.  Everything is stdlib
(urllib + http.server), matching the repo's no-dependency rule.
"""

from __future__ import annotations

import argparse
import json
import queue
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .attribution import merge_attribution
from .metrics import merge_snapshots, to_prometheus
from .server import SUBSCRIBER_BUFFER

#: Seconds between reconnect attempts for a worker whose /events stream
#: dropped (doubles up to the cap; a dead worker costs one socket try
#: per backoff, nothing more).
RECONNECT_BASE_S = 0.25
RECONNECT_CAP_S = 5.0


def merge_fleet(worker_snapshots: List[Optional[Dict]]) -> Dict:
    """Merge per-worker aggregates into one fleet aggregate.

    Each input is a worker's ``/snapshot`` document (an
    ``repro.metrics-aggregate/1`` with a ``per_point`` list);
    unreachable workers contribute ``None``.  The merge flattens every
    worker's points — in worker order, preserving each worker's point
    order — back through :func:`~repro.telemetry.metrics.
    merge_snapshots`, so the fleet aggregate is exactly what one big
    run over the union of points would have produced.  The acceptance
    test (and the CI fleet-smoke job) holds the served ``/snapshot``
    byte-identical to this function applied offline.
    """
    points: List[Dict] = []
    kernels = set()
    for aggregate in worker_snapshots:
        if not aggregate:
            continue
        points.extend(aggregate.get("per_point", ()))
        if aggregate.get("kernel"):
            kernels.add(aggregate["kernel"])
    fleet = merge_snapshots(points)
    fleet["attribution"] = merge_attribution(
        [point.get("attribution") for point in points])
    if len(kernels) == 1:
        # Stamp the kernel only when the whole fleet agrees — a mixed
        # fleet has no single truthful value.
        fleet["kernel"] = kernels.pop()
    return fleet


class _Worker:
    """One subscribed worker endpoint's latest known state."""

    __slots__ = ("index", "url", "snapshot", "health", "reachable",
                 "error", "last_event", "events_seen")

    def __init__(self, index: int, url: str) -> None:
        self.index = index
        self.url = url.rstrip("/")
        self.snapshot: Optional[Dict] = None
        self.health: Optional[Dict] = None
        self.reachable = False
        self.error: Optional[str] = None
        self.last_event: Optional[Tuple[str, Dict]] = None
        self.events_seen = 0


class FleetAggregator:
    """Subscribes to N worker ``LiveRun`` endpoints and merges them.

    :meth:`refresh` is a synchronous poll of every worker's
    ``/snapshot`` + ``/healthz`` (tests drive it directly for
    determinism; :func:`main`'s loop calls it on an interval).
    :meth:`start` additionally opens one SSE client thread per worker,
    re-publishing every received event — worker-labelled — to this
    aggregator's own subscribers, with automatic reconnect/backoff when
    a worker drops mid-stream.

    An optional :class:`~repro.telemetry.alerts.AlertEngine` observes
    every multiplexed event and every health poll; its emissions are
    published as fleet ``alert`` events.
    """

    def __init__(
        self,
        workers: List[str],
        stale_after: float = 30.0,
        timeout: float = 5.0,
        alert_engine=None,
    ) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker URL")
        self.workers = [_Worker(i, url) for i, url in enumerate(workers)]
        self.stale_after = stale_after
        self.timeout = timeout
        self.alert_engine = alert_engine
        self._lock = threading.Lock()
        self._alert_lock = threading.Lock()
        self._subscribers: List[queue.Queue] = []
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()

    # ------------------------------------------------------------------ #
    # Polling plane (/snapshot + /healthz).
    # ------------------------------------------------------------------ #

    def _fetch_json(self, url: str) -> Optional[Dict]:
        """GET a JSON document; a 503 (degraded worker) still carries a
        valid health body, so HTTPError bodies are parsed, not raised."""
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                return json.loads(exc.read().decode())
            except (ValueError, OSError):
                return None
        except (urllib.error.URLError, OSError, ValueError):
            return None

    def refresh(self) -> Dict:
        """Poll every worker once; returns the merged fleet snapshot."""
        for worker in self.workers:
            snapshot = self._fetch_json(worker.url + "/snapshot")
            health = self._fetch_json(worker.url + "/healthz")
            with self._lock:
                if snapshot is not None:
                    worker.snapshot = snapshot
                if health is not None:
                    worker.health = health
                worker.reachable = health is not None or snapshot is not None
                worker.error = None if worker.reachable else "unreachable"
            if health is not None and self.alert_engine is not None:
                with self._alert_lock:
                    emitted = self.alert_engine.observe_health(health)
                for payload in emitted:
                    self.publish_alert(payload)
        if self.alert_engine is not None:
            rollup = self.health()
            with self._alert_lock:
                emitted = self.alert_engine.observe_health(
                    {"stale_workers": rollup["unreachable_workers"]})
            for payload in emitted:
                self.publish_alert(payload)
        return self.snapshot()

    def snapshot(self) -> Dict:
        """The current fleet aggregate (:func:`merge_fleet` over the
        latest per-worker snapshots, in configured worker order)."""
        with self._lock:
            snapshots = [worker.snapshot for worker in self.workers]
        return merge_fleet(snapshots)

    def health(self) -> Dict:
        """Per-worker liveness/degraded rollup.

        Fleet status is worst-of: any unreachable or degraded worker
        degrades the fleet; else any running worker keeps it running;
        a fleet of finished workers is finished.
        """
        with self._lock:
            per_worker = {}
            unreachable = []
            statuses = []
            for worker in self.workers:
                status = ((worker.health or {}).get("status", "unknown")
                          if worker.reachable else "unreachable")
                statuses.append(status)
                if not worker.reachable:
                    unreachable.append(worker.index)
                entry = {"url": worker.url, "status": status,
                         "events_seen": worker.events_seen}
                if worker.health is not None:
                    entry["points"] = worker.health.get("points")
                    entry["violations"] = worker.health.get("violations")
                    entry["resilience"] = worker.health.get("resilience")
                    entry["stale_workers"] = worker.health.get(
                        "stale_workers")
                per_worker[str(worker.index)] = entry
        if any(s in ("unreachable", "degraded", "unknown")
               for s in statuses):
            status = "degraded"
        elif any(s == "running" for s in statuses):
            status = "running"
        elif statuses and all(s == "finished" for s in statuses):
            status = "finished"
        else:
            status = "idle"
        out = {
            "status": status,
            "workers": per_worker,
            "n_workers": len(self.workers),
            "unreachable_workers": unreachable,
        }
        if self.alert_engine is not None:
            out["alerts"] = {"fired": self.alert_engine.fired,
                             "firing": self.alert_engine.firing}
        return out

    def metrics(self) -> str:
        """Prometheus exposition: the fleet merge plus rollup families."""
        body = to_prometheus(self.snapshot())
        rollup = self.health()
        reachable = rollup["n_workers"] - len(rollup["unreachable_workers"])
        lines = [
            "# HELP repro_fleet_workers Worker endpoints this aggregator "
            "subscribes to",
            "# TYPE repro_fleet_workers gauge",
            f"repro_fleet_workers {rollup['n_workers']}",
            "# HELP repro_fleet_workers_reachable Workers that answered "
            "the last poll",
            "# TYPE repro_fleet_workers_reachable gauge",
            f"repro_fleet_workers_reachable {reachable}",
        ]
        if self.alert_engine is not None:
            lines += [
                "# HELP repro_fleet_alerts_fired Alert rules fired since "
                "the aggregator started",
                "# TYPE repro_fleet_alerts_fired counter",
                f"repro_fleet_alerts_fired {self.alert_engine.fired}",
            ]
        return body + "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    # Multiplexed SSE plane.
    # ------------------------------------------------------------------ #

    def subscribe(self) -> "queue.Queue":
        """Register a fleet event consumer; primed with every worker's
        most recent event so late subscribers see the stream's shape
        (the per-worker replay the single-run plane offers, federated)."""
        subscriber: queue.Queue = queue.Queue(maxsize=SUBSCRIBER_BUFFER)
        with self._lock:
            for worker in self.workers:
                if worker.last_event is not None:
                    event, payload = worker.last_event
                    subscriber.put_nowait(
                        (event, {**payload, "replay": True}))
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: "queue.Queue") -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def _publish(self, event: str, payload: Dict) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber.put_nowait((event, payload))
            except queue.Full:
                try:
                    subscriber.get_nowait()
                    subscriber.put_nowait((event, payload))
                except (queue.Empty, queue.Full):
                    pass

    def publish_alert(self, payload: Dict) -> None:
        self._publish("alert", payload)

    def _on_worker_event(self, worker: _Worker, event: str,
                         payload: Dict) -> None:
        labelled = {"worker": worker.index, "worker_url": worker.url,
                    **payload}
        with self._lock:
            worker.events_seen += 1
            worker.last_event = (event, labelled)
        if self.alert_engine is not None and event != "alert":
            with self._alert_lock:
                emitted = self.alert_engine.observe(event, payload)
            for alert_payload in emitted:
                self.publish_alert(alert_payload)
        self._publish(event, labelled)

    def _pump(self, worker: _Worker) -> None:
        """One worker's SSE client loop: connect, relay, reconnect."""
        backoff = RECONNECT_BASE_S
        while not self._stopping.is_set():
            try:
                with urllib.request.urlopen(
                        worker.url + "/events",
                        timeout=self.timeout) as stream:
                    backoff = RECONNECT_BASE_S
                    event = "message"
                    for raw in stream:
                        if self._stopping.is_set():
                            return
                        line = raw.decode("utf-8", "replace").rstrip("\n")
                        if line.startswith("event:"):
                            event = line[6:].strip()
                        elif line.startswith("data:"):
                            try:
                                payload = json.loads(line[5:].strip())
                            except ValueError:
                                continue
                            self._on_worker_event(worker, event, payload)
                            event = "message"
                        # blank lines and ": keepalive" comments fall
                        # through; timeouts between keepalives raise.
            except (urllib.error.URLError, OSError, ValueError):
                pass
            if self._stopping.wait(backoff):
                return
            backoff = min(backoff * 2, RECONNECT_CAP_S)

    def start(self) -> None:
        """Open the per-worker SSE client threads (daemonized)."""
        self._stopping.clear()
        for worker in self.workers:
            thread = threading.Thread(
                target=self._pump, args=(worker,),
                name=f"repro-fleet-sse-{worker.index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._stopping.set()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()


class _FleetHandler(BaseHTTPRequestHandler):
    """Routes the fleet endpoints; the aggregator rides on the server."""

    server_version = "repro-fleet/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    @property
    def fleet(self) -> FleetAggregator:
        return self.server.fleet  # type: ignore[attr-defined]

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._respond(200, "text/plain; version=0.0.4",
                              self.fleet.metrics().encode())
            elif path == "/snapshot":
                body = (json.dumps(self.fleet.snapshot()) + "\n").encode()
                self._respond(200, "application/json", body)
            elif path in ("/fleet/healthz", "/healthz", "/health"):
                health = self.fleet.health()
                status = 503 if health["status"] == "degraded" else 200
                body = (json.dumps(health) + "\n").encode()
                self._respond(status, "application/json", body)
            elif path == "/alerts":
                engine = self.fleet.alert_engine
                if engine is None:
                    self._respond(404, "text/plain",
                                  b"no alert rules loaded\n")
                else:
                    body = (json.dumps(engine.document(), indent=2)
                            + "\n").encode()
                    self._respond(200, "application/json", body)
            elif path == "/events":
                self._stream_events()
            else:
                self._respond(404, "text/plain",
                              b"repro fleet: /metrics /snapshot "
                              b"/fleet/healthz /events /alerts\n")
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _stream_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        subscriber = self.fleet.subscribe()
        try:
            while not self.server.stopping:  # type: ignore[attr-defined]
                try:
                    event, payload = subscriber.get(timeout=1.0)
                except queue.Empty:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                data = json.dumps(payload)
                self.wfile.write(
                    f"event: {event}\ndata: {data}\n\n".encode())
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            self.fleet.unsubscribe(subscriber)


class FleetServer:
    """The HTTP service wrapping a :class:`FleetAggregator`."""

    def __init__(self, fleet: FleetAggregator, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.fleet = fleet
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        httpd = ThreadingHTTPServer((self.host, self.port), _FleetHandler)
        httpd.daemon_threads = True
        httpd.fleet = self.fleet         # type: ignore[attr-defined]
        httpd.stopping = False           # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-fleet-http", daemon=True)
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.stopping = True      # type: ignore[attr-defined]
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "FleetServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro fleet``: run the aggregator from a shell."""
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Aggregate N live runs into one fleet endpoint.")
    parser.add_argument("--workers", nargs="+", required=True,
                        metavar="URL",
                        help="worker base URLs (e.g. http://127.0.0.1:9100)")
    parser.add_argument("--port", type=int, default=0,
                        help="fleet HTTP port (0 = auto-assign)")
    parser.add_argument("--stale-after", type=float, default=30.0,
                        help="seconds before a silent worker degrades "
                             "the fleet")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between worker polls")
    parser.add_argument("--alerts", metavar="RULES",
                        help="alert rule file (JSON or TOML) evaluated "
                             "against the fleet stream")
    parser.add_argument("--alerts-out", metavar="PATH",
                        help="write the repro.alerts/1 document here on "
                             "exit")
    parser.add_argument("--duration", type=float, default=0.0,
                        help="serve for this many seconds then exit "
                             "(0 = until interrupted)")
    args = parser.parse_args(argv)

    engine = None
    if args.alerts:
        from .alerts import AlertEngine, load_rules
        engine = AlertEngine(load_rules(args.alerts))
    fleet = FleetAggregator(args.workers, stale_after=args.stale_after,
                            alert_engine=engine)
    server = FleetServer(fleet, port=args.port)
    server.start()
    fleet.start()
    print(f"serving fleet telemetry on {server.url} "
          f"({len(args.workers)} workers)", flush=True)
    deadline = (time.monotonic() + args.duration) if args.duration else None
    try:
        while deadline is None or time.monotonic() < deadline:
            fleet.refresh()
            remaining = (deadline - time.monotonic()
                         if deadline is not None else args.interval)
            time.sleep(max(0.0, min(args.interval, remaining)))
    except KeyboardInterrupt:
        pass
    finally:
        fleet.stop()
        server.stop()
        if engine is not None:
            print(engine.summary_line(), flush=True)
            if args.alerts_out:
                from .alerts import write_alerts
                write_alerts(args.alerts_out, engine)
    if engine is not None and engine.page_fired:
        from .alerts import PAGE_EXIT_CODE
        return PAGE_EXIT_CODE
    return 0


if __name__ == "__main__":
    sys.exit(main())

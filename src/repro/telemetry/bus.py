"""The telemetry bus and the sinks that subscribe to it.

Design contract (see docs/ARCHITECTURE.md "Observability"):

* **Zero overhead when disabled.**  Components hold a ``_trace``
  attribute that is ``None`` by default; every instrumentation point is
  guarded by ``if self._trace is not None``.  No bus object, no event
  object, no call is constructed on the disabled path — the cost is one
  attribute load and an identity test, and only on *request-level*
  paths (grants, allocations, retirements), never inside per-cycle
  inner loops.
* **Sinks are dumb.**  A sink implements ``emit(event)`` (the
  ``TraceSink`` protocol) and may implement ``close()``.  Fan-out,
  filtering and buffering policy live in the sink, not the producers.
* **Producers never format.**  They emit ``TraceEvent`` records;
  rendering (Perfetto JSON, JSONL, histograms, QoS audits) happens in
  sinks/exporters after the fact.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable, List, Optional, Protocol, runtime_checkable

from .events import TraceEvent
from .requests import StreamingLatencies


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive telemetry events."""

    def emit(self, event: TraceEvent) -> None: ...


class TelemetryBus:
    """Fans every emitted event out to the attached sinks.

    The bus itself satisfies ``TraceSink``, so buses can be chained and
    components only ever see the one ``emit`` entry point.
    """

    def __init__(self, sinks: Optional[Iterable[TraceSink]] = None):
        self.sinks: List[TraceSink] = list(sinks) if sinks else []

    def attach(self, sink: TraceSink) -> TraceSink:
        self.sinks.append(sink)
        return sink

    def detach(self, sink: TraceSink) -> None:
        self.sinks.remove(sink)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory.

    The default sink for interactive runs: bounded memory, and the
    whole buffer can be handed to the Perfetto exporter afterwards.
    """

    def __init__(self, capacity: int = 1_000_000):
        self.events: deque = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class JsonlSink:
    """Streams events to a file as one JSON object per line.

    For runs too long to buffer: constant memory, crash-safe up to the
    last flushed line.  Non-JSON-serializable ``args`` values (e.g. the
    live ``MemoryRequest`` attached to retirement events) degrade to
    ``repr`` rather than failing the run.
    """

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._file: IO = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns = True

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict(), default=repr))
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


class RequestLogSink:
    """Collects retired read requests, in retirement order — bounded.

    Backs the legacy ``CMPSystem.request_log`` API: the analysis helpers
    (`repro.analysis.latency`) consume the stamped ``MemoryRequest``
    objects that ride on request-end events.  The log keeps the *first*
    ``capacity`` retirements (so results are identical to the old
    unbounded list on any run that fits the bound) and counts the rest
    in ``dropped``; exact streaming per-thread latency summaries and a
    worst-k exemplar reservoir (``summary``) cover *every* demand load
    regardless of the bound, so tail quantiles never truncate.
    """

    def __init__(self, capacity: int = 100_000, exemplar_k: int = 8):
        if capacity < 0:
            raise ValueError("request-log capacity must be >= 0")
        self.capacity = capacity
        self.requests: list = []
        self.dropped = 0
        self.summary = StreamingLatencies(exemplar_k)

    def emit(self, event: TraceEvent) -> None:
        if event.category != "request" or event.phase != "e":
            return
        args = event.args
        if args is None:
            return
        request = args.get("request")
        if request is None or not request.is_read:
            return
        if len(self.requests) < self.capacity:
            self.requests.append(request)
        else:
            self.dropped += 1
        if (not request.is_prefetch and request.issued_cycle >= 0
                and request.critical_word_cycle >= 0):
            latency = request.critical_word_cycle - request.issued_cycle
            self.summary.add(request.thread_id, latency, {
                "seq": request.seq,
                "line": request.line,
                "issued_cycle": request.issued_cycle,
                "latency": latency,
            })


class CategoryFilterSink:
    """Forwards only the named categories to a wrapped sink."""

    def __init__(self, sink: TraceSink, categories: Iterable[str]):
        self._sink = sink
        self._categories = frozenset(categories)

    def emit(self, event: TraceEvent) -> None:
        if event.category in self._categories:
            self._sink.emit(event)

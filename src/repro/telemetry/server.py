"""Live observability plane: in-run telemetry state + HTTP service.

PRs 2-3 made every run *post-hoc* observable — traces, window metrics
and report cards land on disk after the run ends.  This module is the
online half: a :class:`LiveRun` holds the fleet's latest state while it
simulates (fed per window by the workers, see
:mod:`repro.experiments.parallel`), and a :class:`TelemetryServer`
exposes it over plain stdlib HTTP so a real Prometheus can scrape a
running experiment and ``repro top`` can watch it:

* ``GET /metrics`` — Prometheus text exposition
  (:func:`repro.telemetry.metrics.to_prometheus`) over the latest
  merged snapshot; changes scrape-to-scrape mid-run.
* ``GET /healthz`` — run liveness JSON: points done/total, per-worker
  heartbeat ages, last-window age, QoS violation count.  Responds
  ``503`` with ``status: "degraded"`` when any worker's heartbeat age
  exceeds the configured staleness threshold while the run is active.
* ``GET /snapshot`` — the schema-tagged merged metrics JSON
  (``repro.metrics-aggregate/1``); once the run finishes this is the
  byte-identical aggregate the experiment runner writes to disk.
* ``GET /events`` — Server-Sent Events: one ``window`` event per
  flushed measurement window, ``violation`` instants from the
  :class:`~repro.core.monitor.QoSMonitor`, and ``point`` completion
  records.

Cost discipline: the plane follows the telemetry layer's None-guard
contract — nothing here is constructed unless ``--serve`` is given, and
the producers' disabled path stays a single ``is not None`` test (see
``benchmarks/test_bench_engine.py::
test_serve_disabled_overhead_under_two_percent``).

The feed protocol is deliberately dumb so it crosses the
``multiprocessing`` boundary as plain tuples (see
:meth:`LiveRun.put`)::

    ("start",     point_index, worker_id)
    ("window",    point_index, worker_id, cycle, metrics_snapshot)
    ("violation", point_index, worker_id, violation_dict)
    ("hb",        worker_id)
    ("span",      point_index, worker_pid, span_record)

Heartbeat ages are measured with the *parent's* clock at receive time,
so worker/parent clock skew cannot fake liveness.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .attribution import merge_attribution
from .metrics import merge_snapshots, to_prometheus

#: Events buffered per SSE subscriber before the oldest are dropped
#: (a stalled client must never block the run or grow memory unbounded).
SUBSCRIBER_BUFFER = 256


class LiveRun:
    """Thread-safe state of one running experiment fleet.

    Producers (the parallel runner's drainer thread, or the single-run
    CLI inline) call :meth:`put` / the typed methods; consumers (the
    HTTP handlers, ``repro top``) read :meth:`merged`, :meth:`health`
    and subscribe to the event stream.  All methods are safe from any
    thread.
    """

    def __init__(
        self,
        stale_after: float = 30.0,
        progress=None,
        clock=time.monotonic,
    ) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be > 0 seconds")
        self.stale_after = stale_after
        self.progress = progress  # ProgressReporter for stale warnings
        self._clock = clock
        self._lock = threading.Lock()
        self._subscribers: List[queue.Queue] = []
        #: Parent-side SpanTracer.ingest when host-span tracing is on:
        #: worker span records arriving over the feed are handed here.
        self.on_span = None
        #: AlertEngine evaluating every published event (``--alerts``).
        #: Guarded by its own lock — producers publish from more than
        #: one thread and the engine is not internally synchronized.
        self.alert_engine = None
        self._alert_lock = threading.Lock()
        self.run_label = ""
        self.run_kernel = ""      # simulation kernel ("cycle"/"event"/...)
        self.total = 0
        self.done = 0
        self.violations = 0
        self.retries = 0          # resilience fleet: attempts restarted
        self.excluded = 0         # resilience fleet: points given up on
        self.finished = False
        self._next_base = 0
        self._workers: Dict[int, float] = {}      # worker id -> last beat
        self._warned_stale: set = set()
        self._last_window_at: Optional[float] = None
        self._latest: Dict[int, Dict] = {}        # point -> window snapshot
        self._windows_seen: Dict[int, int] = {}   # point -> flush count
        self._final: Dict[int, Dict] = {}         # point -> final metrics
        self._aggregate: Optional[Dict] = None    # runner's exact merge
        self._gen = 0                             # merge-cache invalidation

    # ------------------------------------------------------------------ #
    # Feed (producer side).
    # ------------------------------------------------------------------ #

    def put(self, msg: Tuple) -> None:
        """Dispatch one feed tuple (the cross-process wire format)."""
        kind = msg[0]
        if kind == "window":
            _, index, worker, cycle, snapshot = msg
            self.window(index, worker, cycle, snapshot)
        elif kind == "violation":
            _, index, worker, record = msg
            self.violation(index, worker, record)
        elif kind == "start":
            _, index, worker = msg
            self.heartbeat(worker)
        elif kind == "hb":
            self.heartbeat(msg[1])
        elif kind == "span":
            _, index, worker, record = msg
            self.span(index, worker, record)

    def begin_run(self, label: str = "", kernel: str = "") -> None:
        """Start (or switch to) a named run: clears per-point state.

        ``kernel`` records which simulation kernel the run executes
        under; :meth:`merged` stamps it into every live aggregate so
        ``/snapshot`` reports it mid-run, not only at the end.
        """
        with self._lock:
            self.run_label = label
            self.run_kernel = kernel
            self.total = self.done = self.violations = 0
            self.retries = self.excluded = 0
            self.finished = False
            self._next_base = 0
            self._workers.clear()
            self._warned_stale.clear()
            self._last_window_at = None
            self._latest.clear()
            self._windows_seen.clear()
            self._final.clear()
            self._aggregate = None
        self._publish("run", {"run": label, "status": "started"})

    def begin_batch(self, n_points: int) -> int:
        """Register a batch of points; returns its global index base."""
        with self._lock:
            base = self._next_base
            self._next_base += n_points
            self.total += n_points
            self.finished = False
        return base

    def heartbeat(self, worker: int) -> None:
        with self._lock:
            self._workers[worker] = self._clock()
            self._warned_stale.discard(worker)

    def window(self, index: int, worker: int, cycle: int,
               snapshot: Dict) -> None:
        with self._lock:
            now = self._clock()
            self._workers[worker] = now
            self._warned_stale.discard(worker)
            self._last_window_at = now
            self._latest[index] = snapshot
            self._windows_seen[index] = self._windows_seen.get(index, 0) + 1
            self._aggregate = None
            self._gen += 1
        self._publish("window", {
            "point": index, "worker": worker, "cycle": cycle,
            "snapshot": snapshot,
        })

    def violation(self, index: int, worker: int, record: Dict) -> None:
        with self._lock:
            self.violations += 1
        self._publish("violation", {
            "point": index, "worker": worker, **record,
        })

    def span(self, index: Optional[int], worker: int, record: Dict) -> None:
        """A host-time span record arrived from a worker (or was closed
        parent-side): hand it to the parent tracer and put it on the
        event stream so ``/events`` carries orchestration spans too."""
        if self.on_span is not None:
            self.on_span(record)
        self._publish("span", {"point": index, "worker": worker,
                               "span": record})

    def alert(self, payload: Dict) -> None:
        """Publish a structured alert event (AlertEngine emission)."""
        self._publish("alert", payload)

    def point_retry(self, index: int, attempt: int, error: str) -> None:
        """A resilience-fleet worker died or timed out and is being
        retried (repro.resilience.fleet)."""
        with self._lock:
            self.retries += 1
        self._publish("retry", {"point": index, "attempt": attempt,
                                "error": error})

    def point_excluded(self, index: int, error: str) -> None:
        """The resilience fleet gave up on a point after its retry
        budget; the run continues without it."""
        with self._lock:
            self.excluded += 1
        self._publish("excluded", {"point": index, "error": error})

    def point_done(self, index: int, metrics: Optional[Dict]) -> None:
        """Record a point's completion (parent side, after the result
        pickled home); ``metrics`` is the authoritative final snapshot."""
        with self._lock:
            self.done += 1
            if metrics is not None:
                self._final[index] = metrics
                self._latest[index] = metrics
            self._aggregate = None
            self._gen += 1
            done, total = self.done, self.total
        self._publish("point", {"point": index, "done": done,
                                "total": total})

    def finish_run(self, aggregate: Optional[Dict] = None) -> None:
        """Mark the run complete.  When the experiment runner passes its
        merged aggregate, ``/snapshot`` serves that exact object — byte
        identical to the ``<exp>.metrics.json`` it writes."""
        with self._lock:
            self.finished = True
            if aggregate is not None:
                self._aggregate = aggregate
        self._publish("run", {"run": self.run_label, "status": "finished"})

    # ------------------------------------------------------------------ #
    # Consumers.
    # ------------------------------------------------------------------ #

    def merged(self) -> Dict:
        """The latest merged fleet snapshot (``repro.metrics-aggregate/1``).

        Completed points contribute their final metrics; points still
        simulating contribute their most recent window flush, so the
        merge moves mid-point.  After :meth:`finish_run` with an
        aggregate, that exact aggregate is returned instead.
        """
        with self._lock:
            if self._aggregate is not None:
                return self._aggregate
            gen = self._gen
            snapshots = [self._latest[k] for k in sorted(self._latest)]
        aggregate = merge_snapshots(snapshots)
        aggregate["attribution"] = merge_attribution(
            [snap.get("attribution") for snap in snapshots]
        )
        if self.run_kernel:
            # Mirrors the key the experiment runner writes into its disk
            # aggregate, so live and final snapshots agree field-for-field.
            aggregate["kernel"] = self.run_kernel
        with self._lock:
            # Cache until the next window/point invalidates it; a feed
            # update that raced the merge leaves the cache cold instead.
            if self._gen == gen and self._aggregate is None:
                self._aggregate = aggregate
        return aggregate

    def stale_workers(self) -> List[Tuple[int, float]]:
        """(worker, heartbeat age) pairs past the staleness threshold."""
        with self._lock:
            if self.finished or self.done >= self.total:
                return []
            now = self._clock()
            return [
                (worker, now - beat)
                for worker, beat in self._workers.items()
                if now - beat > self.stale_after
            ]

    def check_stale(self) -> List[Tuple[int, float]]:
        """Poll for stale workers, warning via the progress reporter
        once per worker (re-armed when the worker beats again)."""
        stale = self.stale_workers()
        if self.progress is not None:
            for worker, age in stale:
                with self._lock:
                    fresh = worker not in self._warned_stale
                    self._warned_stale.add(worker)
                if fresh:
                    self.progress.stale_worker(worker, age)
        engine = self.alert_engine
        if engine is not None:
            with self._alert_lock:
                emitted = engine.observe_health(
                    {"stale_workers": [worker for worker, _ in stale]})
            for alert_payload in emitted:
                self.alert(alert_payload)
        return stale

    def health(self) -> Dict:
        stale = self.stale_workers()
        with self._lock:
            now = self._clock()
            if self.finished or (self.total and self.done >= self.total):
                status = "finished"
            elif stale:
                status = "degraded"
            elif self.total:
                status = "running"
            else:
                status = "idle"
            return {
                "status": status,
                "run": self.run_label,
                "points": {"done": self.done, "total": self.total},
                "workers": {
                    str(worker): {"heartbeat_age_s": round(now - beat, 3)}
                    for worker, beat in sorted(self._workers.items())
                },
                "stale_workers": [worker for worker, _ in stale],
                "stale_after_s": self.stale_after,
                "last_window_age_s": (
                    round(now - self._last_window_at, 3)
                    if self._last_window_at is not None else None
                ),
                "violations": self.violations,
                "resilience": {
                    "retries": self.retries,
                    "excluded": self.excluded,
                },
                "alerts": (
                    {"fired": self.alert_engine.fired,
                     "firing": self.alert_engine.firing}
                    if self.alert_engine is not None else None
                ),
            }

    # ------------------------------------------------------------------ #
    # Event stream (SSE backing).
    # ------------------------------------------------------------------ #

    def subscribe(self) -> "queue.Queue":
        """Register an event consumer.  The queue is primed with the
        most recent window event (when one exists) so late subscribers —
        a smoke test curling ``/events`` after a short run — still see
        the stream's shape immediately."""
        subscriber: queue.Queue = queue.Queue(maxsize=SUBSCRIBER_BUFFER)
        with self._lock:
            if self._latest:
                index = max(self._latest)
                subscriber.put_nowait(("window", {
                    "point": index, "replay": True,
                    "snapshot": self._latest[index],
                }))
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: "queue.Queue") -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def _publish(self, event: str, payload: Dict) -> None:
        # Alert evaluation rides the publish path so every signal the
        # SSE stream sees, the rules see — but never recursively on the
        # "alert" events the engine itself emits.
        engine = self.alert_engine
        if engine is not None and event != "alert":
            with self._alert_lock:
                emitted = engine.observe(event, payload)
            for alert_payload in emitted:
                self.alert(alert_payload)
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber.put_nowait((event, payload))
            except queue.Full:
                # Drop the oldest so a stalled client only loses events.
                try:
                    subscriber.get_nowait()
                    subscriber.put_nowait((event, payload))
                except (queue.Empty, queue.Full):
                    pass


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints; the LiveRun rides on the server."""

    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"

    # Silence the default stderr access log — the run's own progress
    # output must stay readable.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    @property
    def live(self) -> LiveRun:
        return self.server.live  # type: ignore[attr-defined]

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = to_prometheus(self.live.merged()).encode()
                self._respond(200, "text/plain; version=0.0.4", body)
            elif path == "/snapshot":
                body = (json.dumps(self.live.merged()) + "\n").encode()
                self._respond(200, "application/json", body)
            elif path in ("/healthz", "/health"):
                health = self.live.health()
                status = 503 if health["status"] == "degraded" else 200
                body = (json.dumps(health) + "\n").encode()
                self._respond(status, "application/json", body)
            elif path == "/events":
                self._stream_events()
            else:
                self._respond(404, "text/plain",
                              b"repro telemetry: /metrics /healthz "
                              b"/snapshot /events\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _stream_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream: no Content-Length, close delimits.
        self.send_header("Connection", "close")
        self.end_headers()
        subscriber = self.live.subscribe()
        try:
            while not self.server.stopping:  # type: ignore[attr-defined]
                try:
                    event, payload = subscriber.get(timeout=1.0)
                except queue.Empty:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                data = json.dumps(payload)
                self.wfile.write(
                    f"event: {event}\ndata: {data}\n\n".encode()
                )
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            self.live.unsubscribe(subscriber)


class TelemetryServer:
    """The HTTP service wrapping a :class:`LiveRun`.

    ``port=0`` binds an OS-assigned free port; the actual port is on
    ``self.port`` (and in ``self.url``) after :meth:`start`.  The server
    runs on daemon threads and costs nothing to the simulation: handlers
    only ever *read* LiveRun state under its lock.
    """

    def __init__(self, live: LiveRun, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.live = live
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.live = self.live           # type: ignore[attr-defined]
        httpd.stopping = False           # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.stopping = True      # type: ignore[attr-defined]
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

"""Unified simulation telemetry: event bus, sinks, and exporters.

See docs/ARCHITECTURE.md "Observability" for the design; the short
version: components emit :class:`TraceEvent`s onto a
:class:`TelemetryBus` only when one is attached (``None`` check on the
hot path, so disabled tracing is free), and everything else —
Perfetto export, latency histograms, the request log, the QoS monitor
— is a :class:`TraceSink` subscriber.
"""

from .bus import (
    CategoryFilterSink,
    JsonlSink,
    RequestLogSink,
    RingBufferSink,
    TelemetryBus,
    TraceSink,
)
from .attribution import InterferenceAttributor, merge_attribution
from .cycles import (
    BUCKETS,
    CycleAccounting,
    decompose_slowdown,
    render_decomposition,
    verify_stack,
)
from .alerts import AlertEngine, AlertRule, load_rules, write_alerts
from .events import (
    CAT_ARBITER,
    CAT_CACHE,
    CAT_CPI,
    CAT_DRAM,
    CAT_HOST,
    CAT_KERNEL,
    CAT_MSHR,
    CAT_REQUEST,
    CAT_RESOURCE,
    CAT_RUN,
    CAT_SGB,
    CAT_XBAR,
    PH_BEGIN,
    PH_COMPLETE,
    PH_COUNTER,
    PH_END,
    PH_INSTANT,
    TraceEvent,
)
from .federation import FleetAggregator, FleetServer, merge_fleet
from .histograms import Histogram, LatencyHistogramSink
from .history import append_entry, build_entry, diff_entries, read_history
from .manifest import RunManifest, config_hash, git_sha
from .metrics import MetricsCollector, merge_snapshots, to_prometheus
from .perfetto import chrome_trace, write_chrome_trace
from .progress import ProgressReporter
from .requests import (
    REQUESTS_SCHEMA,
    SEGMENTS,
    RequestTracer,
    SLORule,
    StreamingLatencies,
    load_slo,
    render_requests,
    slo_burn,
    verify_requests,
    write_requests,
)
from .report import (
    build_report_card,
    merge_report_cards,
    render_fleet_card,
    render_report_card,
    write_report,
)
from .server import LiveRun, TelemetryServer
from .spans import SpanContext, SpanTracer, write_spans
from .validate import validate_chrome_trace

__all__ = [
    "TraceEvent", "TraceSink", "TelemetryBus",
    "RingBufferSink", "JsonlSink", "RequestLogSink", "CategoryFilterSink",
    "PH_BEGIN", "PH_END", "PH_COMPLETE", "PH_INSTANT", "PH_COUNTER",
    "CAT_REQUEST", "CAT_RESOURCE", "CAT_ARBITER", "CAT_KERNEL",
    "CAT_MSHR", "CAT_SGB", "CAT_DRAM", "CAT_XBAR", "CAT_RUN", "CAT_CACHE",
    "CAT_CPI", "CAT_HOST",
    "BUCKETS", "CycleAccounting", "verify_stack",
    "decompose_slowdown", "render_decomposition",
    "append_entry", "build_entry", "diff_entries", "read_history",
    "Histogram", "LatencyHistogramSink",
    "RunManifest", "config_hash", "git_sha",
    "MetricsCollector", "merge_snapshots", "to_prometheus",
    "InterferenceAttributor", "merge_attribution",
    "build_report_card", "merge_report_cards",
    "render_report_card", "render_fleet_card", "write_report",
    "chrome_trace", "write_chrome_trace",
    "ProgressReporter",
    "LiveRun", "TelemetryServer",
    "SpanContext", "SpanTracer", "write_spans",
    "AlertEngine", "AlertRule", "load_rules", "write_alerts",
    "REQUESTS_SCHEMA", "SEGMENTS", "RequestTracer", "SLORule",
    "StreamingLatencies", "load_slo", "render_requests", "slo_burn",
    "verify_requests", "write_requests",
    "FleetAggregator", "FleetServer", "merge_fleet",
    "validate_chrome_trace",
]

"""Run manifests: the provenance record attached to every result.

A :class:`RunManifest` pins down everything needed to reproduce (or
distrust) a result: the configuration content hash, the workload seeds,
the repository revision, which simulation kernel ran, how the result
cache behaved, and how long the run took.  The experiment runner
attaches one to every ``ExperimentResult`` and can write it alongside
the output; the simulation CLI prints/writes one on ``--manifest``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple


def config_hash(config) -> str:
    """Content hash of a configuration object.

    Configs are plain nested dataclasses with value-complete ``repr``s,
    which makes ``repr`` a deterministic serialization.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def git_sha() -> str:
    """HEAD revision of the repository this module runs from."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


@dataclass
class RunManifest:
    """Provenance for one simulation or experiment run."""

    config_hash: str = ""
    git_sha: str = ""
    kernel: str = ""
    seeds: Tuple[int, ...] = ()
    cache: Dict[str, int] = field(default_factory=dict)
    wall_time_s: float = 0.0
    created_unix: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        config=None,
        kernel: str = "",
        seeds: Tuple[int, ...] = (),
        cache: Optional[Dict[str, int]] = None,
        wall_time_s: float = 0.0,
        **extra,
    ) -> "RunManifest":
        """Build a manifest, filling in revision and timestamp."""
        return cls(
            config_hash=config_hash(config) if config is not None else "",
            git_sha=git_sha(),
            kernel=kernel,
            seeds=tuple(seeds),
            cache=dict(cache) if cache else {},
            wall_time_s=wall_time_s,
            created_unix=time.time(),
            extra=extra,
        )

    def to_dict(self) -> Dict:
        return asdict(self)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=repr)
            fh.write("\n")

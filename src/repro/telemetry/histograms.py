"""Per-thread / per-stage latency histograms over the telemetry bus.

A :class:`LatencyHistogramSink` subscribes to request-retirement events
and bins each pipeline stage of every demand load into power-of-two
buckets.  It subsumes the list-building half of ``repro.analysis
.latency`` — the same stage definitions (``stage_latencies``) feed both
— but with O(log max_latency) memory per (thread, stage) population, so
it can watch arbitrarily long runs.

Exact ``count`` / ``mean`` / ``max`` are maintained alongside the
buckets; percentiles are bucket-resolution approximations (reported as
the upper bound of the bucket containing the requested rank, i.e.
within 2x of the true value) and are printed with a ``~`` prefix to
distinguish them from the *exact* streaming quantiles that
``repro.telemetry.requests.StreamingLatencies`` computes from its
cycle-resolution counts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.latency import stage_latencies

from .events import CAT_REQUEST, PH_END, TraceEvent


class Histogram:
    """Power-of-two-bucket latency histogram (cycles)."""

    def __init__(self):
        self.count = 0
        self.total = 0
        self.maximum = 0
        self._buckets: Dict[int, int] = {}  # bit_length -> count

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        bucket = value.bit_length()
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the ``fraction`` rank."""
        if not self.count:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.999999))
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                # bucket b holds values in [2**(b-1), 2**b - 1].
                return float(min(self.maximum, (1 << bucket) - 1))
        return float(self.maximum)

    def buckets(self) -> List[Tuple[int, int, int]]:
        """(low, high, count) rows, ascending, for reports/tests."""
        out = []
        for bucket in sorted(self._buckets):
            low = 0 if bucket == 0 else 1 << (bucket - 1)
            high = 0 if bucket == 0 else (1 << bucket) - 1
            out.append((low, high, self._buckets[bucket]))
        return out


class LatencyHistogramSink:
    """Bins every retired demand load by (thread, stage)."""

    def __init__(self):
        self.histograms: Dict[Tuple[int, str], Histogram] = {}

    def emit(self, event: TraceEvent) -> None:
        if event.category != CAT_REQUEST or event.phase != PH_END:
            return
        args = event.args
        request = args.get("request") if args else None
        if request is None or not request.is_read or request.is_prefetch:
            return
        for stage, latency in stage_latencies(request).items():
            key = (event.tid, stage)
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = Histogram()
            hist.record(latency)

    def histogram(self, thread_id: int, stage: str) -> Histogram:
        return self.histograms.get((thread_id, stage), Histogram())

    def threads(self) -> List[int]:
        return sorted({tid for tid, _ in self.histograms})

    def format_report(self) -> str:
        lines = [
            f"{'thread':>7} {'stage':>10} {'count':>7} {'mean':>8} "
            f"{'~p50':>7} {'~p95':>7} {'~p99':>7} {'max':>7}"
        ]
        for (tid, stage), hist in sorted(self.histograms.items()):
            lines.append(
                f"{tid:>7} {stage:>10} {hist.count:>7} {hist.mean:>8.1f} "
                f"{hist.percentile(0.50):>7.0f} "
                f"{hist.percentile(0.95):>7.0f} "
                f"{hist.percentile(0.99):>7.0f} {hist.maximum:>7}"
            )
        return "\n".join(lines)

"""Declarative alert rules evaluated against the live event stream.

The observability plane (PRs 2-4, 7) *records* everything — but a
human still had to watch ``repro top`` or diff artifacts to notice a
run going wrong.  This module closes the loop: rules declared in a
JSON or TOML file are evaluated continuously against the events a
:class:`~repro.telemetry.server.LiveRun` (or the fleet aggregator)
publishes, and a breached rule emits a structured ``alert`` event onto
the same bus/SSE stream the rest of the plane uses.  A firing
``severity=page`` rule makes the runner exit nonzero (code 4), which
is the entire point: CI and cron sweeps fail loudly instead of
producing quietly-degraded artifacts.

Rule file shape (JSON shown; TOML via stdlib ``tomllib`` is
equivalent)::

    {"rules": [
      {"name": "slowdown-burn", "signal": "slowdown", "op": ">",
       "threshold": 2.5, "for_windows": 3, "severity": "page"},
      {"name": "retry-storm", "signal": "retries", "op": ">=",
       "threshold": 3, "severity": "page"},
      {"name": "bench-regression", "signal": "bench_regression",
       "op": ">", "threshold": 0.10, "severity": "warn"}
    ]}

Signals (see docs/ARCHITECTURE.md for the full table):

* ``slowdown`` — worst per-thread slowdown-vs-solo in the latest
  window (needs target IPCs, i.e. ``--report`` on the single-run CLI);
* ``fairness`` — the latest window's Jain fairness index;
* ``ipc`` — the slowest thread's latest-window IPC;
* ``violations`` — cumulative QoS-guarantee violations this run;
* ``retries`` / ``excluded`` — resilience-fleet retry/exclusion
  counters (events, or a worker's ``/healthz`` resilience block);
* ``stale_workers`` — workers past the heartbeat staleness threshold;
* ``bench_regression`` — fractional throughput drop vs the most
  recent run-history ledger entry for the same experiment (PR 7);
* ``slo_burn`` — the worst SLO error-budget burn rate across the
  request tracer's rules and threads (1.0 = exactly on target, >1.0 =
  budget burning too fast; needs ``--requests --slo`` so window
  snapshots embed a ``repro.requests/1`` document).

``for_windows`` is the burn-rate guard: the rule fires only after that
many *consecutive* breaching evaluations, fires exactly once per
sustained violation, and emits a matching ``resolved`` event when the
signal recovers.  Alert payloads contain no wall-clock timestamps —
only deterministic ordinals — so goldens can assert byte-stable bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

ALERTS_SCHEMA = "repro.alerts/1"

SEVERITIES = ("warn", "page")
OPS = (">", ">=", "<", "<=")
SIGNALS = (
    "slowdown", "fairness", "ipc", "violations", "retries", "excluded",
    "stale_workers", "bench_regression", "slo_burn",
)

#: Signals evaluated from counters/health rather than window series.
_COUNTER_SIGNALS = ("violations", "retries", "excluded")

#: Exit code the runners return when a page-severity rule fired.
PAGE_EXIT_CODE = 4


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; frozen so rule sets are hashable state."""

    name: str
    signal: str
    threshold: float
    op: str = ">"
    for_windows: int = 1
    severity: str = "warn"
    thread: Optional[int] = None   # restrict slowdown/ipc to one thread

    def validate(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"alert rule needs a non-empty name: {self!r}")
        if self.signal not in SIGNALS:
            raise ValueError(
                f"rule {self.name!r}: unknown signal {self.signal!r}; "
                f"choose from {SIGNALS}")
        if self.op not in OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown op {self.op!r}; "
                f"choose from {OPS}")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: unknown severity {self.severity!r}; "
                f"choose from {SEVERITIES}")
        if not isinstance(self.for_windows, int) or self.for_windows < 1:
            raise ValueError(
                f"rule {self.name!r}: for_windows must be an int >= 1")
        if isinstance(self.threshold, bool) or not isinstance(
                self.threshold, (int, float)):
            raise ValueError(
                f"rule {self.name!r}: threshold must be numeric")

    def breached(self, value: float) -> bool:
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        return value <= self.threshold

    def to_dict(self) -> Dict:
        out = {
            "name": self.name, "signal": self.signal, "op": self.op,
            "threshold": self.threshold, "for_windows": self.for_windows,
            "severity": self.severity,
        }
        if self.thread is not None:
            out["thread"] = self.thread
        return out


def load_rules(path: str) -> List[AlertRule]:
    """Parse and validate a rule file (``.toml`` via tomllib, else JSON).

    Accepts ``{"rules": [...]}`` or a bare list; duplicate rule names
    are an error (alert events reference rules by name).
    """
    if str(path).endswith(".toml"):
        import tomllib
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    else:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    raw = payload.get("rules") if isinstance(payload, dict) else payload
    if not isinstance(raw, list) or not raw:
        raise ValueError(f"{path}: expected a non-empty 'rules' list")
    rules = []
    for item in raw:
        if not isinstance(item, dict):
            raise ValueError(f"{path}: rule entries must be objects")
        known = {"name", "signal", "op", "threshold", "for_windows",
                 "severity", "thread"}
        unknown = set(item) - known
        if unknown:
            raise ValueError(
                f"{path}: rule {item.get('name', '?')!r} has unknown "
                f"keys {sorted(unknown)}")
        rule = AlertRule(
            name=item.get("name", ""),
            signal=item.get("signal", ""),
            threshold=item.get("threshold", 0.0),
            op=item.get("op", ">"),
            for_windows=item.get("for_windows", 1),
            severity=item.get("severity", "warn"),
            thread=item.get("thread"),
        )
        rule.validate()
        rules.append(rule)
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate rule names in {names}")
    return rules


@dataclass
class _RuleState:
    """The sustained-window state machine for one rule."""

    rule: AlertRule
    streak: int = 0        # consecutive breaching evaluations
    firing: bool = False
    fired: int = 0         # times this rule entered the firing state
    last_value: Optional[float] = None


class AlertEngine:
    """Evaluates a rule set against the published event stream.

    Feed it via :meth:`observe` (one call per published LiveRun/fleet
    event), :meth:`observe_health` (periodic health documents — the
    source for ``stale_workers`` and a second, poll-robust source for
    the resilience counters), and :meth:`evaluate_history` (end-of-
    experiment bench-regression check against the PR 7 ledger).  Each
    returns the alert events newly emitted by that observation; the
    caller publishes them (``LiveRun.alert`` / the aggregator).

    Not internally locked — drive it from one thread (LiveRun publishes
    under its own serialization; the fleet aggregator wraps calls in
    its engine lock).
    """

    def __init__(self, rules: Sequence[AlertRule],
                 on_alert: Optional[Callable[[Dict], None]] = None) -> None:
        self.rules = list(rules)
        self.on_alert = on_alert
        self._states = {rule.name: _RuleState(rule) for rule in self.rules}
        self._sequence = 0
        self.events: List[Dict] = []
        self.counters = {"violations": 0, "retries": 0, "excluded": 0}

    # ------------------------------------------------------------------ #
    # Observation entry points.
    # ------------------------------------------------------------------ #

    def observe(self, event: str, payload: Dict) -> List[Dict]:
        """Digest one published event; returns newly emitted alerts."""
        emitted: List[Dict] = []
        if event == "violation":
            self.counters["violations"] += 1
            emitted += self._evaluate_counters()
        elif event == "retry":
            self.counters["retries"] += 1
            emitted += self._evaluate_counters()
        elif event == "excluded":
            self.counters["excluded"] += 1
            emitted += self._evaluate_counters()
        elif event == "window":
            snapshot = payload.get("snapshot") or {}
            emitted += self._evaluate_window(snapshot)
            # Counter rules tick on windows too, so a sustained
            # (for_windows > 1) violation-count rule has a cadence.
            emitted += self._evaluate_counters()
        elif event == "run" and payload.get("status") == "started":
            self._reset_run()
        return emitted

    def observe_health(self, health: Dict) -> List[Dict]:
        """Digest a health document (a worker's ``/healthz`` or the
        fleet rollup): stale workers, and the resilience counters as
        reported by the run itself (robust to an aggregator that
        subscribed after the retry events flowed)."""
        emitted: List[Dict] = []
        stale = health.get("stale_workers")
        if stale is not None:
            emitted += self._check("stale_workers", float(len(stale)))
        resilience = health.get("resilience") or {}
        for key in ("retries", "excluded"):
            reported = resilience.get(key, health.get(key))
            if isinstance(reported, (int, float)):
                self.counters[key] = max(self.counters[key], int(reported))
        if resilience or "retries" in health:
            emitted += self._evaluate_counters()
        return emitted

    def evaluate_history(self, exp_id: str, metrics: Optional[Dict],
                         entries: Sequence[Dict]) -> List[Dict]:
        """Bench-regression check: fractional aggregate-throughput drop
        vs the most recent ledger entry for the same experiment."""
        if metrics is None:
            return []
        prior = None
        for entry in entries:
            if entry.get("exp_id") == exp_id:
                prior = entry
        if prior is None:
            return []
        before = _throughput(prior.get("totals") or {})
        now = _throughput(metrics.get("totals") or {})
        if before <= 0:
            return []
        drop = (before - now) / before
        return self._check("bench_regression", drop, exp_id=exp_id)

    # ------------------------------------------------------------------ #
    # Evaluation internals.
    # ------------------------------------------------------------------ #

    def _reset_run(self) -> None:
        for state in self._states.values():
            state.streak = 0
            state.firing = False
            state.last_value = None
        self.counters = {key: 0 for key in self.counters}

    def _evaluate_counters(self) -> List[Dict]:
        emitted: List[Dict] = []
        for signal in _COUNTER_SIGNALS:
            emitted += self._check(signal, float(self.counters[signal]))
        return emitted

    def _evaluate_window(self, snapshot: Dict) -> List[Dict]:
        emitted: List[Dict] = []
        series = snapshot.get("series") or {}
        slowdown = series.get("slowdown")
        for state in self._states.values():
            rule = state.rule
            if rule.signal == "slowdown" and slowdown:
                value = _last_across(slowdown, rule.thread, worst=max)
                if value is not None:
                    emitted += self._check_state(state, value)
            elif rule.signal == "fairness":
                value = _fairness(snapshot)
                if value is not None:
                    emitted += self._check_state(state, value)
            elif rule.signal == "ipc":
                value = _last_across(series.get("ipc"), rule.thread,
                                     worst=min)
                if value is not None:
                    emitted += self._check_state(state, value)
            elif rule.signal == "slo_burn":
                from repro.telemetry.requests import slo_burn
                value = slo_burn(snapshot.get("requests"))
                if value is not None:
                    emitted += self._check_state(state, value)
        return emitted

    def _check(self, signal: str, value: float, **labels) -> List[Dict]:
        emitted: List[Dict] = []
        for state in self._states.values():
            if state.rule.signal == signal:
                emitted += self._check_state(state, value, **labels)
        return emitted

    def _check_state(self, state: _RuleState, value: float,
                     **labels) -> List[Dict]:
        rule = state.rule
        state.last_value = value
        if rule.breached(value):
            state.streak += 1
            if not state.firing and state.streak >= rule.for_windows:
                state.firing = True
                state.fired += 1
                return [self._emit(state, value, "firing", **labels)]
            return []
        recovered = state.firing
        state.streak = 0
        state.firing = False
        if recovered:
            return [self._emit(state, value, "resolved", **labels)]
        return []

    def _emit(self, state: _RuleState, value: float, new_state: str,
              **labels) -> Dict:
        self._sequence += 1
        rule = state.rule
        payload = {
            "alert": rule.name,
            "severity": rule.severity,
            "signal": rule.signal,
            "op": rule.op,
            "threshold": rule.threshold,
            "value": round(float(value), 6),
            "state": new_state,
            "streak": state.streak,
            "sequence": self._sequence,
        }
        payload.update(labels)
        self.events.append(payload)
        if self.on_alert is not None:
            self.on_alert(payload)
        return payload

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #

    @property
    def fired(self) -> int:
        return sum(state.fired for state in self._states.values())

    @property
    def firing(self) -> List[str]:
        return sorted(name for name, state in self._states.items()
                      if state.firing)

    @property
    def page_fired(self) -> bool:
        """True once any ``severity=page`` rule has fired (sticky — a
        later recovery does not un-fail the run)."""
        return any(state.fired and state.rule.severity == "page"
                   for state in self._states.values())

    def document(self) -> Dict:
        """The serializable ``repro.alerts/1`` artifact."""
        return {
            "schema": ALERTS_SCHEMA,
            "rules": [rule.to_dict() for rule in self.rules],
            "events": list(self.events),
            "summary": {
                "fired": self.fired,
                "firing": self.firing,
                "page_fired": self.page_fired,
            },
        }

    def summary_line(self) -> str:
        firing = ",".join(self.firing) or "-"
        return (f"alerts: {self.fired} fired "
                f"({len(self.events)} events, firing now: {firing})")


def write_alerts(path, engine: AlertEngine) -> int:
    """Write the engine's ``repro.alerts/1`` document; returns the
    emitted-event count."""
    document = engine.document()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(document["events"])


# ---------------------------------------------------------------------- #
# Signal extraction helpers.
# ---------------------------------------------------------------------- #

def _last_across(rows, thread: Optional[int], worst) -> Optional[float]:
    """The latest value across per-thread window rows (or one thread's),
    reduced by ``worst`` (max for slowdown, min for ipc)."""
    if not rows:
        return None
    if thread is not None:
        if not 0 <= thread < len(rows) or not rows[thread]:
            return None
        return float(rows[thread][-1])
    values = [row[-1] for row in rows if row]
    return float(worst(values)) if values else None


def _fairness(snapshot: Dict) -> Optional[float]:
    series = (snapshot.get("series") or {}).get("jain_fairness")
    if series:
        return float(series[-1])
    overall = (snapshot.get("fairness") or {}).get("jain_overall")
    return float(overall) if overall is not None else None


def _throughput(totals: Dict) -> float:
    cycles = totals.get("measured_cycles") or 0
    instructions = totals.get("instructions") or 0
    return instructions / cycles if cycles else 0.0

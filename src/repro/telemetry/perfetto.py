"""Chrome/Perfetto ``trace_event`` JSON exporter.

Renders a captured event stream (typically a ``RingBufferSink``) into
the JSON Array Format understood by ``ui.perfetto.dev`` and
``chrome://tracing``:

* **process 1 — "hardware threads"**: one timeline row per hardware
  thread (``t0``, ``t1``, ...) carrying async begin/end spans for every
  memory-request lifecycle plus the crossbar transport slices.
* **process 2 — "shared resources"**: one row per contended resource
  (``bank0.tag``, ``bank0.data``, ``bank0.bus``, ``dram.ch*``, SGB and
  MSHR tracks) carrying occupancy slices and arbiter grant markers.
* **process 3 — "kernel"**: skip-ahead markers and counter tracks.
* **process 4 — "host orchestration"**: wall-clock spans from the
  orchestration layer (``CAT_RUN`` point/cache markers and ``CAT_HOST``
  spans from :mod:`repro.telemetry.spans`) on ``host.*`` tracks — one
  trace file shows simulated cycles and host time side by side.

Timestamps are simulated cycles reported as microseconds (1 cycle =
1 us) — Perfetto needs *some* time unit and the ratio view is what
matters for a simulator.  Host-orchestration events are genuine
wall-clock microseconds; the separate process keeps the two time bases
visually apart.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .events import (
    CAT_HOST,
    CAT_KERNEL,
    CAT_REQUEST,
    CAT_RUN,
    CAT_XBAR,
    PH_BEGIN,
    PH_COMPLETE,
    PH_COUNTER,
    PH_END,
    PH_INSTANT,
    TraceEvent,
)

PID_THREADS = 1
PID_RESOURCES = 2
PID_KERNEL = 3
PID_HOST = 4

# Flow phases (request-waterfall exemplars, repro.telemetry.requests):
# arrows linking a request's issue point on the thread timeline to its
# per-stage waterfall on the ``req.t<tid>`` track.
_PH_FLOW = ("s", "t", "f")

_PROCESS_NAMES = {
    PID_THREADS: "hardware threads",
    PID_RESOURCES: "shared resources",
    PID_KERNEL: "kernel",
    PID_HOST: "host orchestration",
}


def _pid_for(event: TraceEvent) -> int:
    if event.category in (CAT_RUN, CAT_HOST):
        return PID_HOST
    if event.category in (CAT_REQUEST, CAT_XBAR):
        return PID_THREADS
    if event.category == CAT_KERNEL or event.phase == PH_COUNTER:
        return PID_KERNEL
    return PID_RESOURCES


class _TrackIds:
    """Stable, first-seen-ordered track -> tid numbering per process."""

    def __init__(self):
        self._ids: Dict[int, Dict[str, int]] = {}

    def tid(self, pid: int, track: str) -> int:
        tracks = self._ids.setdefault(pid, {})
        if track not in tracks:
            tracks[track] = len(tracks)
        return tracks[track]

    def metadata(self) -> List[dict]:
        out = []
        for pid, name in sorted(_PROCESS_NAMES.items()):
            if pid not in self._ids:
                continue
            out.append({
                "ph": "M", "pid": pid, "tid": 0,
                "name": "process_name", "args": {"name": name},
            })
            for track, tid in self._ids[pid].items():
                out.append({
                    "ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name", "args": {"name": track},
                })
        return out


def _json_args(args: dict) -> dict:
    """trace_event args must be JSON values; degrade objects to repr."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def _counter_args(args: dict) -> dict:
    """Counter ('C') args: every key is a numeric series — drop the
    rest, or Perfetto renders the track as garbage."""
    return {
        key: value for key, value in args.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def chrome_trace(events: Iterable[TraceEvent]) -> List[dict]:
    """Convert an event stream to a trace_event list (JSON-ready).

    Async begin/end spans are balanced on the way out: a request still in
    flight when capture stops gets a synthetic end (marked
    ``truncated``) at the last observed timestamp, and an end whose
    begin predates capture (ring-buffer eviction) gets a synthetic
    begin.  Perfetto renders unbalanced async events as garbage, and the
    schema validator treats them as errors, so the exporter never emits
    them.
    """
    tracks = _TrackIds()
    out: List[dict] = []
    open_spans: Dict[tuple, dict] = {}
    last_ts = 0
    for event in events:
        pid = _pid_for(event)
        tid = tracks.tid(pid, event.track)
        record: dict = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.ts,
            "pid": pid,
            "tid": tid,
        }
        if event.phase in (PH_BEGIN, PH_END):
            record["id"] = str(event.id)
        elif event.phase in _PH_FLOW:
            record["id"] = str(event.id)
            if event.phase == "f":
                record["bp"] = "e"  # bind to enclosing slice
        elif event.phase == PH_COMPLETE:
            record["dur"] = event.dur
        elif event.phase == PH_INSTANT:
            record["s"] = "t"
        if event.args:
            record["args"] = (_counter_args(event.args)
                              if event.phase == PH_COUNTER
                              else _json_args(event.args))
        if event.ts + event.dur > last_ts:
            last_ts = event.ts + event.dur
        if event.phase == PH_BEGIN:
            open_spans[(event.category, record["id"])] = record
        elif event.phase == PH_END:
            begun = open_spans.pop((event.category, record["id"]), None)
            if begun is None:
                out.append({
                    "name": event.name, "cat": event.category,
                    "ph": PH_BEGIN, "ts": event.ts, "pid": pid,
                    "tid": tid, "id": record["id"],
                    "args": {"truncated": True},
                })
        out.append(record)
    for (category, span_id), begun in open_spans.items():
        out.append({
            "name": begun["name"], "cat": category, "ph": PH_END,
            "ts": last_ts, "pid": begun["pid"], "tid": begun["tid"],
            "id": span_id, "args": {"truncated": True},
        })
    return tracks.metadata() + out


def write_chrome_trace(path, events: Iterable[TraceEvent]) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    records = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": records, "displayTimeUnit": "ms"}, fh)
    return len(records)

"""The shared telemetry/observability argparse flags.

``repro.cli`` (single runs) and ``repro.experiments.runner`` (paper
experiments) grew the same observability surface one PR at a time, each
copy-pasting the other's flags — by PR 7 the two copies had drifted:
``--kernel`` defaulted differently (``None`` vs ``"event"``), and the
``--serve-linger``/``--stale-after`` help text disagreed about what it
applied to.  This module is the single source of truth: one *parent*
parser (argparse's composition mechanism — ``add_help=False``, passed
via ``parents=[...]``) that both CLIs inherit, so a new observability
flag lands in both by construction.

Only flags with identical semantics live here.  Flags that merely share
a spelling but mean different things per CLI (``--metrics`` is a file
path on the single-run CLI and a directory on the experiment runner,
``--report``/``--manifest``/``--cpi-stacks`` likewise differ) stay with
their owners — deduplicating those would paper over a real semantic
difference, the opposite of fixing drift.
"""

from __future__ import annotations

import argparse


def telemetry_options() -> argparse.ArgumentParser:
    """The parent parser carrying every shared observability flag.

    Returns a fresh parser each call (argparse parents are consumed by
    reference; sharing one instance across two CLIs would cross-wire
    their defaults).
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--kernel", default=None,
                       choices=("cycle", "event", "batch"),
                       help="simulation kernel (default: event; all three "
                            "produce bit-identical results, wall time "
                            "only — see tests/test_kernel_equivalence.py)")
    group.add_argument("--profile", default=None, metavar="PATH",
                       help="profile the run with cProfile: dump pstats "
                            "to PATH and print the top-20 cumulative "
                            "functions")
    group.add_argument("--trace", default=None, metavar="PATH",
                       help="capture telemetry as Chrome/Perfetto "
                            "trace_event JSON (open in ui.perfetto.dev); "
                            "a .jsonl suffix streams raw events instead "
                            "(single-run CLI only)")
    group.add_argument("--spans", default=None, metavar="PATH",
                       help="trace the host-time orchestration layer "
                            "(scheduling, workers, checkpoints, retries) "
                            "and write the repro.spans/1 document to "
                            "PATH; with --trace the spans also land in "
                            "the Perfetto export as a dedicated host "
                            "process")
    group.add_argument("--metrics-window", type=int, default=2_000,
                       metavar="CYCLES",
                       help="metrics aggregation window in cycles "
                            "(default 2000)")
    group.add_argument("--serve", type=int, default=None, metavar="PORT",
                       help="serve live telemetry over HTTP while the "
                            "run executes (/metrics /healthz /snapshot "
                            "/events; 0 = auto-assign a port, printed "
                            "and recorded in the manifest; implies "
                            "metrics collection)")
    group.add_argument("--serve-linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the telemetry server up this long "
                            "after the run completes (scrape/smoke-test "
                            "window)")
    group.add_argument("--stale-after", type=float, default=30.0,
                       metavar="SECONDS",
                       help="worker heartbeat age after which /healthz "
                            "reports the run degraded (default 30)")
    group.add_argument("--alerts", default=None, metavar="RULES",
                       help="evaluate declarative alert rules (JSON or "
                            "TOML file) against the live event stream; "
                            "a fired severity=page rule makes the run "
                            "exit nonzero (implies metrics collection)")
    group.add_argument("--alerts-out", default=None, metavar="PATH",
                       help="write the repro.alerts/1 event document to "
                            "PATH at the end of the run (requires "
                            "--alerts)")
    return parent

"""Processor substrate: segment-trace ISA and the window/MLP core model."""

from repro.cpu.core_model import CoreModel
from repro.cpu.smt import SMTCoreModel
from repro.cpu.isa import LOAD, NONMEM, STORE, instruction_count, load, nonmem, store

__all__ = [
    "LOAD",
    "NONMEM",
    "STORE",
    "CoreModel",
    "SMTCoreModel",
    "instruction_count",
    "load",
    "nonmem",
    "store",
]

"""Trace-item vocabulary consumed by the core model.

Workloads are *segment traces*: an iterator of plain tuples (kept as
tuples, not objects, for simulation speed):

* ``("N", count)`` — a run of ``count`` non-memory instructions, retired
  arithmetically at issue width;
* ``("L", addr, dependent)`` — a load; when ``dependent`` is true the
  load cannot dispatch until every earlier load has completed (models
  pointer-chasing / low memory-level parallelism);
* ``("S", addr)`` — a store (write-through to L2).

This abstraction captures exactly the levers the paper's evaluation
depends on — memory intensity, read/write mix, spatial locality, and
MLP — without simulating individual register dependences.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

NonMem = Tuple[str, int]
Load = Tuple[str, int, bool]
Store = Tuple[str, int]
TraceItem = Union[NonMem, Load, Store]

NONMEM = "N"
LOAD = "L"
STORE = "S"


def nonmem(count: int) -> NonMem:
    if count < 1:
        raise ValueError(f"non-memory run must be >= 1, got {count}")
    return (NONMEM, count)


def load(addr: int, dependent: bool = False) -> Load:
    if addr < 0:
        raise ValueError("negative address")
    return (LOAD, addr, dependent)


def store(addr: int) -> Store:
    if addr < 0:
        raise ValueError("negative address")
    return (STORE, addr)


def instruction_count(items) -> int:
    """Total instructions represented by a finite trace (for tests)."""
    total = 0
    for item in items:
        total += item[1] if item[0] == NONMEM else 1
    return total


def validate_trace(items) -> Iterator[TraceItem]:
    """Pass-through validator for finite traces (testing aid)."""
    for item in items:
        kind = item[0]
        if kind == NONMEM:
            if item[1] < 1:
                raise ValueError(f"bad non-memory run: {item}")
        elif kind == LOAD:
            if item[1] < 0 or not isinstance(item[2], bool):
                raise ValueError(f"bad load: {item}")
        elif kind == STORE:
            if item[1] < 0:
                raise ValueError(f"bad store: {item}")
        else:
            raise ValueError(f"unknown trace item kind: {item}")
        yield item

"""SMT core: multiple hardware threads sharing one pipeline and L1.

The paper's general VPM case has "multi-threaded processors with shared
L1 caches" (Section 1.1), though its evaluation uses single-threaded
cores.  This module supplies the general case: an
:class:`SMTCoreModel` hosts several hardware-thread contexts that share
the core's issue bandwidth (round-robin, ICOUNT-flavoured), the
write-through L1, and the MSHR file.  Each context keeps its own
instruction window, store-queue credits, and trace.

Every L2 request carries the *global* hardware-thread id, so the VPC
arbiters and capacity manager see SMT contexts exactly like physical
cores — the point of the VPM abstraction.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set

from repro.cache.l1 import L1Cache
from repro.cache.mshr import MSHRFile
from repro.common.config import CoreConfig, L1Config
from repro.common.records import AccessType, MemoryRequest, make_request
from repro.cpu.isa import LOAD, NONMEM, STORE, TraceItem


class _ThreadContext:
    """Architectural state private to one hardware thread."""

    def __init__(self, thread_id: int, trace: Iterator[TraceItem]) -> None:
        self.thread_id = thread_id
        self.trace = iter(trace)
        self.dispatched = 0
        self.outstanding_loads: Set[int] = set()
        self.oldest_load = -1
        self.outstanding_stores = 0
        self.stashed: Optional[TraceItem] = None
        self.nonmem_left = 0
        self.done = False

    def next_item(self) -> Optional[TraceItem]:
        if self.stashed is not None:
            item, self.stashed = self.stashed, None
            return item
        try:
            return next(self.trace)
        except StopIteration:
            self.done = True
            return None

    def window_headroom(self, window_size: int) -> int:
        if not self.outstanding_loads:
            return window_size
        return window_size - (self.dispatched - self.oldest_load)

    def track_load(self, seq: int) -> None:
        if not self.outstanding_loads:
            self.oldest_load = seq
        self.outstanding_loads.add(seq)


class SMTCoreModel:
    """A core running several hardware threads over shared resources.

    ``thread_ids`` are the global ids the contexts expose to the memory
    system; ``traces`` supplies one trace per context.  Fetch policy:
    round-robin over ready contexts each cycle, with the whole
    ``issue_width`` available to whichever contexts can use it (the
    rotation start advances every cycle so no context gets a structural
    priority).
    """

    def __init__(
        self,
        thread_ids: List[int],
        config: CoreConfig,
        l1_config: L1Config,
        traces: List[Iterator[TraceItem]],
        send_request: Callable[[int, MemoryRequest, int], None],
    ) -> None:
        if not thread_ids:
            raise ValueError("SMT core needs at least one hardware thread")
        if len(thread_ids) != len(traces):
            raise ValueError("one trace per hardware thread required")
        self.thread_ids = list(thread_ids)
        self.config = config
        self.l1 = L1Cache(l1_config)
        self.mshrs = MSHRFile(l1_config.mshrs)
        self._send = send_request
        self._line_size = l1_config.line_size
        self._contexts = {
            tid: _ThreadContext(tid, trace)
            for tid, trace in zip(thread_ids, traces)
        }
        self._rotate = 0
        self.cycles = 0
        # MSHRs are hard-partitioned between contexts.  Without the
        # quota, a deterministic lockstep lets one context monopolize
        # the whole file and starve its sibling indefinitely — the
        # intra-core analogue of the paper's shared-cache starvation,
        # and the reason real SMT designs partition miss resources.
        self._mshr_quota = max(1, l1_config.mshrs // len(thread_ids))
        self._mshr_in_use = {tid: 0 for tid in thread_ids}
        # Memoized quiescent() verdict.  While every context is blocked
        # no tick dispatches anything, so the aggregate verdict can only
        # flip back via on_response (which clears this).
        self._quiet = False

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        self.cycles += 1
        budget = self.config.issue_width
        order = (
            self.thread_ids[self._rotate:] + self.thread_ids[:self._rotate]
        )
        self._rotate = (self._rotate + 1) % len(self.thread_ids)
        # Each context dispatches until it stalls, then the next takes
        # the remaining budget (a coarse but fair ICOUNT stand-in).
        for tid in order:
            if budget <= 0:
                break
            budget = self._dispatch_from(self._contexts[tid], budget, now)

    def _dispatch_from(self, ctx: _ThreadContext, budget: int, now: int) -> int:
        while budget > 0 and not ctx.done:
            if ctx.nonmem_left:
                take = min(budget, ctx.nonmem_left,
                           ctx.window_headroom(self.config.window_size))
                if take <= 0:
                    break
                ctx.nonmem_left -= take
                ctx.dispatched += take
                budget -= take
                continue
            item = ctx.next_item()
            if item is None:
                break
            kind = item[0]
            if kind == NONMEM:
                ctx.nonmem_left = item[1]
                continue
            if ctx.window_headroom(self.config.window_size) <= 0:
                ctx.stashed = item
                break
            if kind == LOAD:
                if not self._dispatch_load(ctx, item, now):
                    break
            elif kind == STORE:
                if not self._dispatch_store(ctx, item, now):
                    break
            else:
                raise RuntimeError(f"unknown trace item {item}")
            budget -= 1
        return budget

    def _dispatch_load(self, ctx: _ThreadContext, item, now: int) -> bool:
        addr, dependent = item[1], item[2]
        if dependent and ctx.outstanding_loads:
            ctx.stashed = item
            return False
        if self.l1.load(addr):
            ctx.dispatched += 1
            return True
        line = addr // self._line_size
        needs_primary = line not in self.mshrs
        if needs_primary and (
            not self.mshrs.can_allocate(line)
            or self._mshr_in_use[ctx.thread_id] >= self._mshr_quota
        ):
            ctx.stashed = item
            return False
        seq = ctx.dispatched
        # Coalescing can cross hardware threads, but a context only
        # waits on its own sequence numbers.
        primary = self.mshrs.allocate(line, self._tagged_seq(ctx, seq), now=now)
        if primary:
            self._mshr_in_use[ctx.thread_id] += 1
        ctx.track_load(seq)
        ctx.dispatched += 1
        if primary:
            request = make_request(
                ctx.thread_id, addr, AccessType.READ, self._line_size, seq, now
            )
            self._send(ctx.thread_id, request, now)
        return True

    def _dispatch_store(self, ctx: _ThreadContext, item, now: int) -> bool:
        addr = item[1]
        if ctx.outstanding_stores >= self.config.store_queue:
            ctx.stashed = item
            return False
        self.l1.store(addr)
        ctx.outstanding_stores += 1
        ctx.dispatched += 1
        request = make_request(
            ctx.thread_id, addr, AccessType.WRITE, self._line_size,
            ctx.dispatched - 1, now,
        )
        self._send(ctx.thread_id, request, now)
        return True

    def _tagged_seq(self, ctx: _ThreadContext, seq: int) -> int:
        """Disambiguate per-context sequence numbers in the shared MSHRs."""
        return seq * 64 + self.thread_ids.index(ctx.thread_id)

    # ------------------------------------------------------------------ #
    # Skip-ahead support (event kernel).
    # ------------------------------------------------------------------ #

    def _ctx_blocked(self, ctx: _ThreadContext) -> bool:
        """Would ``_dispatch_from(ctx)`` provably dispatch nothing and
        leave all state unchanged (modulo the L1 retry-probe counters)?"""
        if ctx.done:
            return True
        window = self.config.window_size
        if ctx.nonmem_left:
            return ctx.window_headroom(window) <= 0
        item = ctx.stashed
        if item is None:
            return False  # would pull from the trace: a state change
        if ctx.window_headroom(window) <= 0:
            return True  # clean re-stash (unlike CoreModel, nothing drops)
        kind = item[0]
        if kind == LOAD:
            if item[2] and ctx.outstanding_loads:
                return True  # dependence stall
            line = item[1] // self._line_size
            if self.l1.array.contains(line):
                return False  # retry would hit and dispatch
            if line in self.mshrs:
                return False  # retry would coalesce as a secondary miss
            return (
                not self.mshrs.can_allocate(line)
                or self._mshr_in_use[ctx.thread_id] >= self._mshr_quota
            )
        if kind == STORE:
            return ctx.outstanding_stores >= self.config.store_queue
        return False

    def _ctx_probing(self, ctx: _ThreadContext) -> bool:
        """A blocked context that still probes the shared L1 each tick
        (stashed load, headroom available, not dependence-blocked)."""
        if ctx.done or ctx.nonmem_left:
            return False
        item = ctx.stashed
        if item is None or item[0] != LOAD:
            return False
        if ctx.window_headroom(self.config.window_size) <= 0:
            return False  # re-stashed before the L1 probe
        return not (item[2] and ctx.outstanding_loads)

    def quiescent(self) -> bool:
        if self._quiet:
            return True
        verdict = all(
            self._ctx_blocked(ctx) for ctx in self._contexts.values()
        )
        if verdict:
            self._quiet = True
        return verdict

    def fast_forward(self, delta: int, now: int) -> None:
        """Account ``delta`` skipped ticks of a quiescent core exactly."""
        self.cycles += delta
        self._rotate = (self._rotate + delta) % len(self.thread_ids)
        for ctx in self._contexts.values():
            if self._ctx_probing(ctx):
                self.l1.load_misses += delta
                self.l1.array.misses += delta

    # ------------------------------------------------------------------ #
    # Response side.
    # ------------------------------------------------------------------ #

    def on_response(self, request: MemoryRequest, now: int) -> None:
        self._quiet = False  # a response can wake any blocked context
        ctx = self._contexts[request.thread_id]
        if request.access is AccessType.WRITE:
            if ctx.outstanding_stores <= 0:
                raise RuntimeError("store ack with no store outstanding")
            ctx.outstanding_stores -= 1
            return
        entry = self.mshrs.complete(request.line, now=now)
        primary_owner = self.thread_ids[entry.primary_seq % 64]
        self._mshr_in_use[primary_owner] -= 1
        for tagged in [entry.primary_seq] + entry.waiters:
            owner = self._contexts[self.thread_ids[tagged % 64]]
            owner.outstanding_loads.discard(tagged // 64)
            if owner.outstanding_loads:
                owner.oldest_load = min(owner.outstanding_loads)
        self.l1.fill(request.addr, request.thread_id)

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #

    def dispatched_of(self, thread_id: int) -> int:
        return self._contexts[thread_id].dispatched

    def ipc_of(self, thread_id: int, cycles: Optional[int] = None) -> float:
        denom = cycles if cycles is not None else self.cycles
        return self._contexts[thread_id].dispatched / denom if denom else 0.0

    @property
    def done(self) -> bool:
        return all(ctx.done for ctx in self._contexts.values())

"""Window/MLP-limited core model.

A deliberately simple out-of-order core abstraction that preserves the
levers the paper's evaluation turns on (see DESIGN.md):

* **dispatch width** — up to ``issue_width`` instructions per cycle;
* **instruction window** — dispatch may run at most ``window_size``
  instructions past the oldest incomplete load (reorder-buffer stall);
* **MSHRs** — at most ``l1.mshrs`` outstanding L2 load lines, with
  secondary-miss coalescing;
* **dependent loads** — a load flagged ``dependent`` waits for all
  earlier loads (low-MLP / pointer-chasing behaviour);
* **store queue** — at most ``store_queue`` stores in flight to the L2
  store gathering buffers; the SGB's acknowledgement returns the credit,
  so SGB back-pressure propagates into core stalls.

Non-memory instructions retire at dispatch (their short latencies are
far inside the window); the L1's 2-cycle hit latency is likewise folded
into the window approximation.  IPC is dispatched instructions per
cycle, which over any sustained interval equals retirement rate.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set

from repro.cache.l1 import L1Cache
from repro.cache.mshr import MSHRFile
from repro.common.config import CoreConfig, L1Config
from repro.common.records import AccessType, MemoryRequest, make_request
from repro.cpu.isa import LOAD, NONMEM, STORE, TraceItem
from repro.telemetry.cycles import R_IDLE, R_LOAD, R_MSHR, R_STORE


class CoreModel:
    """One hardware thread executing a segment trace."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        l1_config: L1Config,
        trace: Iterator[TraceItem],
        send_request: Callable[[int, MemoryRequest, int], None],
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.l1 = L1Cache(l1_config)
        self.mshrs = MSHRFile(l1_config.mshrs)
        self._trace = iter(trace)
        self._send = send_request
        self._line_size = l1_config.line_size

        self.dispatched = 0            # == committed instructions (see module doc)
        self.cycles = 0
        self._outstanding_loads: Set[int] = set()   # seqs of incomplete loads
        self._oldest_load = -1                       # cached min of the set
        self._outstanding_stores = 0
        self._current: Optional[TraceItem] = None
        self._nonmem_left = 0
        self.done = False
        self.stall_cycles = 0
        # Memoized quiescent() verdict.  A True verdict is sticky: every
        # quiescent state can only be left via on_response (which clears
        # this), so repeated per-cycle checks cost one attribute read.
        self._quiet = False
        # Cycle-accounting sink (None when disabled; see telemetry.cycles).
        self._acct = None
        # Request-scope tracer (None when disabled; telemetry.requests).
        self._rtrace = None
        # Prefetch statistics (prefetching is off unless configured).
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        self.cycles += 1
        if self.done:
            return
        budget = self.config.issue_width
        progressed = False
        while budget > 0:
            if self._nonmem_left:
                take = min(budget, self._nonmem_left, self._window_headroom())
                if take <= 0:
                    break
                self._nonmem_left -= take
                self.dispatched += take
                budget -= take
                progressed = True
                continue
            item = self._next_item()
            if item is None:
                break
            kind = item[0]
            if kind == NONMEM:
                self._nonmem_left = item[1]
                continue
            if self._window_headroom() <= 0:
                break
            if kind == LOAD:
                if not self._dispatch_load(item[1], item[2], now):
                    break
            elif kind == STORE:
                if not self._dispatch_store(item[1], now):
                    break
            else:
                raise RuntimeError(f"unknown trace item {item}")
            budget -= 1
            progressed = True
        if not progressed and not self.done:
            self.stall_cycles += 1
        if self._acct is not None:
            if progressed:
                self._acct.progress(self.core_id, now, self._stall_reason())
            else:
                self._acct.stall(self.core_id, now, self._stall_reason())

    def _stall_reason(self) -> int:
        """Classify why the *next* tick would stall (mirrors ``tick``'s
        break conditions exactly — including the stash-drop on a window
        stall, which must classify as a load stall, not idle)."""
        if self.done:
            return R_IDLE
        if self._nonmem_left:
            return R_LOAD  # window stall: waiting on the oldest load
        if self._outstanding_loads and self._window_headroom() <= 0:
            return R_LOAD  # window stall (a stashed item would be dropped)
        item = self._current
        if item is None:
            return R_IDLE  # next tick pulls fresh trace work
        kind = item[0]
        if kind == LOAD:
            if item[2] and self._outstanding_loads:
                return R_LOAD  # dependence stall
            line = item[1] // self._line_size
            if self.l1.array.contains(line):
                return R_LOAD  # retry would hit; transiently blocked
            if not self.mshrs.can_allocate(line):
                return R_MSHR
            return R_LOAD
        if kind == STORE:
            return R_STORE
        return R_IDLE

    def _next_item(self) -> Optional[TraceItem]:
        if self._current is not None:
            item, self._current = self._current, None
            return item
        try:
            return next(self._trace)
        except StopIteration:
            self.done = True
            return None

    def _stash(self, item: TraceItem) -> None:
        self._current = item

    def _window_headroom(self) -> int:
        if not self._outstanding_loads:
            return self.config.window_size
        return self.config.window_size - (self.dispatched - self._oldest_load)

    def _dispatch_load(self, addr: int, dependent: bool, now: int) -> bool:
        if dependent and self._outstanding_loads:
            self._stash((LOAD, addr, dependent))
            return False
        if self.l1.load(addr):
            self.dispatched += 1
            return True
        line = addr // self._line_size
        if not self.mshrs.can_allocate(line):
            self._stash((LOAD, addr, dependent))
            return False
        seq = self.dispatched
        primary = self.mshrs.allocate(line, seq, now=now)
        self._track_load(seq)
        self.dispatched += 1
        if primary:
            request = make_request(
                self.core_id, addr, AccessType.READ, self._line_size, seq, now
            )
            if self._rtrace is not None:
                self._rtrace.issued(request, now)
            self._send(self.core_id, request, now)
            if self.config.prefetch_enabled:
                self._issue_prefetches(line, now)
        return True

    def _issue_prefetches(self, miss_line: int, now: int) -> None:
        """Next-line prefetcher: on a demand miss to ``miss_line``, fetch
        the following ``prefetch_degree`` lines.  Prefetches consume MSHRs
        (the contention/pollution mechanism of Section 4.3's monotonicity
        discussion) but never block the instruction window."""
        for degree in range(1, self.config.prefetch_degree + 1):
            line = miss_line + degree
            addr = line * self._line_size
            if self.l1.array.contains(line):
                continue
            if line in self.mshrs or not self.mshrs.can_allocate(line):
                continue
            self.mshrs.allocate(line, seq=-1, is_prefetch=True, now=now)
            request = make_request(
                self.core_id, addr, AccessType.READ, self._line_size, -1, now
            )
            request.is_prefetch = True
            self._send(self.core_id, request, now)
            self.prefetches_issued += 1

    def _dispatch_store(self, addr: int, now: int) -> bool:
        if self._outstanding_stores >= self.config.store_queue:
            self._stash((STORE, addr))
            return False
        self.l1.store(addr)
        self._outstanding_stores += 1
        self.dispatched += 1
        request = make_request(
            self.core_id, addr, AccessType.WRITE, self._line_size,
            self.dispatched - 1, now,
        )
        self._send(self.core_id, request, now)
        return True

    def _track_load(self, seq: int) -> None:
        if not self._outstanding_loads:
            self._oldest_load = seq
        self._outstanding_loads.add(seq)

    # ------------------------------------------------------------------ #
    # Skip-ahead support (event kernel).
    #
    # ``quiescent`` answers: would ``tick`` leave every piece of state
    # untouched except ``cycles``/``stall_cycles`` and — in the
    # MSHR-blocked probing state — the L1 miss counters bumped by the
    # per-cycle retry probe?  Only ``on_response`` can change the answer,
    # so between now and the next crossbar delivery the core may be
    # fast-forwarded with ``fast_forward``.  The predicate must be exact:
    # a false positive would diverge from the cycle-by-cycle kernel.
    # ------------------------------------------------------------------ #

    def _blocked_probing(self) -> bool:
        """True when the stalled state re-probes the L1 every cycle
        (stashed load, not dependence-blocked, missing with full MSHRs)."""
        if self._nonmem_left:
            return False
        item = self._current
        if item is None or item[0] != LOAD:
            return False
        if item[2] and self._outstanding_loads:
            return False  # dependence stall: no L1 probe happens
        return True

    def quiescent(self) -> bool:
        if self._quiet:
            return True
        verdict = self._quiescent_now()
        if verdict:
            self._quiet = True
        return verdict

    def _quiescent_now(self) -> bool:
        if self.done:
            return True
        if self._nonmem_left:
            # Dispatch of buffered non-memory work stalls only on the
            # window; any headroom would dispatch instructions.
            return self._window_headroom() <= 0
        item = self._current
        if item is None:
            # Next tick pulls from the trace — never skippable (the pull
            # itself is a state change, and under a window stall the
            # pulled item is consumed).
            return False
        if self._window_headroom() <= 0:
            # Window-stall with a stashed item: the tick would *drop*
            # the stash (see ``tick``: the headroom check precedes
            # re-stashing).  That is a state change; do not skip.
            return False
        kind = item[0]
        if kind == LOAD:
            if item[2] and self._outstanding_loads:
                return True  # dependence stall, broken only by a response
            line = item[1] // self._line_size
            # The retry probe would hit (dispatch) or find MSHR room.
            if self.l1.array.contains(line):
                return False
            return not self.mshrs.can_allocate(line)
        if kind == STORE:
            return self._outstanding_stores >= self.config.store_queue
        return False

    def fast_forward(self, delta: int, now: int) -> None:
        """Account ``delta`` skipped ticks of a quiescent core exactly."""
        self.cycles += delta
        if self.done:
            return
        self.stall_cycles += delta
        if self._blocked_probing():
            # Each skipped tick would have retried ``l1.load`` and missed
            # (``lookup`` on a miss touches only the miss counters).
            self.l1.load_misses += delta
            self.l1.array.misses += delta

    # ------------------------------------------------------------------ #
    # Response side (wired to the crossbar's response lane).
    # ------------------------------------------------------------------ #

    def on_response(self, request: MemoryRequest, now: int) -> None:
        self._quiet = False  # a response can wake any quiescent state
        if request.access is AccessType.WRITE:
            # Store-gathering-buffer acknowledgement: credit returned.
            if self._outstanding_stores <= 0:
                raise RuntimeError("store ack with no store outstanding")
            self._outstanding_stores -= 1
            return
        entry = self.mshrs.complete(request.line, now=now)
        if entry.is_prefetch and entry.demand_joined:
            self.prefetches_useful += 1
        for seq in [entry.primary_seq] + entry.waiters:
            self._outstanding_loads.discard(seq)
        self.l1.fill(request.addr, self.core_id)
        if self._outstanding_loads:
            self._oldest_load = min(self._outstanding_loads)

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #

    @property
    def outstanding_loads(self) -> int:
        return len(self._outstanding_loads)

    @property
    def outstanding_stores(self) -> int:
        return self._outstanding_stores

    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches a demand load coalesced onto."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    def ipc(self, cycles: Optional[int] = None) -> float:
        denom = cycles if cycles is not None else self.cycles
        return self.dispatched / denom if denom else 0.0

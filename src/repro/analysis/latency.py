"""Per-request latency analysis from the lifecycle timestamps.

Every :class:`~repro.common.records.MemoryRequest` is stamped as it
moves through the bank; with ``CMPSystem(..., record_requests=True)``
the system keeps completed requests in ``system.request_log``, and the
functions here turn that log into per-thread / per-stage latency
distributions — the data behind "preemption latency is amortized over
bursts" style arguments (Section 4.1.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.records import MemoryRequest


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of one latency population (cycles)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: int

    @staticmethod
    def of(samples: Sequence[int]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0)
        ordered = sorted(samples)

        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1)
            return float(ordered[max(index, 0)])

        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(0.50),
            p95=percentile(0.95),
            p99=percentile(0.99),
            maximum=ordered[-1],
        )


def load_latency(request: MemoryRequest) -> Optional[int]:
    """Issue-to-critical-word latency of a completed load, else None."""
    if not request.is_read:
        return None
    if request.issued_cycle < 0 or request.critical_word_cycle < 0:
        return None
    return request.critical_word_cycle - request.issued_cycle


def queueing_delay(request: MemoryRequest) -> Optional[int]:
    """Cycles between bank arrival and winning controller admission —
    the component inflated by inter-thread interference."""
    if request.arrived_bank_cycle < 0 or request.entered_arbitration_cycle < 0:
        return None
    return request.entered_arbitration_cycle - request.arrived_bank_cycle


# Stage boundaries of the read pipeline, as (name, start-stamp,
# end-stamp) attribute pairs.  This is the shared vocabulary between
# the list-based summaries here and the streaming histograms in
# ``repro.telemetry.histograms``.
_STAGES = (
    ("queueing", "arrived_bank_cycle", "entered_arbitration_cycle"),
    ("tag", "entered_arbitration_cycle", "tag_done_cycle"),
    ("data", "tag_done_cycle", "data_done_cycle"),
    ("bus", "data_done_cycle", "critical_word_cycle"),
)


def stage_latencies(request: MemoryRequest) -> Dict[str, int]:
    """Per-stage cycle counts of one request (only stages whose both
    stamps are present), plus the issue-to-critical-word ``total`` for
    completed loads."""
    out: Dict[str, int] = {}
    total = load_latency(request)
    if total is not None:
        out["total"] = total
    for name, start_attr, end_attr in _STAGES:
        start = getattr(request, start_attr)
        end = getattr(request, end_attr)
        if start >= 0 and end >= start:
            out[name] = end - start
    return out


def loads_by_thread(
    requests: Sequence[MemoryRequest],
) -> Dict[int, LatencySummary]:
    """Per-thread load-latency summaries (demand loads only)."""
    samples: Dict[int, List[int]] = {}
    for request in requests:
        if request.is_prefetch:
            continue
        latency = load_latency(request)
        if latency is None:
            continue
        samples.setdefault(request.thread_id, []).append(latency)
    return {tid: LatencySummary.of(vals) for tid, vals in sorted(samples.items())}


def queueing_by_thread(
    requests: Sequence[MemoryRequest],
) -> Dict[int, LatencySummary]:
    samples: Dict[int, List[int]] = {}
    for request in requests:
        delay = queueing_delay(request)
        if delay is None:
            continue
        samples.setdefault(request.thread_id, []).append(delay)
    return {tid: LatencySummary.of(vals) for tid, vals in sorted(samples.items())}


def format_report(summaries: Dict[int, LatencySummary], title: str) -> str:
    lines = [title, f"{'thread':>7} {'count':>7} {'mean':>8} "
                    f"{'p50':>7} {'p95':>7} {'p99':>7} {'max':>7}"]
    for thread_id, summary in summaries.items():
        lines.append(
            f"{thread_id:>7} {summary.count:>7} {summary.mean:>8.1f} "
            f"{summary.p50:>7.0f} {summary.p95:>7.0f} "
            f"{summary.p99:>7.0f} {summary.maximum:>7}"
        )
    return "\n".join(lines)

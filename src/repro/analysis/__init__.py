"""Post-hoc analysis utilities (latency distributions, reports)."""

from repro.analysis.latency import (
    LatencySummary,
    format_report,
    load_latency,
    loads_by_thread,
    queueing_by_thread,
    queueing_delay,
)

__all__ = [
    "LatencySummary",
    "format_report",
    "load_latency",
    "loads_by_thread",
    "queueing_by_thread",
    "queueing_delay",
]

"""Software allocation policy: feedback control of VPC shares.

The paper is explicit about the division of labour: "the policies that
determine the actual allocations are beyond our scope ... presumably
through a combination of application and system software, and our job
is to assure that the requested allocations are provided" (Section 1).
This module supplies the missing software half for users of the
library: a small feedback controller that periodically reads a target
thread's achieved IPC and reprograms the VPC control registers until
the target is met with the *smallest sufficient* share — releasing the
remainder for the fairness policy to distribute.

The controller only ever touches the architected interface
(:class:`~repro.core.registers.VPCControlRegisters`), exactly as real
system software would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.system.cmp import CMPSystem
from repro.telemetry.events import (
    CAT_QOS,
    PH_COUNTER,
    PH_INSTANT,
    TraceEvent,
)


@dataclass
class AllocationDecision:
    """One controller epoch: what was observed and what was programmed."""

    cycle: int
    observed_ipc: float
    target_ipc: float
    share_before: float
    share_after: float


class FeedbackAllocator:
    """Drives one thread's bandwidth share toward an IPC target.

    Multiplicative-increase / multiplicative-decrease on the subject's
    share; whatever the subject does not need is split equally among the
    other threads.  ``min_share`` / ``max_share`` bound the subject so
    other threads always keep some guaranteed service.
    """

    def __init__(
        self,
        system: CMPSystem,
        thread_id: int,
        target_ipc: float,
        epoch_cycles: int = 5_000,
        increase: float = 1.25,
        decrease: float = 0.9,
        min_share: float = 0.05,
        max_share: float = 0.95,
        deadband: float = 0.03,
    ) -> None:
        if system.config.arbiter != "vpc":
            raise ValueError("feedback allocation requires VPC arbiters")
        if not 0 <= thread_id < system.config.n_threads:
            raise ValueError(f"thread {thread_id} out of range")
        if target_ipc <= 0:
            raise ValueError("target IPC must be positive")
        if epoch_cycles < 1:
            raise ValueError("epoch must be >= 1 cycle")
        if not 0 < min_share < max_share <= 1.0:
            raise ValueError("need 0 < min_share < max_share <= 1")
        if increase <= 1.0 or not 0 < decrease < 1.0:
            raise ValueError("increase must exceed 1 and decrease be in (0,1)")
        self.system = system
        self.thread_id = thread_id
        self.target_ipc = target_ipc
        self.epoch_cycles = epoch_cycles
        self.increase = increase
        self.decrease = decrease
        self.min_share = min_share
        self.max_share = max_share
        self.deadband = deadband
        self.decisions: List[AllocationDecision] = []
        self._epoch_start_cycle = system.cycle
        self._epoch_start_insts = system.cores[thread_id].dispatched

    @property
    def current_share(self) -> float:
        return self.system.registers.bandwidth["data"][self.thread_id]

    def _program(self, share: float) -> None:
        """Write the subject's share and split the rest equally.

        Shrinking writes must precede growing ones: the register file
        rejects transient over-allocation.
        """
        n = self.system.config.n_threads
        others = (1.0 - share) / (n - 1) if n > 1 else 0.0
        registers = self.system.registers
        writes = [(self.thread_id, share)] + [
            (tid, others) for tid in range(n) if tid != self.thread_id
        ]
        current = registers.bandwidth["data"]
        for tid, value in sorted(writes, key=lambda w: w[1] - current[w[0]]):
            registers.write_bandwidth(tid, value)

    def epoch(self) -> AllocationDecision:
        """Run one epoch and adjust the allocation."""
        self.system.run(self.epoch_cycles)
        core = self.system.cores[self.thread_id]
        insts = core.dispatched - self._epoch_start_insts
        observed = insts / self.epoch_cycles
        before = self.current_share

        after = before
        if observed < self.target_ipc * (1.0 - self.deadband):
            after = min(self.max_share, before * self.increase)
        elif observed > self.target_ipc * (1.0 + self.deadband):
            after = max(self.min_share, before * self.decrease)
        if after != before:
            self._program(after)

        decision = AllocationDecision(
            cycle=self.system.cycle,
            observed_ipc=observed,
            target_ipc=self.target_ipc,
            share_before=before,
            share_after=after,
        )
        self.decisions.append(decision)
        self._emit(decision)
        self._epoch_start_cycle = self.system.cycle
        self._epoch_start_insts = core.dispatched
        return decision

    def _emit(self, decision: AllocationDecision) -> None:
        """Mirror the decision onto the telemetry bus (when attached):
        an instant on the shared ``qos.controller`` track plus the
        subject's share as a counter, so feedback epochs line up with
        the rest of the trace in Perfetto."""
        bus = self.system.telemetry
        if bus is None:
            return
        bus.emit(TraceEvent(
            ts=decision.cycle, phase=PH_INSTANT, category=CAT_QOS,
            name="feedback", track="qos.controller", tid=self.thread_id,
            args={
                "observed_ipc": decision.observed_ipc,
                "target_ipc": decision.target_ipc,
                "share_before": decision.share_before,
                "share_after": decision.share_after,
            },
        ))
        bus.emit(TraceEvent(
            ts=decision.cycle, phase=PH_COUNTER, category=CAT_QOS,
            name="phi", track="qos.shares",
            args={f"t{self.thread_id}": decision.share_after},
        ))

    def run(self, epochs: int) -> List[AllocationDecision]:
        return [self.epoch() for _ in range(epochs)]

    def converged(self, last: int = 3) -> bool:
        """Target met (within the deadband) for the ``last`` epochs,
        or the subject is pinned at ``max_share`` (infeasible target)."""
        if len(self.decisions) < last:
            return False
        recent = self.decisions[-last:]
        if all(d.share_after >= self.max_share for d in recent):
            return True
        return all(
            d.observed_ipc >= d.target_ipc * (1.0 - 2 * self.deadband)
            for d in recent
        )

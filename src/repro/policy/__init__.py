"""Software allocation policies driving the VPC control registers.

The paper scopes allocation *policy* out ("presumably through a
combination of application and system software"); this package supplies
reference policies a system integrator can start from.
"""

from repro.policy.feedback import AllocationDecision, FeedbackAllocator

__all__ = ["AllocationDecision", "FeedbackAllocator"]

"""Entry point for ``python -m repro``.

``python -m repro top ...`` dispatches to the live dashboard
(:mod:`repro.telemetry.dashboard`), ``fleet`` to the federated metrics
plane (:mod:`repro.telemetry.federation`), ``history``/``diff`` to the
run-history ledger (:mod:`repro.telemetry.history`); anything else is a
simulation run (:mod:`repro.cli`).
"""

import sys

if len(sys.argv) > 1 and sys.argv[1] == "fleet":
    from repro.telemetry.federation import main as fleet_main

    raise SystemExit(fleet_main(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "top":
    from repro.telemetry.dashboard import main as top_main

    raise SystemExit(top_main(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "history":
    from repro.telemetry.history import main_history

    raise SystemExit(main_history(sys.argv[2:]))

if len(sys.argv) > 1 and sys.argv[1] == "diff":
    from repro.telemetry.history import main_diff

    raise SystemExit(main_diff(sys.argv[2:]))

from repro.cli import main

raise SystemExit(main())

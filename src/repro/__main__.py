"""Entry point for ``python -m repro``.

``python -m repro top ...`` dispatches to the live dashboard
(:mod:`repro.telemetry.dashboard`); anything else is a simulation run
(:mod:`repro.cli`).
"""

import sys

if len(sys.argv) > 1 and sys.argv[1] == "top":
    from repro.telemetry.dashboard import main as top_main

    raise SystemExit(top_main(sys.argv[2:]))

from repro.cli import main

raise SystemExit(main())

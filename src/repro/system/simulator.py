"""Warmup/measure simulation driver and its result record.

Every experiment runs the same protocol the paper's sampled-trace
methodology implies: warm the caches and buffers for ``warmup`` cycles,
snapshot all counters, then measure for ``measure`` cycles.  All
reported IPCs and utilizations cover only the measurement interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.system.cmp import CMPSystem


@dataclass
class SimulationResult:
    """Measurement-interval statistics for one simulation."""

    cycles: int
    warmup_cycles: int
    ipcs: List[float]
    instructions: List[int]
    utilizations: Dict[str, float]               # averaged over banks
    bank_utilizations: List[Dict[str, float]]    # per bank
    l2_reads: int
    l2_writes: int
    stores_received: int
    stores_gathered: int
    read_hits: int
    read_misses: int
    write_hits: int
    write_misses: int
    extras: Dict[str, float] = field(default_factory=dict)
    # Metrics snapshot (repro.telemetry.metrics) when a collector was
    # passed to run_simulation; None otherwise, so results from
    # metrics-free runs compare equal regardless of observability.
    metrics: Optional[Dict] = None

    @property
    def write_fraction(self) -> float:
        """Writes as a fraction of L2 requests after gathering (Fig. 7)."""
        total = self.l2_reads + self.l2_writes
        return self.l2_writes / total if total else 0.0

    @property
    def gathering_rate(self) -> float:
        """Fraction of stores merged in the gathering buffers (Fig. 7)."""
        if not self.stores_received:
            return 0.0
        return self.stores_gathered / self.stores_received

    @property
    def l2_miss_rate(self) -> float:
        accesses = self.read_hits + self.read_misses + self.write_hits + self.write_misses
        if not accesses:
            return 0.0
        return (self.read_misses + self.write_misses) / accesses

    def ipc_of(self, thread_id: int) -> float:
        return self.ipcs[thread_id]


def run_simulation(
    system: CMPSystem,
    warmup: int = 20_000,
    measure: int = 60_000,
    metrics=None,
    on_window=None,
) -> SimulationResult:
    """Run ``system`` with a warmup phase, measuring the steady state.

    ``metrics`` is an optional :class:`repro.telemetry.metrics
    .MetricsCollector`; when given, the measurement phase runs in
    window-sized chunks with a gauge sample pulled at every boundary.
    Chunked ``run()`` calls are bit-identical to one call (the
    skip-ahead kernel's exactness contract — adaptation changes which
    cycles are *skipped*, never any simulated state), so sampling does
    not perturb the result.

    ``on_window`` is an optional callback fired with the current cycle
    after each window boundary's gauge sample — the streaming hook the
    live observability plane (``--serve``) uses to flush per-window
    snapshots mid-run.  It requires ``metrics`` (windows only exist in
    chunked mode) and observes strictly after the chunk has simulated,
    so it cannot perturb results; when ``None`` the cost is one ``is
    not None`` test per window.
    """
    if warmup < 0 or measure <= 0:
        raise ValueError("warmup must be >= 0 and measure > 0")
    if on_window is not None and metrics is None:
        raise ValueError("on_window requires a metrics collector")
    system.run(warmup)

    n_threads = system.config.n_threads
    dispatched_before = [
        system.thread_dispatched(tid) for tid in range(n_threads)
    ]
    meter_snaps = [bank.utilization_snapshot() for bank in system.banks]
    counter_snaps = [bank.counters.snapshot() for bank in system.banks]

    if metrics is None:
        system.run(measure)
    else:
        metrics.sample(system)
        remaining = measure
        while remaining > 0:
            chunk = min(metrics.window, remaining)
            system.run(chunk)
            metrics.sample(system)
            remaining -= chunk
            if on_window is not None:
                on_window(system.cycle)
        metrics.finish(system.cycle)

    instructions = [
        system.thread_dispatched(tid) - dispatched_before[tid]
        for tid in range(n_threads)
    ]
    ipcs = [insts / measure for insts in instructions]

    bank_utils = [
        bank.utilizations(measure, snapshots=snap)
        for bank, snap in zip(system.banks, meter_snaps)
    ]
    avg_utils = {
        name: sum(b[name] for b in bank_utils) / len(bank_utils)
        for name in ("tag", "data", "bus")
    }

    deltas = [
        bank.counters.since(snap)
        for bank, snap in zip(system.banks, counter_snaps)
    ]

    def total(name: str) -> int:
        return sum(delta.get(name, 0) for delta in deltas)

    return SimulationResult(
        cycles=measure,
        warmup_cycles=warmup,
        ipcs=ipcs,
        instructions=instructions,
        metrics=metrics.snapshot() if metrics is not None else None,
        utilizations=avg_utils,
        bank_utilizations=bank_utils,
        l2_reads=total("read_requests"),
        l2_writes=total("write_requests"),
        stores_received=total("stores_received"),
        stores_gathered=total("stores_gathered"),
        read_hits=total("read_hits"),
        read_misses=total("read_misses"),
        write_hits=total("write_hits"),
        write_misses=total("write_misses"),
    )

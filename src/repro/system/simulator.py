"""Warmup/measure simulation driver and its result record.

Every experiment runs the same protocol the paper's sampled-trace
methodology implies: warm the caches and buffers for ``warmup`` cycles,
snapshot all counters, then measure for ``measure`` cycles.  All
reported IPCs and utilizations cover only the measurement interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.system.cmp import CMPSystem


@dataclass
class SimulationResult:
    """Measurement-interval statistics for one simulation."""

    cycles: int
    warmup_cycles: int
    ipcs: List[float]
    instructions: List[int]
    utilizations: Dict[str, float]               # averaged over banks
    bank_utilizations: List[Dict[str, float]]    # per bank
    l2_reads: int
    l2_writes: int
    stores_received: int
    stores_gathered: int
    read_hits: int
    read_misses: int
    write_hits: int
    write_misses: int
    extras: Dict[str, float] = field(default_factory=dict)
    # Metrics snapshot (repro.telemetry.metrics) when a collector was
    # passed to run_simulation; None otherwise, so results from
    # metrics-free runs compare equal regardless of observability.
    metrics: Optional[Dict] = None
    # Per-thread CPI-stack document (repro.telemetry.cycles) when cycle
    # accounting was attached to the system; None otherwise.
    cpi_stacks: Optional[Dict] = None
    # Request-tracing document (repro.telemetry.requests) when a request
    # tracer was attached to the system; None otherwise.
    requests: Optional[Dict] = None
    # QoS decision log (repro.qos) when a controller was attached to the
    # system; None otherwise.
    qos: Optional[Dict] = None

    @property
    def write_fraction(self) -> float:
        """Writes as a fraction of L2 requests after gathering (Fig. 7)."""
        total = self.l2_reads + self.l2_writes
        return self.l2_writes / total if total else 0.0

    @property
    def gathering_rate(self) -> float:
        """Fraction of stores merged in the gathering buffers (Fig. 7)."""
        if not self.stores_received:
            return 0.0
        return self.stores_gathered / self.stores_received

    @property
    def l2_miss_rate(self) -> float:
        accesses = self.read_hits + self.read_misses + self.write_hits + self.write_misses
        if not accesses:
            return 0.0
        return (self.read_misses + self.write_misses) / accesses

    def ipc_of(self, thread_id: int) -> float:
        return self.ipcs[thread_id]


@dataclass
class MeasureState:
    """Picklable bookkeeping of an in-progress measurement interval.

    Captured after warmup and carried through the chunked measurement
    loop; a resilience checkpoint (repro.resilience.snapshot) pickles
    this next to the system so a resumed run finalizes with exactly the
    snapshots an uninterrupted run would have used.
    """

    warmup: int
    measure: int
    remaining: int
    dispatched_before: List[int]
    meter_snaps: List
    counter_snaps: List
    # Simulated cycles since the last checkpoint save (cadence state for
    # repro.resilience.snapshot.Checkpointer.maybe).
    since_checkpoint: int = 0


def run_simulation(
    system: CMPSystem,
    warmup: int = 20_000,
    measure: int = 60_000,
    metrics=None,
    on_window=None,
    checkpoint=None,
) -> SimulationResult:
    """Run ``system`` with a warmup phase, measuring the steady state.

    ``metrics`` is an optional :class:`repro.telemetry.metrics
    .MetricsCollector`; when given, the measurement phase runs in
    window-sized chunks with a gauge sample pulled at every boundary.
    Chunked ``run()`` calls are bit-identical to one call (the
    skip-ahead kernel's exactness contract — adaptation changes which
    cycles are *skipped*, never any simulated state), so sampling does
    not perturb the result.

    ``on_window`` is an optional callback fired with the current cycle
    after each window boundary's gauge sample — the streaming hook the
    live observability plane (``--serve``) uses to flush per-window
    snapshots mid-run.  It requires ``metrics`` (windows only exist in
    chunked mode) and observes strictly after the chunk has simulated,
    so it cannot perturb results; when ``None`` the cost is one ``is
    not None`` test per window.

    A system with a QoS controller attached
    (``CMPSystem.attach_qos_controller``) likewise runs the measurement
    chunked, stopping at every controller epoch boundary to fire
    ``on_epoch`` — the control loop rides the same exactness contract,
    so all three kernels agree bit for bit with a controller attached.

    ``checkpoint`` is an optional :class:`repro.resilience.snapshot
    .Checkpointer`; when given, the measurement also runs chunked (at
    the checkpoint cadence, or the metrics window when both are active
    so window sampling stays aligned) and a resumable snapshot is
    written whenever the cadence elapses.  Chunking is exact, so a
    checkpointed run returns the same result as an unchunked one.
    """
    if warmup < 0 or measure <= 0:
        raise ValueError("warmup must be >= 0 and measure > 0")
    if on_window is not None and metrics is None:
        raise ValueError("on_window requires a metrics collector")
    system.run(warmup)
    if system.cycle_accounting is not None:
        # Stacks cover exactly the measurement interval, like every
        # other reported statistic.
        system.cycle_accounting.rebase(system.cycle)
    if system.request_tracer is not None:
        # Request summaries likewise cover the measurement interval.
        system.request_tracer.rebase(system.cycle)
    if system.qos_controller is not None:
        # The controller's first epoch must not see warmup traffic.
        system.qos_controller.rebase(system)

    n_threads = system.config.n_threads
    state = MeasureState(
        warmup=warmup,
        measure=measure,
        remaining=measure,
        dispatched_before=[
            system.thread_dispatched(tid) for tid in range(n_threads)
        ],
        meter_snaps=[bank.utilization_snapshot() for bank in system.banks],
        counter_snaps=[bank.counters.snapshot() for bank in system.banks],
    )
    if metrics is not None:
        metrics.sample(system)
    return continue_measurement(system, state, metrics=metrics,
                                on_window=on_window, checkpoint=checkpoint)


def continue_measurement(
    system: CMPSystem,
    state: MeasureState,
    metrics=None,
    on_window=None,
    checkpoint=None,
) -> SimulationResult:
    """Run the measurement interval from wherever ``state`` left off.

    The entry point a resumed checkpoint continues through
    (:meth:`repro.resilience.snapshot.ResumedRun.run`); a fresh
    ``run_simulation`` call lands here too, so interrupted-and-resumed
    and uninterrupted runs share one code path and finalize from the
    same snapshots — the bit-exactness contract's backbone.
    """
    controller = system.qos_controller
    if state.remaining > 0:
        if metrics is None and checkpoint is None and controller is None:
            system.run(state.remaining)
            state.remaining = 0
        else:
            while state.remaining > 0:
                chunk = state.remaining
                if metrics is not None:
                    chunk = min(chunk, metrics.window)
                elif checkpoint is not None:
                    chunk = min(chunk,
                                checkpoint.every - state.since_checkpoint)
                if controller is not None:
                    # Stop at the next epoch boundary.  ``done`` derives
                    # from the measure/remaining arithmetic alone, so a
                    # checkpointed-and-resumed run fires epochs at the
                    # same cycles an uninterrupted one does.
                    done = state.measure - state.remaining
                    chunk = min(
                        chunk,
                        controller.epoch_cycles
                        - done % controller.epoch_cycles,
                    )
                system.run(chunk)
                state.remaining -= chunk
                state.since_checkpoint += chunk
                if controller is not None:
                    done = state.measure - state.remaining
                    if (done % controller.epoch_cycles == 0
                            or state.remaining == 0):
                        controller.on_epoch(system)
                if metrics is not None:
                    metrics.sample(system)
                    acct = system.cycle_accounting
                    if acct is not None and system.telemetry is not None:
                        acct.emit_counters(system.telemetry, system.cycle)
                    if on_window is not None:
                        on_window(system.cycle)
                if checkpoint is not None:
                    checkpoint.maybe(system, state)
    if metrics is not None:
        metrics.finish(system.cycle)
    return _finalize(system, state, metrics)


def _finalize(system: CMPSystem, state: MeasureState,
              metrics) -> SimulationResult:
    measure = state.measure
    n_threads = system.config.n_threads
    instructions = [
        system.thread_dispatched(tid) - state.dispatched_before[tid]
        for tid in range(n_threads)
    ]
    ipcs = [insts / measure for insts in instructions]

    bank_utils = [
        bank.utilizations(measure, snapshots=snap)
        for bank, snap in zip(system.banks, state.meter_snaps)
    ]
    avg_utils = {
        name: sum(b[name] for b in bank_utils) / len(bank_utils)
        for name in ("tag", "data", "bus")
    }

    deltas = [
        bank.counters.since(snap)
        for bank, snap in zip(system.banks, state.counter_snaps)
    ]

    def total(name: str) -> int:
        return sum(delta.get(name, 0) for delta in deltas)

    return SimulationResult(
        cycles=measure,
        warmup_cycles=state.warmup,
        ipcs=ipcs,
        instructions=instructions,
        metrics=metrics.snapshot() if metrics is not None else None,
        cpi_stacks=(
            system.cycle_accounting.snapshot(system.cycle)
            if system.cycle_accounting is not None else None
        ),
        requests=(
            system.request_tracer.document(system.cycle)
            if system.request_tracer is not None else None
        ),
        qos=(
            system.qos_controller.decisions_document()
            if system.qos_controller is not None else None
        ),
        utilizations=avg_utils,
        bank_utilizations=bank_utils,
        l2_reads=total("read_requests"),
        l2_writes=total("write_requests"),
        stores_received=total("stores_received"),
        stores_gathered=total("stores_gathered"),
        read_hits=total("read_hits"),
        read_misses=total("read_misses"),
        write_hits=total("write_hits"),
        write_misses=total("write_misses"),
    )

"""Full CMP assembly: cores + L1s + crossbar + banked L2 + memory.

This wires every substrate together according to a
:class:`~repro.common.config.SystemConfig` and steps the whole machine
one processor cycle at a time.  The arbiter policy and the capacity
policy are injected here from the configuration:

* ``arbiter="fcfs"`` / ``"row-fcfs"`` — the paper's baselines;
* ``arbiter="vpc"`` — one :class:`~repro.core.vpc_arbiter.VPCArbiter`
  per shared resource per bank, programmed from the VPC control
  registers.

Capacity is managed by the VPC Capacity Manager in all multi-thread
configurations (the paper does the same — Section 4.3 explains that an
unfair capacity manager would confound the arbiter evaluation); plain
shared LRU is available for the capacity ablation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cache.l2 import SharedL2
from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.common.config import SystemConfig
from repro.common.records import MemoryRequest
from repro.core.capacity import VPCCapacityManager
from repro.core.arbiter import Arbiter, FCFSArbiter, RoWFCFSArbiter
from repro.core.registers import VPCControlRegisters
from repro.core.vpc_arbiter import VPCArbiter
from repro.cpu.core_model import CoreModel
from repro.cpu.isa import TraceItem
from repro.interconnect.crossbar import Crossbar
from repro.memory.controller import MemoryController
from repro.system.kernel import KERNELS
from repro.telemetry import RequestLogSink, TelemetryBus
from repro.telemetry.events import CAT_REQUEST, PH_END, TraceEvent


class CMPSystem:
    """A complete simulated chip multiprocessor."""

    def __init__(
        self,
        config: SystemConfig,
        traces: List[Iterator[TraceItem]],
        capacity_policy: str = "vpc",
        intra_thread_row: bool = True,
        vpc_selection: str = "finish",
        record_requests: bool = False,
        smt_degree: int = 1,
        kernel: str = "event",
        telemetry: Optional[TelemetryBus] = None,
    ) -> None:
        config.validate()
        if len(traces) != config.n_threads:
            raise ValueError(
                f"{len(traces)} traces for {config.n_threads} threads"
            )
        if capacity_policy not in ("vpc", "lru"):
            raise ValueError(f"unknown capacity policy {capacity_policy!r}")
        if kernel not in KERNELS:
            raise ValueError(f"unknown simulation kernel {kernel!r}")
        self.config = config
        self.kernel = kernel
        self.cycle = 0
        # Skip-ahead accounting (observability; all 0 under the cycle
        # kernel): cycles fast-forwarded, quiescence scans attempted,
        # and scans that actually skipped at least one cycle.
        self.skipped_cycles = 0
        self.skip_attempts = 0
        self.skips_taken = 0
        # Event-kernel profitability adapter state (see kernel.run_event):
        # epochs left to sleep scanning, and the next sleep length.
        self._skip_sleep = 0
        self._skip_penalty = 1
        self.intra_thread_row = intra_thread_row
        self.vpc_selection = vpc_selection
        self.record_requests = record_requests
        # Telemetry is attached at the end of __init__ (components must
        # exist first); the request log is a bus subscriber.
        self.telemetry: Optional[TelemetryBus] = None
        self._request_log_sink: Optional[RequestLogSink] = None
        # Cycle accounting (telemetry.cycles): attached on demand, None
        # when disabled — same contract as the telemetry bus.
        self.cycle_accounting = None
        # Request-scope tracing (telemetry.requests): same contract.
        self.request_tracer = None
        # QoS control plane (repro.qos): attached on demand, None when
        # disabled — the simulation driver fires its epoch hook only
        # after a single ``is not None`` test per chunk.
        self.qos_controller = None

        self.registers = VPCControlRegisters(config.n_threads)
        self.registers.load_allocation(
            config.vpc.bandwidth_shares, config.vpc.capacity_shares
        )

        self.memory = MemoryController(
            config.memory, config.n_threads,
            shares=config.vpc.bandwidth_shares,
        )
        self.crossbar = Crossbar(config.n_threads, config.crossbar)

        # Arbiters grouped by the resource they guard ("tag", "data",
        # "bus"), so per-resource control-register writes reach exactly
        # the right arbiters (the paper's general allocation form).
        # Baseline (FCFS / RoW-FCFS) arbiters register here too so
        # telemetry attachment and the interference attributor see every
        # arbiter regardless of policy; register writes stay VPC-only.
        self._vpc_arbiters: Dict[str, List[Arbiter]] = {
            "tag": [], "data": [], "bus": [], "l3": [],
        }
        # Optional shared L3: sits between the L2 banks and memory,
        # implementing the same memory-side interface.
        self.l3 = None
        if config.l3 is not None:
            from repro.cache.l3 import SharedL3
            self.l3 = SharedL3(
                config=config.l3,
                n_threads=config.n_threads,
                arbiter=self._make_arbiter("l3", config.l3.port_occupancy),
                policy=self._make_capacity_policy(capacity_policy,
                                                  ways=config.l3.ways),
                memory=self.memory,
            )
        backing = self.l3 if self.l3 is not None else self.memory
        self.l2 = SharedL2(
            config=config.l2,
            n_threads=config.n_threads,
            arbiter_factory=self._make_arbiter,
            policy_factory=lambda: self._make_capacity_policy(capacity_policy),
            respond=self._respond,
            memory=backing,
        )
        self.banks = self.l2.banks  # convenient direct access in tests

        if smt_degree < 1:
            raise ValueError("smt_degree must be >= 1")
        if config.n_threads % smt_degree:
            raise ValueError(
                f"{config.n_threads} threads not divisible by SMT degree "
                f"{smt_degree}"
            )
        self.smt_degree = smt_degree
        if smt_degree == 1:
            self.cores = [
                CoreModel(
                    core_id=tid,
                    config=config.core,
                    l1_config=config.l1,
                    trace=trace,
                    send_request=self._send_request,
                )
                for tid, trace in enumerate(traces)
            ]
            self._core_of_thread = list(self.cores)
        else:
            # The paper's "most general case": multi-threaded processors
            # with shared L1 caches (Section 1.1).
            from repro.cpu.smt import SMTCoreModel
            self.cores = []
            self._core_of_thread = [None] * config.n_threads
            for start in range(0, config.n_threads, smt_degree):
                thread_ids = list(range(start, start + smt_degree))
                core = SMTCoreModel(
                    thread_ids=thread_ids,
                    config=config.core,
                    l1_config=config.l1,
                    traces=[traces[tid] for tid in thread_ids],
                    send_request=self._send_request,
                )
                self.cores.append(core)
                for tid in thread_ids:
                    self._core_of_thread[tid] = core

        # Let software share-register writes reprogram the live arbiters.
        self.registers.subscribe(self._on_register_write)

        if telemetry is not None:
            self.attach_telemetry(telemetry)
        if record_requests:
            # The legacy request log rides the telemetry bus like any
            # other subscriber (a private bus if none was supplied).
            if self.telemetry is None:
                self.attach_telemetry(TelemetryBus())
            self._request_log_sink = self.telemetry.attach(RequestLogSink())

    # ------------------------------------------------------------------ #
    # Telemetry.
    # ------------------------------------------------------------------ #

    def attach_telemetry(self, bus: TelemetryBus) -> TelemetryBus:
        """Enable tracing: point every instrumented component at ``bus``.

        With no bus attached every instrumentation point is a single
        ``is not None`` test — the zero-overhead-when-disabled contract
        (docs/ARCHITECTURE.md "Observability").
        """
        self.telemetry = bus
        for arbiters in self._vpc_arbiters.values():
            for arbiter in arbiters:
                arbiter._trace = bus
        for index, bank in enumerate(self.banks):
            bank._trace = bus
            policy = bank.array.policy
            policy._trace = bus
            policy.trace_name = f"bank{index}.capacity"
            policy.clock = self._now
        if self.l3 is not None:
            policy = self.l3.array.policy
            policy._trace = bus
            policy.trace_name = "l3.capacity"
            policy.clock = self._now
        self.crossbar._trace = bus
        self.memory.attach_trace(bus)
        for index, core in enumerate(self.cores):
            mshrs = getattr(core, "mshrs", None)
            if mshrs is not None:
                mshrs._trace = bus
                mshrs.trace_name = f"core{index}.mshrs"
        return bus

    def attach_cycle_accounting(self, acct=None):
        """Enable per-thread CPI-stack accounting: point every hooked
        component (cores, MSHR files, banks, tag/data/bus arbiters, DRAM
        channels) at one :class:`~repro.telemetry.cycles.CycleAccounting`
        instance.  Same zero-overhead-when-disabled contract as
        :meth:`attach_telemetry`.  The accounting state is part of the
        system object graph, so checkpoints carry it for free.
        """
        from repro.telemetry.cycles import CycleAccounting
        if self.smt_degree != 1:
            raise ValueError(
                "cycle accounting supports one hardware thread per core "
                "(smt_degree == 1); SMT attribution is not modelled yet"
            )
        if acct is None:
            acct = CycleAccounting(self.config.n_threads)
        self.cycle_accounting = acct
        for kind in ("tag", "data", "bus"):
            for arbiter in self._vpc_arbiters[kind]:
                arbiter._acct = acct
                arbiter.acct_stage = kind
        for bank in self.banks:
            bank._acct = acct
        for core in self.cores:
            core._acct = acct
            core.mshrs._acct = acct
            core.mshrs.acct_tid = core.core_id
        if self.l3 is None:
            self.memory.attach_acct(acct)
        else:
            # Below-L2 time is one opaque dram_queue bucket when an L3
            # sits in front of memory (the L3 port is not census-staged).
            acct.dram_service_tracked = False
        return acct

    def attach_request_tracing(self, tracer=None, exemplar_k: int = 8,
                               slo_rules=()):
        """Enable request-scope tracing: point every hooked component
        (cores, banks, tag/data/bus arbiters, DRAM channels) at one
        :class:`~repro.telemetry.requests.RequestTracer`.  Same
        zero-overhead-when-disabled contract as
        :meth:`attach_cycle_accounting`; the tracer state rides the
        system object graph through checkpoints.
        """
        from repro.telemetry.requests import RequestTracer
        if self.smt_degree != 1:
            raise ValueError(
                "request tracing supports one hardware thread per core "
                "(smt_degree == 1); SMT attribution is not modelled yet"
            )
        if tracer is None:
            tracer = RequestTracer(self.config.n_threads,
                                   exemplar_k=exemplar_k,
                                   slo_rules=tuple(slo_rules))
        self.request_tracer = tracer
        for kind in ("tag", "data", "bus"):
            for arbiter in self._vpc_arbiters[kind]:
                arbiter._rtrace = tracer
                arbiter.acct_stage = kind
        for bank in self.banks:
            bank._rtrace = tracer
        for core in self.cores:
            core._rtrace = tracer
        if self.l3 is None:
            # With an L3 in front of memory the DRAM channels stay
            # unhooked and below-L2 time remains one dram_queue segment.
            self.memory.attach_rtrace(tracer)
        return tracer

    def attach_qos_controller(self, controller):
        """Enable the dynamic QoS control plane: bind a
        :class:`~repro.qos.QoSController` to this system.  The
        controller observes through a private metrics collector on the
        telemetry bus (attached here if none exists yet) and programs
        shares exclusively through :attr:`registers` — it gets no other
        handle into the machine.  Same zero-overhead-when-disabled
        contract as :meth:`attach_cycle_accounting`; controller state is
        part of the system object graph, so checkpoints carry it.
        """
        if self.config.arbiter != "vpc":
            raise ValueError(
                "the QoS control plane programs VPC bandwidth shares; "
                f"arbiter {self.config.arbiter!r} has no share registers"
            )
        if self.telemetry is None:
            self.attach_telemetry(TelemetryBus())
        controller.attach(self)
        self.qos_controller = controller
        return controller

    def _now(self) -> int:
        """Clock callable for components whose interfaces carry no
        timestamp (replacement policies)."""
        return self.cycle

    @property
    def request_log(self) -> List[MemoryRequest]:
        """Completed demand+prefetch loads, in retirement order (only
        populated with ``record_requests=True``; live list, so callers
        may ``clear()`` it between measurement intervals)."""
        sink = self._request_log_sink
        return sink.requests if sink is not None else []

    # ------------------------------------------------------------------ #
    # Component factories and wiring callbacks.
    # ------------------------------------------------------------------ #

    def _make_capacity_policy(
        self, capacity_policy: str, ways: Optional[int] = None
    ) -> ReplacementPolicy:
        if ways is None:
            ways = self.config.l2.ways
        if capacity_policy == "vpc" and self.config.n_threads > 1:
            return VPCCapacityManager(self.config.vpc.capacity_shares, ways)
        return LRUPolicy()

    def _make_arbiter(self, resource: str, base_latency: int) -> Arbiter:
        name = self.config.arbiter
        if name == "fcfs":
            arbiter: Arbiter = FCFSArbiter(self.config.n_threads,
                                           base_latency)
        elif name == "row-fcfs":
            arbiter = RoWFCFSArbiter(self.config.n_threads, base_latency)
        else:
            arbiter = VPCArbiter(
                self.config.n_threads,
                self.config.vpc.bandwidth_shares,
                base_latency,
                intra_thread_row=self.intra_thread_row,
                selection=self.vpc_selection,
            )
        # Telemetry track name matches the QoS monitor's historical
        # "bank<index>.<resource>" naming (index within the resource).
        arbiter.trace_name = f"bank{len(self._vpc_arbiters[resource])}.{resource}"
        self._vpc_arbiters[resource].append(arbiter)
        return arbiter

    def _on_register_write(self, resource: str, thread_id: int, share: float) -> None:
        if resource == "capacity":
            # Runtime beta reprogramming: push the (already-validated)
            # register vector into every live capacity manager.  Plain
            # LRU policies have no quotas and ignore the write.
            policies = [bank.array.policy for bank in self.banks]
            if self.l3 is not None:
                policies.append(self.l3.array.policy)
            for policy in policies:
                if hasattr(policy, "set_quotas"):
                    policy.set_quotas(self.registers.capacity)
            return
        if self.config.arbiter != "vpc":
            return
        # Mirror the full (already-validated) register vector rather
        # than the single write: transactional reprogramming notifies
        # thread by thread, and a per-thread mirror could transiently
        # over-allocate an arbiter mid-update.
        shares = self.registers.bandwidth[resource]
        for arbiter in self._vpc_arbiters[resource]:
            arbiter.set_shares(shares)
        if resource == "data":
            # The L3 port tracks the data-array allocation (no separate
            # architected register in this model).
            for arbiter in self._vpc_arbiters["l3"]:
                arbiter.set_shares(shares)

    def _send_request(self, core_id: int, request: MemoryRequest, now: int) -> None:
        self.crossbar.send_request(core_id, request, now)

    def _respond(self, request: MemoryRequest, now: int) -> None:
        # Retirement point: loads at the critical word, stores at the
        # gather-buffer ACK — exactly once per accepted request, closing
        # the span the bank opened in ``accept``.
        if self.telemetry is not None:
            self.telemetry.emit(TraceEvent(
                ts=now, phase=PH_END, category=CAT_REQUEST,
                name="store" if request.is_write else
                     ("prefetch" if request.is_prefetch else "load"),
                track=f"t{request.thread_id}", tid=request.thread_id,
                id=request.req_id,
                args={"request": request},
            ))
        if self.cycle_accounting is not None and request.is_read:
            self.cycle_accounting.responded(request.thread_id, now)
        if self.request_tracer is not None and request.is_read:
            self.request_tracer.responded(request, now)
        self.crossbar.send_response(request.thread_id, request, now)

    # ------------------------------------------------------------------ #
    # Simulation stepping.
    # ------------------------------------------------------------------ #

    def bank_of(self, line: int) -> int:
        return self.l2.bank_of(line)

    def step(self) -> None:
        """Advance the whole machine one processor cycle."""
        now = self.cycle
        for tid in range(self.config.n_threads):
            core = self._core_of_thread[tid]
            for response in self.crossbar.deliver_responses(tid, now):
                core.on_response(response, now)
        for core in self.cores:
            core.tick(now)
        for core_id in range(self.config.n_threads):
            for request in self.crossbar.deliver_requests(core_id, now):
                self.l2.accept(request, now)
        self.l2.tick(now)
        if self.l3 is not None:
            self.l3.tick(now)
        self.memory.tick(now)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        KERNELS[self.kernel](self, cycles)

    def busy(self) -> bool:
        """True while any request is in flight anywhere in the machine."""
        if self.crossbar.busy() or self.l2.busy() or self.memory.busy():
            return True
        return self.l3 is not None and self.l3.busy()

    def next_component_event(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which any non-core component
        could act (``NEVER`` when the machine is fully drained)."""
        nxt = min(
            self.crossbar.next_event(now),
            self.l2.next_event(now),
            self.memory.next_event(now),
        )
        if self.l3 is not None:
            nxt = min(nxt, self.l3.next_event(now))
        return nxt

    # ------------------------------------------------------------------ #
    # Reporting helpers (interval-aware reporting lives in simulator.py).
    # ------------------------------------------------------------------ #

    def thread_dispatched(self, thread_id: int) -> int:
        """Committed-instruction count of one hardware thread."""
        core = self._core_of_thread[thread_id]
        if hasattr(core, "dispatched_of"):
            return core.dispatched_of(thread_id)
        return core.dispatched

    def thread_ipcs(self) -> List[float]:
        if self.cycle == 0:
            return [0.0] * self.config.n_threads
        return [
            self.thread_dispatched(tid) / self.cycle
            for tid in range(self.config.n_threads)
        ]

    def utilizations(self) -> Dict[str, float]:
        """Whole-run resource utilizations averaged over banks."""
        if self.cycle == 0:
            return {"tag": 0.0, "data": 0.0, "bus": 0.0}
        return self.l2.utilizations(self.cycle)

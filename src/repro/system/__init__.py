"""Whole-CMP assembly, simulation driver, and metrics."""

from repro.system.cmp import CMPSystem
from repro.system.metrics import qos_outcomes, target_ipc, workload_summary
from repro.system.simulator import SimulationResult, run_simulation

__all__ = [
    "CMPSystem",
    "SimulationResult",
    "qos_outcomes",
    "run_simulation",
    "target_ipc",
    "workload_summary",
]

"""Cross-run metrics: targets, normalization, and experiment summaries.

The functions here implement the paper's Section-5.3 methodology:
target IPCs come from private-machine runs
(:func:`~repro.common.config.private_equivalent`), shared-run IPCs are
normalized against them, and workload-level quality is summarized by
the harmonic mean and minimum of the normalized IPCs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro.common.config import SystemConfig, private_equivalent
from repro.core.qos import QoSOutcome, summarize
from repro.cpu.isa import TraceItem
from repro.system.cmp import CMPSystem
from repro.system.simulator import SimulationResult, run_simulation


def target_ipc(
    config: SystemConfig,
    trace: Iterator[TraceItem],
    phi: float,
    beta: float,
    warmup: int = 20_000,
    measure: int = 60_000,
) -> float:
    """A thread's QoS target: its IPC on the equivalent private machine."""
    private = private_equivalent(config, phi, beta)
    system = CMPSystem(private, [trace])
    result = run_simulation(system, warmup=warmup, measure=measure)
    return result.ipcs[0]


def qos_outcomes(
    result: SimulationResult, targets: Sequence[float]
) -> List[QoSOutcome]:
    if len(targets) != len(result.ipcs):
        raise ValueError("one target per thread required")
    return [
        QoSOutcome(thread_id=tid, ipc=ipc, target_ipc=target)
        for tid, (ipc, target) in enumerate(zip(result.ipcs, targets))
    ]


def workload_summary(outcomes: Sequence[QoSOutcome]) -> Dict[str, float]:
    """The headline metrics: harmonic-mean and minimum normalized IPC."""
    hmean, minimum = summarize(outcomes)
    return {"harmonic_mean": hmean, "min_normalized": minimum}

"""Simulation kernels: the cycle-by-cycle stepper and a skip-ahead
discrete-event kernel (the batched SoA kernel lives in
:mod:`repro.system.batch_kernel`).

Every kernel advances a :class:`~repro.system.cmp.CMPSystem` and must
produce **bit-identical** results — every counter, IPC, and utilization
(guarded by ``tests/test_kernel_equivalence.py``).  The cycle kernel is
the reference: it calls ``system.step()`` once per processor cycle.

The event kernel exploits two provable no-op patterns:

* **Global quiescence** — when every core reports
  :meth:`~repro.cpu.core_model.CoreModel.quiescent` (its next tick
  cannot dispatch or change state except per-cycle counters), the only
  thing that can wake the machine is a component event: a crossbar
  delivery, a bank event/resource free-up, an L3 event, or a DRAM issue.
  ``next_event(now)`` on each component lower-bounds that cycle, so the
  kernel jumps straight to the earliest one and settles the cores'
  per-cycle accounting in bulk via ``fast_forward``.
* **Idle components** — a bank or L3 whose ``next_event(now)`` is in
  the future would tick without touching any state (its arbiters are
  empty or its resources busy, its queues empty, no event due), so the
  per-cycle stepper inside the event kernel skips those ticks.

Exactness relies on component invariants documented at each
``next_event`` implementation: no arbiter ``select`` call is elided
(selects only happen when a resource meter is free), no per-cycle side
effect goes unaccounted (the cores' L1 retry probes are replayed by
``fast_forward``), and all event queues are only populated with cycles
>= the push time.
"""

from __future__ import annotations

from repro.common.latch import NEVER
from repro.system.batch_kernel import run_batch
from repro.telemetry.events import CAT_KERNEL, PH_INSTANT, TraceEvent


def run_cycle(system, cycles: int) -> None:
    """The seed kernel: one full ``step`` per processor cycle."""
    for _ in range(cycles):
        system.step()


def _step_lean(system, now: int, bank_next=None) -> None:
    """One cycle in ``system.step()``'s exact order, skipping the tick of
    any bank/L3 whose ``next_event`` proves it a no-op this cycle.

    ``bank_next`` optionally carries per-bank ``next_event`` values the
    caller already computed this cycle, so they are not recomputed.  The
    core ticks in between cannot invalidate them: cores only feed banks
    through the crossbar's request delay line, never same-cycle.

    Must mirror :meth:`~repro.system.cmp.CMPSystem.step`; the
    cross-kernel equivalence test guards the pairing.
    """
    crossbar = system.crossbar
    for tid in range(system.config.n_threads):
        core = system._core_of_thread[tid]
        for response in crossbar.deliver_responses(tid, now):
            core.on_response(response, now)
    for core in system.cores:
        core.tick(now)
    delivered = False
    for core_id in range(system.config.n_threads):
        for request in crossbar.deliver_requests(core_id, now):
            system.l2.accept(request, now)
            delivered = True
    if delivered or bank_next is None:
        for bank in system.banks:
            bank.tick(now)
    else:
        for bank, nxt in zip(system.banks, bank_next):
            if nxt <= now:
                bank.tick(now)
    l3 = system.l3
    if l3 is not None and l3.next_event(now) <= now:
        l3.tick(now)
    system.memory.tick(now)  # already guards per-channel on `pending`
    system.cycle = now + 1


# Skip-profitability review interval (simulated cycles) and the cap on
# how many consecutive epochs scanning may be put to sleep.
_EPOCH = 4096
_MAX_PENALTY = 16


def _run_scanning(system, end: int) -> int:
    """The skip-ahead inner loop, bounded by ``end``.  Returns the number
    of *failed* component scans (the adapter's cost proxy).

    A skip attempt is a core quiescence check followed by a component
    ``next_event`` scan.  Attempts that will fail must be cheap — active
    phases fail one every cycle — so both scans *fail fast*: each keeps a
    "hot" pointer to the core/bank that vetoed the last attempt and
    probes it first (active cores and busy banks are sticky, so the next
    veto is almost always the same one), and the component scan aborts
    the moment any ``next_event`` is ``<= now`` instead of computing the
    full minimum.  A fully drained machine needs no special case: every
    component then reports ``NEVER``, so the minimum clamps to ``end``
    and the rest of the interval is one skip.
    """
    cores = system.cores
    banks = system.banks
    crossbar = system.crossbar
    memory = system.memory
    l3 = system.l3
    trace = system.telemetry
    n_cores = len(cores)
    n_banks = len(banks)
    hot_core = 0  # the core that most recently vetoed an attempt
    hot_bank = 0  # the bank that most recently vetoed an attempt
    fails = 0
    attempts = 0  # component scans reached (all cores quiescent)
    taken = 0     # scans that actually fast-forwarded
    while system.cycle < end:
        now = system.cycle
        quiet = True
        for i in range(n_cores):
            idx = hot_core + i
            if idx >= n_cores:
                idx -= n_cores
            if not cores[idx].quiescent():
                hot_core = idx
                quiet = False
                break
        if not quiet:
            _step_lean(system, now)
            continue
        # Every core is provably stalled until a component acts; jump to
        # the earliest component event.  Scan order is cheapest-first and
        # most-likely-veto-first so failed scans stay near-free.
        attempts += 1
        target = end
        scan_ok = True
        for i in range(n_banks):
            idx = hot_bank + i
            if idx >= n_banks:
                idx -= n_banks
            nxt = banks[idx].next_event(now)
            if nxt <= now:
                hot_bank = idx
                scan_ok = False
                break
            if nxt < target:
                target = nxt
        if scan_ok:
            nxt = crossbar.next_event(now)
            if nxt <= now:
                scan_ok = False
            else:
                if nxt < target:
                    target = nxt
                nxt = memory.next_event(now)
                if nxt <= now:
                    scan_ok = False
                elif nxt < target:
                    target = nxt
                if scan_ok and l3 is not None:
                    nxt = l3.next_event(now)
                    if nxt <= now:
                        scan_ok = False
                    elif nxt < target:
                        target = nxt
        if not scan_ok:
            fails += 1
            _step_lean(system, now)
            continue
        delta = target - now
        for core in cores:
            core.fast_forward(delta, now)
        system.cycle = target
        system.skipped_cycles += delta
        taken += 1
        if trace is not None:
            trace.emit(TraceEvent(
                ts=now, phase=PH_INSTANT, category=CAT_KERNEL,
                name="skip", track="kernel", dur=delta,
                args={"to": target,
                      "skipped_total": system.skipped_cycles},
            ))
    system.skip_attempts += attempts
    system.skips_taken += taken
    return fails


def run_event(system, cycles: int) -> None:
    """Skip-ahead kernel: fast-forward over globally quiescent windows.

    Skipping only pays when the cycles it removes are worth more than
    the scans it performs.  Some workloads stall in long windows (DRAM
    round trips) where skipping wins big; others stall in 1–3 cycle
    resource bubbles where a scan costs about as much as the idle step
    it saves.  The kernel reviews profitability every ``_EPOCH``
    simulated cycles using an exact cycle-count proxy (cycles skipped
    vs. failed scans — an idle step costs several times a failed scan,
    so break-even is conservative) and puts scanning to sleep for a
    geometrically growing number of epochs while it is not paying.
    Stepping is always exact, so adaptation changes only *which* cycles
    are skipped — never any simulated counter; the adaptive state lives
    on the system so repeated ``run`` calls keep what was learned.
    """
    end = system.cycle + cycles
    while system.cycle < end:
        if system._skip_sleep > 0:
            span_end = system.cycle + _EPOCH
            if span_end > end:
                span_end = end
            while system.cycle < span_end:
                _step_lean(system, system.cycle)
            system._skip_sleep -= 1
            continue
        epoch_end = system.cycle + _EPOCH
        full_epoch = epoch_end <= end
        if not full_epoch:
            epoch_end = end
        skipped_before = system.skipped_cycles
        fails = _run_scanning(system, epoch_end)
        if full_epoch:
            gained = system.skipped_cycles - skipped_before
            if gained <= fails:
                system._skip_sleep = system._skip_penalty
                system._skip_penalty = min(
                    system._skip_penalty * 2, _MAX_PENALTY
                )
            else:
                system._skip_penalty = 1


KERNELS = {"cycle": run_cycle, "event": run_event, "batch": run_batch}

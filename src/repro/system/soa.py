"""Structure-of-arrays scheduling state for the batched kernel.

The batch kernel (:mod:`repro.system.batch_kernel`) and the
lane-parallel experiment driver (:mod:`repro.experiments.parallel`)
keep their *scheduling* state — per-component wake cycles, per-core
settle cycles, per-lane progress counters — in flat parallel arrays
rather than scattered across object attributes, so the hot operations
(min-scans to find the next event, bulk settles, lane argmins) touch
contiguous storage instead of chasing pointers.

Two backends, selected at import time:

* **numpy** (optional extra, ``pip install .[numpy]``) — vectorized
  ``min``/``argmin``/bulk fills; pays off when one array spans many
  lanes (K experiment points x S per-lane slots).
* **pure Python** (``list`` of ints) — always available; for the
  handful of slots a single system needs (a few crossbar lanes + a few
  banks), builtin ``min`` over a small list beats numpy's per-call
  overhead, so the single-system batch kernel *forces* this backend.

The authoritative architectural state (arbiter virtual-time registers,
cache arrays, MSHRs, queues) deliberately stays in the component
objects: the batch kernel's bit-exactness argument and the REPRO-CKPT
checkpoint format both rely on the object graph being the single source
of truth (docs/ARCHITECTURE.md, "Batched kernel").  The arrays here are
derived bookkeeping, rebuilt from the objects at every ``run()`` entry
and discarded at exit — they never need to serialize.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.latch import NEVER

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None


class WakeTable:
    """A flat array of wake cycles, one slot per scheduled entity.

    ``NEVER`` marks an idle slot.  ``data`` is the raw backing store
    (a ``list`` or a numpy ``int64`` array) — hot loops index it
    directly; the methods here cover the batch operations.
    """

    __slots__ = ("n", "data", "_numpy")

    def __init__(self, n: int, fill: int = NEVER,
                 force_list: bool = False) -> None:
        if n < 0:
            raise ValueError("WakeTable size must be >= 0")
        self.n = n
        self._numpy = HAVE_NUMPY and not force_list
        if self._numpy:
            self.data = _np.full(n, fill, dtype=_np.int64)
        else:
            self.data = [fill] * n

    def fill(self, value: int) -> None:
        if self._numpy:
            self.data[:] = value
        else:
            data = self.data
            for i in range(self.n):
                data[i] = value

    def lower(self, index: int, cycle: int) -> None:
        """Pull slot ``index`` earlier (wakes may only move earlier —
        pushing one later would risk missing a state change)."""
        if cycle < self.data[index]:
            self.data[index] = cycle

    def min(self) -> int:
        if self.n == 0:
            return NEVER
        if self._numpy:
            return int(self.data.min())
        return min(self.data)

    def argmin(self) -> int:
        if self.n == 0:
            raise ValueError("argmin of an empty WakeTable")
        if self._numpy:
            return int(self.data.argmin())
        data = self.data
        best = 0
        best_value = data[0]
        for i in range(1, self.n):
            if data[i] < best_value:
                best = i
                best_value = data[i]
        return best

    def min_pending(self, limit: int) -> int:
        """Minimum over slots strictly below ``limit`` (``NEVER`` if
        every slot is at or past it) — the lane driver's "who still has
        work" scan."""
        if self._numpy:
            pending = self.data[self.data < limit]
            return int(pending.min()) if pending.size else NEVER
        best = NEVER
        for value in self.data:
            if value < limit and value < best:
                best = value
        return best

    def tolist(self) -> List[int]:
        if self._numpy:
            return [int(v) for v in self.data]
        return list(self.data)


def make_wake_list(n: int, fill: int = NEVER) -> List[int]:
    """A bare list of wake cycles for single-system hot loops, where
    list indexing beats any array backend (see module docstring)."""
    return [fill] * n


__all__ = ["HAVE_NUMPY", "NEVER", "WakeTable", "make_wake_list"]

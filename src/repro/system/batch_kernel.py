"""Batched structure-of-arrays kernel: per-component selective
activation with lazy bulk settling.

``run_batch`` is the third simulation kernel (after ``run_cycle`` and
``run_event``) and must be **bit-identical** to both — every counter,
IPC, utilization, trace-visible request timestamp, and metrics window
(``tests/test_kernel_equivalence.py``).  Where the event kernel only
skips *globally* quiescent cycles (every core stalled), this kernel
tracks each component's next possible state change in a flat wake
array (:mod:`repro.system.soa`) and, inside every executed cycle, runs
only the components that are due:

* **cores** sleep individually the moment they report
  :meth:`~repro.cpu.core_model.CoreModel.quiescent`, and are settled in
  bulk with ``fast_forward`` when a crossbar response (the only thing
  that can wake a core) arrives for them — the wake is driven by the
  response delay-line head, so a core blocked on a DRAM round trip
  costs nothing until its data comes back;
* **banks** tick only at or after their ``next_event`` bound, and the
  tick itself is *lean*: each stage (event pop, store admission,
  controller admission, memory retry, per-resource grant) runs behind
  the exact no-op guard ``next_event`` documents for it, so a bank
  whose tag meter is busy for 4 cycles pays zero for the three
  guaranteed-``None`` grants the full tick would attempt;
* **whole cycles** are jumped (as in the event kernel) when every core
  sleeps, to the minimum over the wake array and the crossbar lane
  heads.

The hot loop trades indirection for flat state: every stable component
reference (event heaps, queues, gather buffers, arbiter/meter pairs —
all init-assigned and only ever mutated in place) is captured once per
``run()`` into a per-bank context tuple, the lean tick computes the
bank's next wake in the same pass over the same locals instead of
re-walking the object graph through ``next_event``, and the crossbar
delay lines are drained with direct deque pops rather than generator
calls.

Exactness argument (docs/ARCHITECTURE.md, "Batched kernel"): ticking a
component *early* is always safe — an un-due tick is exactly the no-op
the cycle kernel would have executed — so wake entries only need to be
true lower bounds, and every rule below only ever *lowers* them.  The
dangerous direction, missing a state-changing tick, is excluded by the
same per-component ``next_event`` contracts the event kernel relies
on, plus two cross-component edges handled explicitly: an L3/memory
tick can push a completion into a bank's event heap or free transaction
-buffer capacity a bank's ``_mem_wait`` head is blocked on, so after
any effective L3/memory tick the waiting banks' wake entries are
re-lowered from the post-tick state.

The SoA wake state is **ephemeral**: rebuilt from the object graph at
every ``run()`` entry and fully settled back at exit (all sleeping
cores fast-forwarded to the end cycle).  At ``run()`` boundaries the
system object graph is therefore bit-identical to what the cycle
kernel leaves — which is what makes metrics windows, chunked runs, and
REPRO-CKPT checkpoint/resume work unchanged (the checkpoint pickles
the object graph between ``run()`` calls and never sees kernel state).
"""

from __future__ import annotations

from heapq import heappop

from repro.common.latch import NEVER
from repro.system.soa import make_wake_list
from repro.telemetry.events import CAT_KERNEL, PH_INSTANT, TraceEvent


def _resource_context(resource):
    """One shared resource flattened for the hot loop: the queue
    emptiness probe avoids a ``len()``/``__len__`` round trip per guard.

    ``mode`` 0 reads captured deques directly (FCFS: its single queue;
    RoW-FCFS: reads and writes); mode 1 reads the VPC arbiter's
    incremental ``_size``; mode 2 falls back to ``len()`` for unknown
    arbiter types.  All captured containers are init-assigned and only
    mutated in place.
    """
    arbiter = resource.arbiter
    meter = resource.meter
    queue = getattr(arbiter, "_queue", None)
    if queue is not None:
        return (resource, arbiter, meter, 0, queue, ())
    reads = getattr(arbiter, "_reads", None)
    if reads is not None:
        return (resource, arbiter, meter, 0, reads, arbiter._writes)
    if getattr(arbiter, "_size", None) is not None:
        return (resource, arbiter, meter, 1, (), ())
    return (resource, arbiter, meter, 2, (), ())


def _bank_context(bank, memory):
    """Flatten one bank's stable hot-path references (see module
    docstring) into the tuple ``_tick_bank`` unpacks."""
    return (
        bank._events._heap,
        bank._handle_event,
        bank.sgbs,
        bank._pending_stores,
        bank._load_q,
        bank._sm_count,
        bank.config.state_machines_per_thread,
        bank._mem_wait,
        bank._wbmem_wait,
        tuple(_resource_context(res) for res in bank.resources),
        bank._admit_stores,
        bank._admit_to_controller,
        bank._retry_memory,
        bank._apply_grant,
        range(bank.n_threads),
        memory.can_accept_read,
        memory.can_accept_write,
    )


def _tick_bank(ctx, now: int) -> int:
    """One bank tick in :meth:`~repro.cache.bank.CacheBank.tick`'s exact
    stage order, with each stage behind the no-op guard documented in
    ``CacheBank.next_event`` — then the bank's next wake cycle, computed
    in the same pass (``next_event(now + 1)`` inlined over the locals
    the tick already holds).

    Every guard matches the condition under which the full stage call
    provably mutates nothing: event pops are bounded by the heap head;
    ``_admit_stores`` breaks on a non-merging head with a full SGB;
    ``_admit_to_controller``'s no-op scan rotates the round-robin
    pointer by a full lap (net zero); ``_retry_memory`` breaks on an
    unacceptable head; ``_Resource.grant`` returns ``None`` — without
    consulting the arbiter — while the meter is busy or the queue is
    empty.  Guard-passing stages call the *real* bank methods, so the
    state transition logic exists in exactly one place.
    """
    (heap, handle_event, sgbs, pending_stores, load_q, sm_count, sm_limit,
     mem_wait, wbmem_wait, res_ctx, admit_stores, admit_to_controller,
     retry_memory, apply_grant, tids, can_read, can_write) = ctx
    while heap and heap[0][0] <= now:
        event = heappop(heap)[2]
        handle_event(event[0], event[1], now)
    for tid in tids:
        pending = pending_stores[tid]
        if pending:
            sgb = sgbs[tid]
            if len(sgb._entries) < sgb.capacity or pending[0].line in sgb._by_line:
                admit_stores(now)
                break
    for tid in tids:
        if sm_count[tid] < sm_limit:
            sgb = sgbs[tid]
            if (
                load_q[tid]
                or len(sgb._entries) >= sgb.high_water
                or sgb._flush_count
            ):
                admit_to_controller(now)
                break
    if (mem_wait and can_read(mem_wait[0].request.thread_id)) or (
        wbmem_wait and can_write(wbmem_wait[0].request.thread_id)
    ):
        retry_memory(now)

    # Grants, merged with each resource's wake contribution.  Grants on
    # one resource never touch another resource's arbiter or meter (they
    # only push future events into the bank heap), so the per-resource
    # post-grant state read here is final for this cycle.
    nxt = now + 1
    res_wake = NEVER
    for resource, arbiter, meter, mode, q_a, q_b in res_ctx:
        if mode == 0:
            waiting = q_a or q_b
        elif mode == 1:
            waiting = arbiter._size
        else:
            waiting = len(arbiter)
        if not waiting:
            continue
        if meter._busy_until <= now:
            # Proven free and non-empty: select directly, skipping
            # _Resource.grant's re-checks.
            entry = arbiter.select(now)
            if entry is not None:
                meter.mark_busy(
                    now, resource.base_latency * entry.service_quanta
                )
                apply_grant(resource, entry, now)
            if mode == 0:
                waiting = q_a or q_b
            elif mode == 1:
                waiting = arbiter._size
            else:
                waiting = len(arbiter)
            if not waiting:
                continue
        busy = meter._busy_until
        if busy < res_wake:
            res_wake = busy if busy > nxt else nxt

    # Next wake: CacheBank.next_event(now + 1) over the post-tick state.
    if mem_wait and can_read(mem_wait[0].request.thread_id):
        return nxt
    if wbmem_wait and can_write(wbmem_wait[0].request.thread_id):
        return nxt
    for tid in tids:
        sgb = sgbs[tid]
        entries = sgb._entries
        pending = pending_stores[tid]
        if pending and (
            len(entries) < sgb.capacity or pending[0].line in sgb._by_line
        ):
            return nxt
        if sm_count[tid] < sm_limit and (
            load_q[tid]
            or len(entries) >= sgb.high_water
            or sgb._flush_count
        ):
            return nxt
    wake = res_wake
    if heap:
        head = heap[0][0]
        if head < wake:
            wake = head if head > nxt else nxt
    return wake


def run_batch(system, cycles: int) -> None:
    """Advance ``system`` by ``cycles`` using selective activation."""
    if cycles <= 0:
        return
    start = system.cycle
    end = start + cycles
    n_threads = system.config.n_threads
    cores = system.cores
    n_cores = len(cores)
    core_of_thread = system._core_of_thread
    core_index = {id(core): index for index, core in enumerate(cores)}
    core_idx_of_thread = [
        core_index[id(core_of_thread[tid])] for tid in range(n_threads)
    ]
    crossbar = system.crossbar
    # Lane deques are drained directly (FIFO, so the head bounds the
    # lane) — same internals-for-speed idiom as Crossbar.next_event.
    resp_lanes = [crossbar._responses[tid]._items for tid in range(n_threads)]
    req_lanes = [crossbar._requests[tid]._items for tid in range(n_threads)]
    l2 = system.l2
    l2_accept = l2.accept
    bank_of = l2.bank_of
    banks = system.banks
    n_banks = len(banks)
    l3 = system.l3
    memory = system.memory
    # Private channels expose their read/write deques (probed without a
    # property call); the shared fair-queued channel falls back to its
    # `pending` property.
    deque_channels = []
    prop_channels = []
    for channel in memory.channels:
        reads = getattr(channel, "_reads", None)
        if reads is not None:
            deque_channels.append((channel.tick, reads, channel._writes))
        else:
            prop_channels.append(channel)
    can_read = memory.can_accept_read
    can_write = memory.can_accept_write
    trace = system.telemetry
    # The only mid-cycle reader of system.cycle is the replacement
    # policies' clock, wired up by attach_telemetry — keep the attribute
    # synchronized exactly when something can observe it.
    sync_clock = trace is not None

    # SoA scheduling state — ephemeral, rebuilt every run() (see module
    # docstring).  Sleep flags seed from the (sticky) quiescence memo;
    # settled[ci] is the first cycle core ci has not yet accounted.
    sleeping = [core.quiescent() for core in cores]
    settled = [start] * n_cores
    awake = n_cores - sum(sleeping)
    bank_ctx = [_bank_context(bank, memory) for bank in banks]
    bank_wake = make_wake_list(n_banks)
    for index in range(n_banks):
        bank_wake[index] = banks[index].next_event(start)

    tid_range = range(n_threads)
    core_range = range(n_cores)
    bank_range = range(n_banks)
    attempts = 0
    taken = 0

    now = start
    while now < end:
        if sync_clock:
            system.cycle = now

        # 1. Response delivery (step() order: per thread id).  A
        # response is the only event that can wake a sleeping core; the
        # core settles its skipped cycles *before* on_response runs,
        # because fast_forward's probing predicate reads load state
        # that on_response mutates.
        for tid in tid_range:
            items = resp_lanes[tid]
            if items and items[0][0] <= now:
                ci = core_idx_of_thread[tid]
                core = cores[ci]
                if sleeping[ci]:
                    delta = now - settled[ci]
                    if delta:
                        core.fast_forward(delta, now)
                    settled[ci] = now
                    sleeping[ci] = False
                    awake += 1
                on_response = core.on_response
                while items and items[0][0] <= now:
                    on_response(items.popleft()[1], now)

        # 2. Core ticks.  The post-tick quiescence check equals the
        # top-of-next-cycle check: nothing can touch core state between
        # here and the next response delivery.
        for ci in core_range:
            if not sleeping[ci]:
                core = cores[ci]
                core.tick(now)
                settled[ci] = now + 1
                if core.quiescent():
                    sleeping[ci] = True
                    awake -= 1

        # 3. Request delivery: wake the target bank this cycle.
        for tid in tid_range:
            items = req_lanes[tid]
            if items and items[0][0] <= now:
                while items and items[0][0] <= now:
                    request = items.popleft()[1]
                    l2_accept(request, now)
                    index = bank_of(request.line)
                    if bank_wake[index] > now:
                        bank_wake[index] = now

        # 4. Banks due this cycle (lean tick + merged wake recompute).
        for index in bank_range:
            if bank_wake[index] <= now:
                bank_wake[index] = _tick_bank(bank_ctx[index], now)

        # 5. L3 and memory — same gating as the event kernel's lean
        # step (memory's tick guards per-channel on `pending`).
        l3_did = False
        if l3 is not None and l3.next_event(now) <= now:
            l3.tick(now)
            l3_did = True
        mem_did = False
        for channel_tick, reads, writes in deque_channels:
            if reads or writes:
                channel_tick(now)
                mem_did = True
        for channel in prop_channels:
            if channel.pending:
                channel.tick(now)
                mem_did = True

        # 6. Cross-component wake edges: an L3 hit/fill notification
        # lands in a bank's event heap *at* `now` (banks already ticked
        # this cycle — handle it next cycle), a DRAM completion lands
        # at a future cycle possibly earlier than the bank's recorded
        # wake, and a memory issue frees transaction-buffer capacity
        # that a bank's _mem_wait head is blocked on.
        if mem_did or l3_did:
            nxt = now + 1
            for index in bank_range:
                wake = bank_wake[index]
                if wake <= nxt:
                    continue
                ctx = bank_ctx[index]
                mem_wait = ctx[7]
                wbmem_wait = ctx[8]
                if (
                    mem_wait and can_read(mem_wait[0].request.thread_id)
                ) or (
                    wbmem_wait and can_write(wbmem_wait[0].request.thread_id)
                ):
                    bank_wake[index] = nxt
                    continue
                heap = ctx[0]
                if heap:
                    head = heap[0][0]
                    if head < wake:
                        bank_wake[index] = head if head > now else nxt

        # 7. Advance — jump over whole cycles while every core sleeps
        # (the event kernel's global-quiescence skip, reusing the wake
        # array instead of rescanning every component).
        if awake:
            now += 1
            continue
        attempts += 1
        target = min(bank_wake) if bank_wake else NEVER
        if target > end:
            target = end
        if target > now + 1:
            for tid in tid_range:
                items = resp_lanes[tid]
                if items and items[0][0] < target:
                    target = items[0][0]
                items = req_lanes[tid]
                if items and items[0][0] < target:
                    target = items[0][0]
            if target > now + 1:
                nxt = memory.next_event(now + 1)
                if nxt < target:
                    target = nxt
                if l3 is not None and target > now + 1:
                    nxt = l3.next_event(now + 1)
                    if nxt < target:
                        target = nxt
        if target <= now + 1:
            now += 1
            continue
        delta = target - (now + 1)
        system.skipped_cycles += delta
        taken += 1
        if trace is not None:
            trace.emit(TraceEvent(
                ts=now + 1, phase=PH_INSTANT, category=CAT_KERNEL,
                name="skip", track="kernel", dur=delta,
                args={"to": target,
                      "skipped_total": system.skipped_cycles},
            ))
        now = target

    # Settle: every sleeping core owes per-cycle accounting up to the
    # end of the interval, so the object graph leaves this run in the
    # exact state the cycle kernel would have produced.
    for ci in core_range:
        delta = end - settled[ci]
        if sleeping[ci] and delta:
            cores[ci].fast_forward(delta, end)
    system.skip_attempts += attempts
    system.skips_taken += taken
    system.cycle = end

"""Fault-tolerant experiment fleet: journaled, checkpointing, retrying.

The fast path (``repro.experiments.parallel.run_points``) assumes
workers never die; this module assumes they do.  Each point runs in its
own ``multiprocessing.Process`` — unlike a ``ProcessPoolExecutor``, one
SIGKILLed worker cannot poison a shared pool — under a per-point
timeout, with bounded retries on an exponential backoff, and exclusion
(with a clear report) once a point keeps failing.

Everything observable lands in the run directory's journal
(:mod:`repro.resilience.journal`); finished results are sidecar pickles
and mid-measurement progress is checkpointed
(:mod:`repro.resilience.snapshot`), so a re-invocation with ``--resume``
skips what is done, fast-forwards what is half-done, and re-runs only
what is missing.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.resilience.chaos import ChaosConfig, ChaosInjector
from repro.resilience.journal import (
    RunJournal,
    checkpoint_path,
    load_result,
    replay,
    result_path,
    store_result,
)
from repro.resilience.snapshot import (
    CheckpointError,
    Checkpointer,
    open_checkpoint,
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Fleet policy, set once per invocation via ``parallel.configure``."""

    run_dir: str
    checkpoint_every: int = 0      # simulated cycles; 0 = no checkpoints
    point_timeout: float = 0.0     # wall seconds per attempt; 0 = none
    max_retries: int = 2           # retries per point *per invocation*
    backoff_base: float = 0.25     # seconds; doubles per retry
    chaos: Optional[ChaosConfig] = None


class FleetAborted(RuntimeError):
    """The chaos harness's simulated orchestrator crash (``abort_after``).

    Deliberately journals nothing on the way out — a real crash would
    not get to — leaving a half-done run directory for ``--resume``.
    """


class PointsExcludedError(RuntimeError):
    """Some points kept failing and were excluded from the batch.

    Carries the salvageable partial ``results`` (``None`` at excluded
    positions) and the exclusion report; callers decide whether partial
    aggregates are acceptable.
    """

    def __init__(self, excluded, results, run_dir) -> None:
        lines = [
            f"{len(excluded)} point(s) excluded after repeated failures "
            f"in {run_dir}:"
        ]
        for index, key, attempts, error in excluded:
            lines.append(
                f"  point {index} ({key[:12]}): {attempts} attempt(s), "
                f"last error: {error}"
            )
        super().__init__("\n".join(lines))
        self.excluded = excluded
        self.results = results
        self.run_dir = run_dir


class _JournalHook:
    """Worker-side ``Checkpointer.on_saved`` → journal adapter."""

    def __init__(self, journal: RunJournal, key: str, index: int) -> None:
        self.journal = journal
        self.key = key
        self.index = index

    def __call__(self, cycle: int) -> None:
        self.journal.checkpoint_saved(self.key, self.index, cycle)


def _fleet_worker(point, metrics_window, run_dir, key, index, attempt,
                  every, chaos_config, kernel=None,
                  cpi_stacks=False) -> None:
    """Child-process entry: run (or resume) one point, store its result.

    Exit code 0 with a readable sidecar is the only success signal the
    parent trusts; any exception here prints its traceback and exits 1.
    """
    try:
        result = _run_or_resume(point, metrics_window, run_dir, key, index,
                                attempt, every, chaos_config, kernel,
                                cpi_stacks)
        store_result(result_path(run_dir, key), result)
    except Exception:
        traceback.print_exc()
        sys.exit(1)


def _run_or_resume(point, metrics_window, run_dir, key, index, attempt,
                   every, chaos_config, kernel=None, cpi_stacks=False):
    journal = RunJournal(run_dir)
    chaos = None
    if chaos_config is not None and chaos_config.armed():
        chaos = ChaosInjector(chaos_config, key, attempt)
    checkpointer = None
    ckpt = checkpoint_path(run_dir, key)
    if every:
        checkpointer = Checkpointer(ckpt, every, point_key=key, chaos=chaos)
        checkpointer.on_saved = _JournalHook(journal, key, index)
        if ckpt.exists():
            try:
                resumed = open_checkpoint(ckpt, expect_key=key)
            except CheckpointError as exc:
                # Corrupt or foreign checkpoint: note it, remove it, and
                # start the point over — never resume from bad state.
                journal.append("checkpoint_rejected", key=key, index=index,
                               error=str(exc))
                try:
                    ckpt.unlink()
                except OSError:
                    pass
            else:
                result = resumed.run(checkpointer=checkpointer)
                if resumed.attributor is not None:
                    resumed.attributor.finish(resumed.system.cycle)
                    result.metrics["attribution"] = (
                        resumed.attributor.snapshot())
                    result.metrics["arbiter"] = point.config.arbiter
                    # The accounting state rode the checkpoint pickle
                    # (it lives on the system), so a resumed run's
                    # stacks equal an uninterrupted run's.
                    if result.cpi_stacks is not None:
                        result.metrics["cpi_stacks"] = result.cpi_stacks
                return result
    from repro.experiments import parallel
    return parallel.run_point(point, metrics_window,
                              checkpoint=checkpointer,
                              resumable=bool(every),
                              kernel=kernel,
                              cpi_stacks=cpi_stacks)


class _Slot:
    """One point's scheduling state in the parent."""

    __slots__ = ("index", "key", "attempt", "tries", "not_before")

    def __init__(self, index: int, key: str, attempt: int) -> None:
        self.index = index
        self.key = key
        self.attempt = attempt   # global attempt counter (journal-seeded)
        self.tries = 0           # attempts made by THIS invocation
        self.not_before = 0.0    # backoff gate (monotonic seconds)


def run_points_resilient(
    points: Sequence,
    resilience: ResilienceConfig,
    jobs: int = 1,
    metrics_window: Optional[int] = None,
    progress=None,
    live=None,
    kernel: Optional[str] = None,
    cpi_stacks: bool = False,
    spans=None,
) -> List:
    """Run a batch of points under the resilience policy.

    Replays the run directory first: points already finished there are
    returned without simulating.  The rest run process-per-point; a
    worker death, hang (via ``point_timeout``), or corrupt result is a
    retriable failure with exponential backoff, and a point that fails
    ``max_retries + 1`` times this invocation is excluded — reported via
    :class:`PointsExcludedError` carrying the partial results.

    ``KeyboardInterrupt`` terminates the fleet, journals the
    interruption, and re-raises — the CLI layer prints the exact
    ``--resume`` command.

    ``spans`` is a :class:`repro.telemetry.spans.SpanTracer`: each
    worker attempt gets a host-time span (spawn → exit, with outcome),
    retries/backoffs and exclusions get ``host.retry`` instants, and
    every durable journal append lands as a ``host.journal`` instant.
    """
    from repro.experiments.parallel import cache_key

    run_dir = Path(resilience.run_dir)
    state = replay(run_dir)
    keys = [cache_key(point) for point in points]
    results: List = [None] * len(points)
    journal = RunJournal(run_dir)
    if spans is not None:
        from repro.telemetry.spans import (
            TRACK_JOURNAL,
            TRACK_RETRY,
            TRACK_WORKER,
        )
        journal.on_append = (
            lambda event: spans.instant(f"journal.{event}", TRACK_JOURNAL))
        spans.instant("journal-replay", TRACK_JOURNAL,
                      records=state.started, run_dir=str(run_dir))

    if progress is not None:
        progress.begin(len(points))
    pending: List[_Slot] = []
    reused = 0
    for index, key in enumerate(keys):
        prior = state.completed_result(key)
        if prior is not None:
            results[index] = prior
            reused += 1
            if progress is not None:
                progress.point_done(cached=True)
            continue
        attempts = state.records[key].attempts if key in state.records else 0
        pending.append(_Slot(index, key, attempts))
    journal.run_started(
        exp_id=state.exp_id or "", n_points=len(points),
        resumed=state.started > 0, reused=reused,
    )

    slots = max(1, min(jobs, len(pending)) if pending else 1)
    chaos = resilience.chaos
    abort_after = chaos.abort_after if chaos is not None else None
    timeout = resilience.point_timeout
    active = {}
    excluded = []
    finished_this_run = 0
    ctx = multiprocessing.get_context()

    def fail(slot: _Slot, error: str) -> None:
        nonlocal excluded
        if slot.tries >= resilience.max_retries + 1:
            journal.point_excluded(slot.key, slot.index, slot.attempt, error)
            excluded.append((slot.index, slot.key, slot.attempt, error))
            if live is not None:
                live.point_excluded(slot.index, error)
            if spans is not None:
                spans.instant("excluded", TRACK_RETRY, point=slot.index,
                              attempt=slot.attempt, error=error)
            if progress is not None:
                progress.point_done(cached=False)
        else:
            delay = resilience.backoff_base * (2 ** (slot.tries - 1))
            journal.point_failed(slot.key, slot.index, slot.attempt, error,
                                 retry_in=delay)
            if live is not None:
                live.point_retry(slot.index, slot.attempt, error)
            if spans is not None:
                spans.instant("retry-backoff", TRACK_RETRY, point=slot.index,
                              attempt=slot.attempt, delay_s=delay,
                              error=error)
            slot.not_before = time.monotonic() + delay
            pending.append(slot)

    try:
        while pending or active:
            now = time.monotonic()
            while pending and len(active) < slots:
                ready = next(
                    (s for s in pending if s.not_before <= now), None)
                if ready is None:
                    break
                pending.remove(ready)
                ready.attempt += 1
                ready.tries += 1
                proc = ctx.Process(
                    target=_fleet_worker,
                    args=(points[ready.index], metrics_window, str(run_dir),
                          ready.key, ready.index, ready.attempt,
                          resilience.checkpoint_every, chaos, kernel,
                          cpi_stacks),
                )
                proc.start()
                journal.point_started(ready.key, ready.index, ready.attempt,
                                      worker_pid=proc.pid)
                attempt_span = None
                if spans is not None:
                    attempt_span = spans.begin(
                        f"attempt.point{ready.index}", TRACK_WORKER,
                        point=ready.index, attempt=ready.attempt,
                        worker_pid=proc.pid)
                deadline = now + timeout if timeout > 0 else None
                active[proc] = (ready, deadline, attempt_span)
            now = time.monotonic()
            for proc in list(active):
                slot, deadline, attempt_span = active[proc]
                if not proc.is_alive():
                    proc.join()
                    del active[proc]
                    if proc.exitcode == 0:
                        result = load_result(result_path(run_dir, slot.key))
                        if result is not None:
                            if spans is not None:
                                spans.end(attempt_span, outcome="finished")
                            journal.point_finished(slot.key, slot.index,
                                                   slot.attempt)
                            results[slot.index] = result
                            finished_this_run += 1
                            if progress is not None:
                                progress.point_done(cached=False)
                            if (abort_after is not None
                                    and finished_this_run >= abort_after):
                                raise FleetAborted(
                                    f"chaos abort_after={abort_after} "
                                    f"reached in {run_dir}")
                            continue
                        if spans is not None:
                            spans.end(attempt_span, outcome="bad-result")
                        fail(slot, "worker exited 0 but its result "
                                   "sidecar is missing or unreadable")
                    else:
                        if spans is not None:
                            spans.end(attempt_span, outcome="died",
                                      exitcode=proc.exitcode)
                        fail(slot, f"worker exited with code "
                                   f"{proc.exitcode}")
                elif deadline is not None and now > deadline:
                    proc.terminate()
                    proc.join(timeout=5.0)
                    if proc.is_alive():
                        proc.kill()
                        proc.join()
                    del active[proc]
                    if spans is not None:
                        spans.end(attempt_span, outcome="timeout")
                    fail(slot, f"timed out after {timeout:g}s")
            if pending and not active:
                gate = min(s.not_before for s in pending)
                wait = gate - time.monotonic()
                if wait > 0:
                    time.sleep(min(wait, 0.25))
                    continue
            if active:
                time.sleep(0.02)
    except BaseException as exc:
        for proc in active:
            proc.terminate()
        for proc in active:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
        if isinstance(exc, KeyboardInterrupt):
            journal.run_interrupted("KeyboardInterrupt")
        journal.close()
        raise
    journal.run_finished(
        completed=sum(1 for r in results if r is not None),
        excluded=len(excluded),
    )
    journal.close()
    if excluded:
        raise PointsExcludedError(excluded, results, run_dir)
    return results

"""Fault-injecting chaos harness for the resilience subsystem.

Nothing here runs unless explicitly armed (``--chaos`` / tests / the CI
chaos-smoke job).  When armed, a :class:`ChaosInjector` rides inside
each simulation worker and misbehaves on a *seeded* schedule:

* ``kill`` — hard-exit the worker mid-measurement (``os._exit``, the
  moral equivalent of SIGKILL: no cleanup, no atexit, no flush);
* ``hang`` — stop making progress long enough to trip the fleet's
  per-point timeout;
* ``delay`` — small sleeps that shuffle completion order;
* ``corrupt`` — flip bytes in the checkpoint file just written, proving
  the loader's checksum catches it and recovery falls back cleanly.

Faults only fire while ``attempt <= max_faults_per_point``, so a chaos
run always terminates: retries eventually execute clean.  Every
decision draws from ``random.Random(hash of (seed, key, attempt))``,
so a chaos run is exactly reproducible from its seed — a failing CI
chaos-smoke can be replayed locally byte for byte.

The parent-side fault is ``abort_after``: the fleet abandons the run
(as if the orchestrating process died) after that many points finish,
which is how the tests produce a half-done run directory for
``--resume`` to repair.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed, picklable chaos schedule shared with every worker."""

    seed: int = 0
    kill: float = 0.0           # P(hard-exit) per checkpoint boundary
    hang: float = 0.0           # P(sleep past the point timeout)
    delay: float = 0.0          # P(short sleep) per boundary
    corrupt: float = 0.0        # P(corrupt the checkpoint just written)
    hang_s: float = 30.0
    delay_s: float = 0.01
    max_faults_per_point: int = 2
    abort_after: Optional[int] = None  # parent abandons run after N points

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse ``"kill=0.3,corrupt=0.2,seed=7"``-style CLI specs.

        Keys are the dataclass fields; bare probabilities accept floats,
        ``seed``/``max_faults_per_point``/``abort_after`` ints.
        """
        if not spec:
            return cls()
        fields = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"chaos spec entry {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in cls.__dataclass_fields__:
                raise ValueError(f"unknown chaos parameter {key!r}")
            if key in ("seed", "max_faults_per_point", "abort_after"):
                fields[key] = int(value)
            else:
                fields[key] = float(value)
        return cls(**fields)

    def armed(self) -> bool:
        return bool(self.kill or self.hang or self.delay or self.corrupt
                    or self.abort_after is not None)


def _rng_for(config: ChaosConfig, key: str, attempt: int) -> random.Random:
    digest = hashlib.sha256(
        f"{config.seed}:{key}:{attempt}".encode()
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class ChaosInjector:
    """Worker-side fault source, consulted at checkpoint boundaries.

    Constructed inside the worker process from the shared
    :class:`ChaosConfig` plus the point's identity — the (seed, key,
    attempt) triple fully determines every fault, so attempt 1 of a
    point misbehaves identically no matter which host runs it.
    """

    def __init__(self, config: ChaosConfig, key: str, attempt: int) -> None:
        self.config = config
        self.key = key
        self.attempt = attempt
        self._rng = _rng_for(config, key, attempt)
        self._armed = attempt <= config.max_faults_per_point

    def at_boundary(self, cycle: int) -> None:
        """Called by the Checkpointer at every chunk boundary."""
        if not self._armed:
            return
        cfg = self.config
        roll = self._rng.random
        if cfg.kill and roll() < cfg.kill:
            # A real crash: bypass finally blocks, atexit, and buffers.
            os._exit(137)
        if cfg.hang and roll() < cfg.hang:
            time.sleep(cfg.hang_s)
        if cfg.delay and roll() < cfg.delay:
            time.sleep(cfg.delay_s)

    def maybe_corrupt(self, path) -> None:
        """Called after a checkpoint lands on disk; maybe vandalize it."""
        if not self._armed or not self.config.corrupt:
            return
        if self._rng.random() >= self.config.corrupt:
            return
        corrupt_file(path, self._rng)


def corrupt_file(path, rng: random.Random) -> None:
    """Flip a handful of payload bytes (or truncate) in place.

    Used by the injector and directly by tests; every mutation must be
    *detected* by checkpoint loading, never silently resumed from.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    with open(path, "r+b") as fh:
        if size > 128 and rng.random() < 0.5:
            fh.truncate(rng.randrange(size // 2, size - 1))
            return
        for _ in range(rng.randrange(1, 4)):
            offset = rng.randrange(0, max(1, size))
            fh.seek(offset)
            byte = fh.read(1)
            if byte:
                fh.seek(offset)
                fh.write(bytes([byte[0] ^ 0xFF]))

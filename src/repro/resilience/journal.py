"""Crash-safe experiment run journal: append-only JSONL + sidecar results.

Every resilient experiment run owns a *run directory*::

    <run-dir>/
      journal.jsonl          append-only event log (this module)
      results/<key>.pkl      finished SimulationResults (exact pickles)
      checkpoints/<key>.ckpt latest mid-measurement checkpoint per point

The journal is the single source of truth for what happened: one JSON
object per line, fsynced on append, so a power cut loses at most the
line being written — and replay tolerates exactly that (a trailing
partial line is ignored, never fatal).  ``--resume <run-dir>`` replays
the journal, loads finished points from their sidecar pickles (pickle,
not JSON: metrics dicts keep int keys and results stay byte-identical),
restarts half-done points from their last checkpoint, and re-runs only
what is actually missing.

Points are identified by their content hash
(:func:`repro.experiments.parallel.cache_key`), so a resume is safe even
if the point *order* changes between invocations — and a resumed run
with a different point set simply reuses whatever overlaps.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Bump when the journal's event vocabulary changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1

JOURNAL_NAME = "journal.jsonl"


class JournalError(Exception):
    """The journal is unusable (wrong schema, unreadable directory)."""


def result_path(run_dir, key: str) -> Path:
    return Path(run_dir) / "results" / f"{key}.pkl"


def checkpoint_path(run_dir, key: str) -> Path:
    return Path(run_dir) / "checkpoints" / f"{key}.ckpt"


def store_result(path, result) -> None:
    """Atomically pickle one finished SimulationResult sidecar."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)


def load_result(path):
    """Load a sidecar result; ``None`` on any corruption (the point is
    then simply re-run — a truncated sidecar must never poison a
    resume)."""
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, EOFError, pickle.UnpicklingError, AttributeError,
            ImportError, IndexError, ValueError):
        return None


class RunJournal:
    """Append-only event log for one experiment run.

    Appends are one ``write`` + ``fsync`` of a single ``\\n``-terminated
    JSON line on an ``O_APPEND`` descriptor, so concurrent appends from
    the fleet's monitor thread interleave at line granularity and a
    crash can only truncate the final line.
    """

    def __init__(self, run_dir) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / JOURNAL_NAME
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        #: Observability tap: called with the event name after each
        #: durable append (the resilience fleet points this at the
        #: host-time span tracer).  Never on the durability path's
        #: error handling — a failing observer must not lose a record.
        self.on_append = None

    def append(self, event: str, **fields) -> None:
        record = {"event": event, "ts": round(time.time(), 3), **fields}
        line = json.dumps(record, sort_keys=True) + "\n"
        os.write(self._fd, line.encode())
        os.fsync(self._fd)
        if self.on_append is not None:
            self.on_append(event)

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Event vocabulary (thin wrappers so call sites read as intent).
    # ------------------------------------------------------------------ #

    def run_started(self, exp_id: str, n_points: int, **provenance) -> None:
        self.append("run_started", schema=JOURNAL_SCHEMA_VERSION,
                    exp_id=exp_id, n_points=n_points, pid=os.getpid(),
                    **provenance)

    def point_started(self, key: str, index: int, attempt: int,
                      worker_pid: Optional[int] = None) -> None:
        self.append("point_started", key=key, index=index, attempt=attempt,
                    worker_pid=worker_pid)

    def point_finished(self, key: str, index: int, attempt: int) -> None:
        self.append("point_finished", key=key, index=index, attempt=attempt,
                    result=str(result_path(self.run_dir, key)))

    def point_failed(self, key: str, index: int, attempt: int,
                     error: str, retry_in: Optional[float] = None) -> None:
        self.append("point_failed", key=key, index=index, attempt=attempt,
                    error=error, retry_in=retry_in)

    def point_excluded(self, key: str, index: int, attempts: int,
                       error: str) -> None:
        self.append("point_excluded", key=key, index=index,
                    attempts=attempts, error=error)

    def checkpoint_saved(self, key: str, index: int, cycle: int) -> None:
        self.append("checkpoint_saved", key=key, index=index, cycle=cycle,
                    path=str(checkpoint_path(self.run_dir, key)))

    def run_finished(self, completed: int, excluded: int) -> None:
        self.append("run_finished", completed=completed, excluded=excluded)

    def run_interrupted(self, reason: str) -> None:
        self.append("run_interrupted", reason=reason)


# ---------------------------------------------------------------------- #
# Replay.
# ---------------------------------------------------------------------- #

@dataclass
class PointRecord:
    """Everything the journal knows about one point, after replay."""

    key: str
    index: int = -1
    status: str = "pending"       # pending | running | done | excluded
    attempts: int = 0
    last_error: Optional[str] = None
    last_checkpoint_cycle: Optional[int] = None


@dataclass
class JournalState:
    """The replayed state of a run directory."""

    run_dir: Path
    records: Dict[str, PointRecord] = field(default_factory=dict)
    exp_id: Optional[str] = None
    started: int = 0              # run_started events seen (>=2 → resumed)
    finished: bool = False
    interrupted: bool = False
    skipped_lines: int = 0        # corrupt/partial lines ignored

    def record(self, key: str) -> PointRecord:
        if key not in self.records:
            self.records[key] = PointRecord(key=key)
        return self.records[key]

    def completed_result(self, key: str):
        """The finished result for ``key``, or ``None`` if missing or its
        sidecar is corrupt (then the point re-runs)."""
        rec = self.records.get(key)
        if rec is None or rec.status != "done":
            return None
        return load_result(result_path(self.run_dir, key))

    def summary(self) -> Dict[str, int]:
        out = {"pending": 0, "running": 0, "done": 0, "excluded": 0}
        for rec in self.records.values():
            out[rec.status] = out.get(rec.status, 0) + 1
        return out


def replay(run_dir) -> JournalState:
    """Replay a run directory's journal into a :class:`JournalState`.

    Missing journal → an empty state (a fresh run directory).  A corrupt
    *interior* line or a partial trailing line is counted in
    ``skipped_lines`` and otherwise ignored: the journal is an intent
    log, and the sidecar/checkpoint files are each self-validating, so
    dropping an event can only cause redundant re-work, never a wrong
    result.
    """
    state = JournalState(run_dir=Path(run_dir))
    path = state.run_dir / JOURNAL_NAME
    try:
        raw = path.read_bytes()
    except OSError:
        return state
    for line in io.BytesIO(raw):
        if not line.endswith(b"\n"):
            state.skipped_lines += 1  # torn final append
            continue
        try:
            record = json.loads(line.decode())
            event = record["event"]
        except (ValueError, KeyError, UnicodeDecodeError):
            state.skipped_lines += 1
            continue
        if event == "run_started":
            schema = record.get("schema")
            if schema != JOURNAL_SCHEMA_VERSION:
                raise JournalError(
                    f"{path}: journal schema {schema} != "
                    f"{JOURNAL_SCHEMA_VERSION}")
            state.started += 1
            state.exp_id = record.get("exp_id", state.exp_id)
            state.finished = False
            state.interrupted = False
        elif event == "point_started":
            rec = state.record(record["key"])
            rec.index = record.get("index", rec.index)
            rec.attempts = max(rec.attempts, record.get("attempt", 0))
            if rec.status == "pending":
                rec.status = "running"
        elif event == "point_finished":
            rec = state.record(record["key"])
            rec.index = record.get("index", rec.index)
            rec.status = "done"
        elif event == "point_failed":
            rec = state.record(record["key"])
            rec.last_error = record.get("error")
            if rec.status == "running":
                rec.status = "pending"  # eligible for retry on resume
        elif event == "point_excluded":
            rec = state.record(record["key"])
            rec.status = "excluded"
            rec.last_error = record.get("error")
        elif event == "checkpoint_saved":
            rec = state.record(record["key"])
            rec.last_checkpoint_cycle = record.get("cycle")
        elif event == "run_finished":
            state.finished = True
        elif event == "run_interrupted":
            state.interrupted = True
        # Unknown events from newer writers are ignored on purpose.
    return state
